"""Training loop with optional malicious-penalty hooks.

From the data holder's point of view this is a stock training loop:
loss = cross-entropy (+ "regularization").  The penalty callable is how
the encoding attacks hide inside it.

The actual forward/backward/step machinery lives in :class:`StepRunner`
so the same engine drives both the serial :class:`Trainer` loop and
every rank of the data-parallel runtime (:mod:`repro.parallel.ddp`):
forked DDP workers inherit a private copy of the trainer's runner --
including its compiled-program cache -- and execute the identical step
on their shard of each batch.
"""

from __future__ import annotations

import time
import weakref
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro import backend as _backend
from repro import precision as _precision
from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.dataloader import DataLoader
from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Module
from repro.nn.optim import SGD
from repro.pipeline.config import TrainingConfig
from repro.telemetry.metrics import default_registry
from repro.telemetry.trace import span


@dataclass
class TrainHistory:
    """Per-epoch task loss / penalty / validation traces."""

    task_loss: List[float] = field(default_factory=list)
    penalty: List[float] = field(default_factory=list)
    val_accuracy: List[float] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        return len(self.task_loss)

    @property
    def best_val_accuracy(self) -> float:
        return max(self.val_accuracy) if self.val_accuracy else float("nan")


class StepRunner:
    """One training step (eager or capture/replay) over a fixed model.

    Owns everything a single step needs -- model, loss, penalty, the
    parameter list, and the compiled-program cache -- and nothing an
    epoch needs (loader, optimizer, schedule, monitor all stay on the
    :class:`Trainer`).  That split is what lets a forked DDP rank run
    steps without dragging the epoch machinery across the fork: each
    worker's copy of the runner keeps its own per-shape program cache.
    """

    def __init__(
        self,
        model: Module,
        loss_fn,
        params: List,
        penalty: Optional[Callable[[], Tensor]] = None,
        max_programs: int = 4,
    ) -> None:
        self.model = model
        self.loss_fn = loss_fn
        self.params = params
        self.penalty = penalty
        self.max_programs = max_programs
        self.programs: dict = {}
        self.capture_failed = False
        self.stats = {
            "programs": 0, "captures": 0, "capture_failures": 0,
            "replays": 0, "fallbacks": 0,
        }

    def forward_backward(self, x: Tensor, labels: np.ndarray) -> dict:
        """Forward + loss (+ penalty) + backward; the capturable window."""
        logits = self.model(x)
        task_loss = self.loss_fn(logits, labels)
        result = {"task_loss": task_loss}
        loss = task_loss
        if self.penalty is not None:
            penalty_term = self.penalty()
            result["penalty"] = penalty_term
            loss = F.add(loss, penalty_term)
        result["loss"] = loss
        loss.backward()
        return result

    def zero_grads(self) -> None:
        for param in self.params:
            param.grad = None

    def eager_step(self, inputs: np.ndarray, labels: np.ndarray):
        """Run one step eagerly; returns (task_loss, penalty) floats."""
        self.zero_grads()
        result = self.forward_backward(Tensor(inputs), labels)
        penalty = result["penalty"].item() if "penalty" in result else 0.0
        return result["task_loss"].item(), penalty

    def compiled_step(self, inputs: np.ndarray, labels: np.ndarray):
        """Replay (or capture) one step; ``None`` means "run it eagerly".

        Replay failures discard the stale program, re-zero the (possibly
        partially written) gradients, count a ``graph.fallbacks`` tick
        and hand the step back to the eager path.  Capture failures mark
        the runner so no further captures are attempted -- dynamic
        models stay eager with a single warm-up's overhead.
        """
        from repro import graph
        from repro.errors import GraphError

        key = (inputs.shape, str(inputs.dtype), labels.shape)
        program = self.programs.get(key)
        if program is not None:
            self.zero_grads()
            try:
                outs = program.replay(inputs=inputs, targets=labels)
            except GraphError:
                del self.programs[key]
                self.stats["programs"] = len(self.programs)
                self.stats["fallbacks"] += 1
                registry = default_registry()
                registry.counter("graph.fallbacks").inc()
                registry.gauge("graph.programs").set(float(len(self.programs)))
                return None
            self.stats["replays"] += 1
            penalty = float(outs["penalty"]) if "penalty" in outs else 0.0
            return float(outs["task_loss"]), penalty
        if self.capture_failed or len(self.programs) >= self.max_programs:
            return None
        x = Tensor(inputs)
        self.zero_grads()
        result, program = graph.capture_step(
            lambda: self.forward_backward(x, labels), feeds={"inputs": x}
        )
        if program is None:
            # the eager warm-up fully ran; its gradients stand
            self.capture_failed = True
            self.stats["capture_failures"] += 1
        else:
            self.programs[key] = program
            self.stats["captures"] += 1
            self.stats["programs"] = len(self.programs)
            default_registry().gauge("graph.programs").set(
                float(len(self.programs))
            )
        penalty = result["penalty"].item() if "penalty" in result else 0.0
        return result["task_loss"].item(), penalty

    def step(self, inputs: np.ndarray, labels: np.ndarray,
             compiled: bool = False):
        """One full step; returns (task_loss, penalty) floats."""
        out = self.compiled_step(inputs, labels) if compiled else None
        if out is None:
            out = self.eager_step(inputs, labels)
        return out


def _shutdown_ddp(ctx) -> None:
    """weakref.finalize target: reap workers + unlink the arena even when
    a Trainer is dropped without :meth:`Trainer.close`."""
    try:
        ctx.shutdown()
    except Exception:
        pass


class Trainer:
    """SGD trainer over in-memory NCHW float inputs and int labels."""

    def __init__(
        self,
        model: Module,
        inputs: np.ndarray,
        labels: np.ndarray,
        config: TrainingConfig,
        penalty: Optional[Callable[[], Tensor]] = None,
        augment: bool = False,
        validation: Optional[tuple] = None,
        grad_clip: Optional[float] = None,
        schedule: Optional[str] = None,
        backend: Optional[str] = None,
        probes: Optional[object] = None,
        dtype: Optional[str] = None,
        compile: Optional[bool] = None,
        ddp_workers: Optional[int] = None,
    ) -> None:
        """Args:
            augment: apply random horizontal flips per batch -- a stock
                augmentation a real training pipeline would include.  It
                only touches the task inputs; the encoding penalty's
                secret vector is untouched, which is exactly why the
                attack survives standard augmentation.
            validation: optional ``(inputs, labels)`` evaluated after
                every epoch into ``history.val_accuracy``.
            grad_clip: optional global-norm gradient clipping threshold.
            schedule: ``None``, ``"cosine"`` or ``"step"`` learning-rate
                schedule over the configured epochs.
            backend: kernel backend name (``"reference"``/``"fast"``)
                scoped around every epoch; ``None`` keeps the process
                default (see :mod:`repro.backend`).
            dtype: compute dtype (``"float32"``/``"float64"``) scoped
                around every epoch like ``backend``; ``None`` keeps the
                process policy (see :mod:`repro.precision`).  Batches
                are materialized at this dtype by the loader.  Note the
                model's parameters keep whatever dtype they were built
                with -- construct the model under the same policy for a
                uniform-precision graph.
            probes: a :class:`repro.monitor.Monitor` or a sequence of
                :class:`repro.monitor.Probe` instances observed after
                every epoch (and every N batches when the monitor has a
                batch interval).  Probe exceptions never interrupt
                training; they are recorded as ``monitor.probe_error``
                events.
            compile: capture the first step per batch signature into a
                static replay schedule (:mod:`repro.graph`) and replay
                it for subsequent steps -- bit-identical losses and
                gradients, far less Python dispatch.  ``None`` follows
                the process default (:func:`repro.graph.compile_default`,
                the CLI's ``--compile`` flag).  Any capture or replay
                failure falls back to eager execution for that step.
            ddp_workers: train data-parallel across this many ranks
                (:mod:`repro.parallel.ddp`): the batch is sharded, each
                rank runs forward/backward on its slice, and a
                deterministic tree all-reduce over shared memory
                reassembles the serial batch gradient before the
                optimizer runs.  ``None`` follows the process default
                (:func:`repro.parallel.ddp.default_ddp_workers`, the
                CLI's ``--ddp-workers`` flag); ``1`` forces serial.
                Workers are forked lazily at the first epoch and
                persist until :meth:`close` (``train()`` closes them
                automatically when it finishes).
        """
        config.validate()
        self.model = model
        self.config = config
        self.backend = backend
        self.dtype = dtype
        if probes is not None:
            from repro.monitor import as_monitor
            self.monitor = as_monitor(probes)
        else:
            self.monitor = None
        self.penalty = penalty
        self.augment = bool(augment)
        self.validation = validation
        self.grad_clip = float(grad_clip) if grad_clip is not None else None
        self._augment_rng = np.random.default_rng(config.seed + 1000)
        self.loader = DataLoader(
            inputs, labels, batch_size=config.batch_size, shuffle=True,
            seed=config.seed, dtype=dtype,
        )
        self.optimizer = SGD(
            model.parameters(), lr=config.lr, momentum=config.momentum,
            weight_decay=config.weight_decay,
        )
        if schedule is None:
            self.schedule = None
        elif schedule == "cosine":
            from repro.nn.optim import CosineSchedule
            self.schedule = CosineSchedule(self.optimizer, config.epochs)
        elif schedule == "step":
            from repro.nn.optim import StepSchedule
            self.schedule = StepSchedule(self.optimizer, max(1, config.epochs // 3))
        else:
            from repro.errors import ConfigError
            raise ConfigError(f"unknown schedule {schedule!r}")
        self.loss_fn = CrossEntropyLoss()
        # Parameter objects are stable for the model's lifetime (the
        # optimizer swaps .data, never the Parameters), so walking the
        # module tree once here replaces a per-step model.zero_grad()
        # traversal on both the eager and the compiled path.
        self._params = model.parameters()
        self.history = TrainHistory()
        self.compile = compile
        self._runner = StepRunner(
            model, self.loss_fn, self._params, penalty=penalty,
        )
        if ddp_workers is None:
            from repro.parallel.ddp import default_ddp_workers
            ddp_workers = default_ddp_workers()
        self.ddp_workers = max(1, int(ddp_workers)) if ddp_workers else 1
        self._ddp = None
        self._ddp_finalizer = None

    # ------------------------------------------------------------------
    # Compiled-step surface (delegated to the StepRunner)
    # ------------------------------------------------------------------

    @property
    def MAX_PROGRAMS(self) -> int:
        """Program-cache cap per (input shape/dtype, label shape)
        signature; beyond it the odd shapes (e.g. a ragged final batch)
        run eagerly.  Assigning to it retunes the underlying runner."""
        return self._runner.max_programs

    @MAX_PROGRAMS.setter
    def MAX_PROGRAMS(self, value: int) -> None:
        self._runner.max_programs = int(value)

    @property
    def compile_stats(self) -> dict:
        return self._runner.stats

    @property
    def _programs(self) -> dict:
        return self._runner.programs

    @property
    def _capture_failed(self) -> bool:
        return self._runner.capture_failed

    def _compile_enabled(self) -> bool:
        if self.compile is not None:
            return bool(self.compile)
        from repro import graph
        return graph.compile_default()

    # ------------------------------------------------------------------
    # Data-parallel lifecycle
    # ------------------------------------------------------------------

    def _ensure_ddp(self):
        """The live DDP context, or ``None`` for serial training.

        Construction is lazy so a trainer that never trains never forks;
        the context itself forks its workers on the first epoch, which
        guarantees every rank's copy of the loader/augment RNG state is
        taken before any epoch is consumed.
        """
        if self.ddp_workers <= 1:
            return None
        if self._ddp is None:
            from repro.parallel import ddp as _ddp
            if not _ddp.available():
                from repro.telemetry.events import get_logger
                get_logger().warning(
                    "ddp.unavailable", requested_workers=self.ddp_workers,
                    reason="fork start method not supported; training serially",
                )
                self.ddp_workers = 1
                return None
            self._ddp = _ddp.DDPContext(
                model=self.model, params=self._params, runner=self._runner,
                loader=self.loader, world_size=self.ddp_workers,
                augment=self.augment, augment_rng=self._augment_rng,
                backend=self.backend, dtype=self.dtype,
            )
            self._ddp_finalizer = weakref.finalize(
                self, _shutdown_ddp, self._ddp
            )
        return self._ddp

    def close(self) -> None:
        """Stop DDP workers and return the model to private memory.

        Idempotent; serial trainers are unaffected.  After ``close`` the
        trainer can train again -- a fresh worker group is forked on the
        next epoch, inheriting the loader exactly where it stopped.
        """
        if self._ddp is not None:
            ctx, self._ddp = self._ddp, None
            ctx.shutdown()
        if self._ddp_finalizer is not None:
            self._ddp_finalizer.detach()
            self._ddp_finalizer = None

    def __enter__(self) -> "Trainer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # The epoch loop
    # ------------------------------------------------------------------

    def _clip_gradients(self) -> None:
        """Scale all gradients so their global L2 norm is <= grad_clip."""
        total = 0.0
        for param in self._params:
            if param.grad is not None:
                total += float((param.grad ** 2).sum())
        norm = total ** 0.5
        if norm > self.grad_clip and norm > 0:
            scale = self.grad_clip / norm
            for param in self._params:
                if param.grad is not None:
                    param.grad = param.grad * scale

    def train_epoch(self) -> float:
        """One epoch; returns mean task loss."""
        self.model.train()
        registry = default_registry()
        batch_times = registry.histogram("trainer.batch_s")
        compiled = self._compile_enabled()
        ddp = self._ensure_ddp()
        total_task, total_penalty, count, batches = 0.0, 0.0, 0, 0
        epoch_start = time.perf_counter()
        with _backend.use_backend(self.backend), \
                _precision.use_dtype(self.dtype), \
                span("trainer.epoch", epoch=self.history.epochs,
                     ddp_workers=self.ddp_workers):
            if ddp is not None:
                iterator = ddp.begin_epoch(self.history.epochs, compiled)
            else:
                iterator = self.loader
            for item in iterator:
                batch_start = time.perf_counter()
                with span("trainer.batch"):
                    if ddp is not None:
                        task_loss_value, penalty_value, batch = \
                            ddp.rank0_step(item)
                        if self.grad_clip is not None:
                            self._clip_gradients()
                        self.optimizer.step()
                        ddp.finish_step()
                    else:
                        inputs, labels = item
                        if self.augment:
                            from repro.datasets.transforms import (
                                random_flip_horizontal,
                            )
                            inputs = random_flip_horizontal(
                                inputs, self._augment_rng
                            )
                        task_loss_value, penalty_value = self._runner.step(
                            inputs, labels, compiled=compiled
                        )
                        if self.grad_clip is not None:
                            self._clip_gradients()
                        self.optimizer.step()
                        batch = len(labels)
                total_task += task_loss_value * batch
                total_penalty += penalty_value * batch
                count += batch
                if self.monitor is not None:
                    self.monitor.on_batch(self.model, self.history.epochs,
                                          batches, history=self.history,
                                          optimizer=self.optimizer)
                batches += 1
                batch_times.observe(time.perf_counter() - batch_start)
            if ddp is not None:
                ddp.end_epoch()
        elapsed = time.perf_counter() - epoch_start
        registry.timer("trainer.epoch_s").update(elapsed)
        registry.counter("trainer.batches").inc(batches)
        registry.counter("trainer.images").inc(count)
        registry.gauge("trainer.epoch").set(float(self.history.epochs))
        if elapsed > 0:
            registry.gauge("trainer.images_per_s").set(count / elapsed)
        from repro.telemetry.export import update_health
        update_health(epoch=self.history.epochs, epoch_s=elapsed)
        mean_task = total_task / count
        registry.gauge("trainer.task_loss").set(mean_task)
        registry.gauge("trainer.penalty").set(total_penalty / count)
        if not np.isfinite(mean_task):
            from repro.errors import GradientError
            raise GradientError(
                "training diverged: task loss is not finite "
                f"(epoch {self.history.epochs}, lr {self.optimizer.lr})"
            )
        self.history.task_loss.append(mean_task)
        self.history.penalty.append(total_penalty / count)
        if self.validation is not None:
            from repro.metrics.accuracy import evaluate_accuracy
            val_inputs, val_labels = self.validation
            self.history.val_accuracy.append(
                evaluate_accuracy(self.model, val_inputs, val_labels)
            )
            self.model.train()
        if self.schedule is not None:
            self.schedule.step()
        if self.monitor is not None:
            with span("monitor.epoch_probes"):
                self.monitor.on_epoch(self.model, self.history.epochs - 1,
                                      history=self.history,
                                      optimizer=self.optimizer)
        return mean_task

    def train(
        self, epochs: Optional[int] = None,
        progress: Optional[Callable[[int, float], None]] = None,
    ) -> TrainHistory:
        """Run the configured number of epochs.

        When data-parallel training is active the worker group is shut
        down (and the model detached from shared memory) before
        returning, so downstream consumers -- quantization, release,
        serving -- always see a plain in-process model.
        """
        epochs = epochs if epochs is not None else self.config.epochs
        from repro.telemetry.events import get_logger
        logger = get_logger()
        logger.debug("trainer.start", epochs=epochs, lr=self.config.lr,
                     batch_size=self.config.batch_size, seed=self.config.seed,
                     ddp_workers=self.ddp_workers)
        try:
            with span("trainer.train", epochs=epochs):
                for epoch in range(epochs):
                    mean_loss = self.train_epoch()
                    logger.debug("trainer.epoch", epoch=epoch,
                                 task_loss=mean_loss,
                                 penalty=self.history.penalty[-1])
                    if progress is not None:
                        progress(epoch, mean_loss)
        finally:
            self.close()
        logger.debug("trainer.done", epochs=epochs,
                     final_task_loss=self.history.task_loss[-1] if epochs else None)
        self.model.eval()
        return self.history
