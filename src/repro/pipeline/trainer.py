"""Training loop with optional malicious-penalty hooks.

From the data holder's point of view this is a stock training loop:
loss = cross-entropy (+ "regularization").  The penalty callable is how
the encoding attacks hide inside it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro import backend as _backend
from repro import precision as _precision
from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.dataloader import DataLoader
from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Module
from repro.nn.optim import SGD
from repro.pipeline.config import TrainingConfig
from repro.telemetry.metrics import default_registry
from repro.telemetry.trace import span


@dataclass
class TrainHistory:
    """Per-epoch task loss / penalty / validation traces."""

    task_loss: List[float] = field(default_factory=list)
    penalty: List[float] = field(default_factory=list)
    val_accuracy: List[float] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        return len(self.task_loss)

    @property
    def best_val_accuracy(self) -> float:
        return max(self.val_accuracy) if self.val_accuracy else float("nan")


class Trainer:
    """SGD trainer over in-memory NCHW float inputs and int labels."""

    #: Programs are cached per (input shape/dtype, label shape) signature;
    #: beyond this many signatures the trainer stops capturing and runs
    #: the odd shapes (e.g. a ragged final batch) eagerly.
    MAX_PROGRAMS = 4

    def __init__(
        self,
        model: Module,
        inputs: np.ndarray,
        labels: np.ndarray,
        config: TrainingConfig,
        penalty: Optional[Callable[[], Tensor]] = None,
        augment: bool = False,
        validation: Optional[tuple] = None,
        grad_clip: Optional[float] = None,
        schedule: Optional[str] = None,
        backend: Optional[str] = None,
        probes: Optional[object] = None,
        dtype: Optional[str] = None,
        compile: Optional[bool] = None,
    ) -> None:
        """Args:
            augment: apply random horizontal flips per batch -- a stock
                augmentation a real training pipeline would include.  It
                only touches the task inputs; the encoding penalty's
                secret vector is untouched, which is exactly why the
                attack survives standard augmentation.
            validation: optional ``(inputs, labels)`` evaluated after
                every epoch into ``history.val_accuracy``.
            grad_clip: optional global-norm gradient clipping threshold.
            schedule: ``None``, ``"cosine"`` or ``"step"`` learning-rate
                schedule over the configured epochs.
            backend: kernel backend name (``"reference"``/``"fast"``)
                scoped around every epoch; ``None`` keeps the process
                default (see :mod:`repro.backend`).
            dtype: compute dtype (``"float32"``/``"float64"``) scoped
                around every epoch like ``backend``; ``None`` keeps the
                process policy (see :mod:`repro.precision`).  Batches
                are materialized at this dtype by the loader.  Note the
                model's parameters keep whatever dtype they were built
                with -- construct the model under the same policy for a
                uniform-precision graph.
            probes: a :class:`repro.monitor.Monitor` or a sequence of
                :class:`repro.monitor.Probe` instances observed after
                every epoch (and every N batches when the monitor has a
                batch interval).  Probe exceptions never interrupt
                training; they are recorded as ``monitor.probe_error``
                events.
            compile: capture the first step per batch signature into a
                static replay schedule (:mod:`repro.graph`) and replay
                it for subsequent steps -- bit-identical losses and
                gradients, far less Python dispatch.  ``None`` follows
                the process default (:func:`repro.graph.compile_default`,
                the CLI's ``--compile`` flag).  Any capture or replay
                failure falls back to eager execution for that step.
        """
        config.validate()
        self.model = model
        self.config = config
        self.backend = backend
        self.dtype = dtype
        if probes is not None:
            from repro.monitor import as_monitor
            self.monitor = as_monitor(probes)
        else:
            self.monitor = None
        self.penalty = penalty
        self.augment = bool(augment)
        self.validation = validation
        self.grad_clip = float(grad_clip) if grad_clip is not None else None
        self._augment_rng = np.random.default_rng(config.seed + 1000)
        self.loader = DataLoader(
            inputs, labels, batch_size=config.batch_size, shuffle=True,
            seed=config.seed, dtype=dtype,
        )
        self.optimizer = SGD(
            model.parameters(), lr=config.lr, momentum=config.momentum,
            weight_decay=config.weight_decay,
        )
        if schedule is None:
            self.schedule = None
        elif schedule == "cosine":
            from repro.nn.optim import CosineSchedule
            self.schedule = CosineSchedule(self.optimizer, config.epochs)
        elif schedule == "step":
            from repro.nn.optim import StepSchedule
            self.schedule = StepSchedule(self.optimizer, max(1, config.epochs // 3))
        else:
            from repro.errors import ConfigError
            raise ConfigError(f"unknown schedule {schedule!r}")
        self.loss_fn = CrossEntropyLoss()
        # Parameter objects are stable for the model's lifetime (the
        # optimizer swaps .data, never the Parameters), so walking the
        # module tree once here replaces a per-step model.zero_grad()
        # traversal on both the eager and the compiled path.
        self._params = model.parameters()
        self.history = TrainHistory()
        self.compile = compile
        self._programs: dict = {}
        self._capture_failed = False
        self.compile_stats = {
            "programs": 0, "captures": 0, "capture_failures": 0,
            "replays": 0, "fallbacks": 0,
        }

    # ------------------------------------------------------------------
    # One training step: eager and compiled paths
    # ------------------------------------------------------------------

    def _compile_enabled(self) -> bool:
        if self.compile is not None:
            return bool(self.compile)
        from repro import graph
        return graph.compile_default()

    def _forward_backward(self, x: Tensor, labels: np.ndarray) -> dict:
        """Forward + loss (+ penalty) + backward; the capturable window."""
        logits = self.model(x)
        task_loss = self.loss_fn(logits, labels)
        result = {"task_loss": task_loss}
        loss = task_loss
        if self.penalty is not None:
            penalty_term = self.penalty()
            result["penalty"] = penalty_term
            loss = F.add(loss, penalty_term)
        result["loss"] = loss
        loss.backward()
        return result

    def _zero_grads(self) -> None:
        for param in self._params:
            param.grad = None

    def _eager_step(self, inputs: np.ndarray, labels: np.ndarray):
        """Run one step eagerly; returns (task_loss, penalty) floats."""
        self._zero_grads()
        result = self._forward_backward(Tensor(inputs), labels)
        penalty = result["penalty"].item() if "penalty" in result else 0.0
        return result["task_loss"].item(), penalty

    def _compiled_step(self, inputs: np.ndarray, labels: np.ndarray):
        """Replay (or capture) one step; ``None`` means "run it eagerly".

        Replay failures discard the stale program, re-zero the (possibly
        partially written) gradients, count a ``graph.fallbacks`` tick
        and hand the step back to the eager path.  Capture failures mark
        the trainer so no further captures are attempted -- dynamic
        models stay eager with a single warm-up's overhead.
        """
        from repro import graph
        from repro.errors import GraphError

        key = (inputs.shape, str(inputs.dtype), labels.shape)
        program = self._programs.get(key)
        if program is not None:
            self._zero_grads()
            try:
                outs = program.replay(inputs=inputs, targets=labels)
            except GraphError:
                del self._programs[key]
                self.compile_stats["programs"] = len(self._programs)
                self.compile_stats["fallbacks"] += 1
                registry = default_registry()
                registry.counter("graph.fallbacks").inc()
                registry.gauge("graph.programs").set(float(len(self._programs)))
                return None
            self.compile_stats["replays"] += 1
            penalty = float(outs["penalty"]) if "penalty" in outs else 0.0
            return float(outs["task_loss"]), penalty
        if self._capture_failed or len(self._programs) >= self.MAX_PROGRAMS:
            return None
        x = Tensor(inputs)
        self._zero_grads()
        result, program = graph.capture_step(
            lambda: self._forward_backward(x, labels), feeds={"inputs": x}
        )
        if program is None:
            # the eager warm-up fully ran; its gradients stand
            self._capture_failed = True
            self.compile_stats["capture_failures"] += 1
        else:
            self._programs[key] = program
            self.compile_stats["captures"] += 1
            self.compile_stats["programs"] = len(self._programs)
            default_registry().gauge("graph.programs").set(
                float(len(self._programs))
            )
        penalty = result["penalty"].item() if "penalty" in result else 0.0
        return result["task_loss"].item(), penalty

    def _clip_gradients(self) -> None:
        """Scale all gradients so their global L2 norm is <= grad_clip."""
        total = 0.0
        for param in self._params:
            if param.grad is not None:
                total += float((param.grad ** 2).sum())
        norm = total ** 0.5
        if norm > self.grad_clip and norm > 0:
            scale = self.grad_clip / norm
            for param in self._params:
                if param.grad is not None:
                    param.grad = param.grad * scale

    def train_epoch(self) -> float:
        """One epoch; returns mean task loss."""
        self.model.train()
        registry = default_registry()
        batch_times = registry.histogram("trainer.batch_s")
        compiled = self._compile_enabled()
        total_task, total_penalty, count, batches = 0.0, 0.0, 0, 0
        epoch_start = time.perf_counter()
        with _backend.use_backend(self.backend), \
                _precision.use_dtype(self.dtype), \
                span("trainer.epoch", epoch=self.history.epochs):
            for inputs, labels in self.loader:
                batch_start = time.perf_counter()
                with span("trainer.batch"):
                    if self.augment:
                        from repro.datasets.transforms import random_flip_horizontal
                        inputs = random_flip_horizontal(inputs, self._augment_rng)
                    step = None
                    if compiled:
                        step = self._compiled_step(inputs, labels)
                    if step is None:
                        step = self._eager_step(inputs, labels)
                    task_loss_value, penalty_value = step
                    if self.grad_clip is not None:
                        self._clip_gradients()
                    self.optimizer.step()
                batch = len(labels)
                total_task += task_loss_value * batch
                total_penalty += penalty_value * batch
                count += batch
                if self.monitor is not None:
                    self.monitor.on_batch(self.model, self.history.epochs,
                                          batches, history=self.history,
                                          optimizer=self.optimizer)
                batches += 1
                batch_times.observe(time.perf_counter() - batch_start)
        elapsed = time.perf_counter() - epoch_start
        registry.timer("trainer.epoch_s").update(elapsed)
        registry.counter("trainer.batches").inc(batches)
        registry.counter("trainer.images").inc(count)
        registry.gauge("trainer.epoch").set(float(self.history.epochs))
        if elapsed > 0:
            registry.gauge("trainer.images_per_s").set(count / elapsed)
        from repro.telemetry.export import update_health
        update_health(epoch=self.history.epochs, epoch_s=elapsed)
        mean_task = total_task / count
        registry.gauge("trainer.task_loss").set(mean_task)
        registry.gauge("trainer.penalty").set(total_penalty / count)
        if not np.isfinite(mean_task):
            from repro.errors import GradientError
            raise GradientError(
                "training diverged: task loss is not finite "
                f"(epoch {self.history.epochs}, lr {self.optimizer.lr})"
            )
        self.history.task_loss.append(mean_task)
        self.history.penalty.append(total_penalty / count)
        if self.validation is not None:
            from repro.metrics.accuracy import evaluate_accuracy
            val_inputs, val_labels = self.validation
            self.history.val_accuracy.append(
                evaluate_accuracy(self.model, val_inputs, val_labels)
            )
            self.model.train()
        if self.schedule is not None:
            self.schedule.step()
        if self.monitor is not None:
            with span("monitor.epoch_probes"):
                self.monitor.on_epoch(self.model, self.history.epochs - 1,
                                      history=self.history,
                                      optimizer=self.optimizer)
        return mean_task

    def train(
        self, epochs: Optional[int] = None,
        progress: Optional[Callable[[int, float], None]] = None,
    ) -> TrainHistory:
        """Run the configured number of epochs."""
        epochs = epochs if epochs is not None else self.config.epochs
        from repro.telemetry.events import get_logger
        logger = get_logger()
        logger.debug("trainer.start", epochs=epochs, lr=self.config.lr,
                     batch_size=self.config.batch_size, seed=self.config.seed)
        with span("trainer.train", epochs=epochs):
            for epoch in range(epochs):
                mean_loss = self.train_epoch()
                logger.debug("trainer.epoch", epoch=epoch, task_loss=mean_loss,
                             penalty=self.history.penalty[-1])
                if progress is not None:
                    progress(epoch, mean_loss)
        logger.debug("trainer.done", epochs=epochs,
                     final_task_loss=self.history.task_loss[-1] if epochs else None)
        self.model.eval()
        return self.history
