"""Serialize experiment results to JSON (and back).

Keeps the on-disk format plain: floats/ints/lists only, so results can
be diffed, versioned and plotted without this library.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional, Union

from repro.pipeline.evaluation import AttackEvaluation


def evaluation_to_dict(evaluation: AttackEvaluation) -> Dict:
    """Summarise one AttackEvaluation as plain JSON-ready data."""
    return {
        "accuracy": float(evaluation.accuracy),
        "encoded_images": int(evaluation.encoded_images),
        "mean_mape": float(evaluation.mean_mape),
        "mean_ssim": float(evaluation.mean_ssim),
        "recognized_count": int(evaluation.recognized_count),
        "recognized_percent": float(evaluation.recognized_percent),
        "mape_per_image": [float(v) for v in evaluation.mape_per_image],
        "ssim_per_image": [float(v) for v in evaluation.ssim_per_image],
        "recognizable": [bool(v) for v in evaluation.recognizable],
    }


def attack_result_to_dict(result) -> Dict:
    """Summarise an AttackFlowResult (pipeline.attack_flow) as JSON data."""
    out = {
        "encoded_images": int(result.encoded_images),
        "selection": {
            "std_mean": float(result.selection.std_mean),
            "std_range": [float(v) for v in result.selection.std_range],
            "num_candidates": int(len(result.selection.candidate_indices)),
        },
        "history": {
            "task_loss": [float(v) for v in result.history.task_loss],
            "penalty": [float(v) for v in result.history.penalty],
        },
        "uncompressed": evaluation_to_dict(result.uncompressed),
        "quantized": (evaluation_to_dict(result.quantized)
                      if result.quantized is not None else None),
    }
    if result.quantization is not None:
        out["quantization"] = {
            "levels": int(result.quantization.levels),
            "bits": int(result.quantization.bits),
            "tensors": sorted(result.quantization.assignments),
        }
    return out


def save_result(data: Dict, path: Union[str, os.PathLike]) -> None:
    """Write a result dict as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_result(path: Union[str, os.PathLike]) -> Dict:
    """Read back a result written by :func:`save_result`."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
