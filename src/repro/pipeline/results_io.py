"""Serialize experiment results to JSON (and back).

Keeps the on-disk format plain: floats/ints/lists only, so results can
be diffed, versioned and plotted without this library.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional, Union

from repro.pipeline.evaluation import AttackEvaluation
from repro.telemetry.events import RunManifest

PathLike = Union[str, os.PathLike]


def evaluation_to_dict(evaluation: AttackEvaluation) -> Dict:
    """Summarise one AttackEvaluation as plain JSON-ready data."""
    return {
        "accuracy": float(evaluation.accuracy),
        "encoded_images": int(evaluation.encoded_images),
        "mean_mape": float(evaluation.mean_mape),
        "mean_ssim": float(evaluation.mean_ssim),
        "recognized_count": int(evaluation.recognized_count),
        "recognized_percent": float(evaluation.recognized_percent),
        "mape_per_image": [float(v) for v in evaluation.mape_per_image],
        "ssim_per_image": [float(v) for v in evaluation.ssim_per_image],
        "recognizable": [bool(v) for v in evaluation.recognizable],
    }


def attack_result_to_dict(result) -> Dict:
    """Summarise an AttackFlowResult (pipeline.attack_flow) as JSON data."""
    out = {
        "encoded_images": int(result.encoded_images),
        "selection": {
            "std_mean": float(result.selection.std_mean),
            "std_range": [float(v) for v in result.selection.std_range],
            "num_candidates": int(len(result.selection.candidate_indices)),
        },
        "history": {
            "task_loss": [float(v) for v in result.history.task_loss],
            "penalty": [float(v) for v in result.history.penalty],
            "val_accuracy": [float(v) for v in result.history.val_accuracy],
        },
        "uncompressed": evaluation_to_dict(result.uncompressed),
        "quantized": (evaluation_to_dict(result.quantized)
                      if result.quantized is not None else None),
    }
    if result.quantization is not None:
        out["quantization"] = {
            "levels": int(result.quantization.levels),
            "bits": int(result.quantization.bits),
            "tensors": sorted(result.quantization.assignments),
        }
    return out


def save_result(data: Dict, path: PathLike,
                manifest: Optional[RunManifest] = None,
                timeseries: Optional[PathLike] = None) -> None:
    """Write a result dict as pretty-printed JSON.

    When ``manifest`` is given, it is written alongside the result (see
    :func:`save_manifest`), tying the record to its run id, seed, config
    fingerprint and telemetry snapshot.  ``timeseries`` links the run's
    monitor timeseries (see :mod:`repro.monitor`) into the manifest so
    ``repro report`` can find it from the result file alone.
    """
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    if manifest is not None:
        if timeseries is not None:
            manifest.timeseries = os.fspath(timeseries)
        save_manifest(manifest, path)


def timeseries_path(result_path: PathLike) -> str:
    """The conventional monitor-timeseries sidecar path for a result file
    (``x.json`` -> ``x.timeseries.jsonl``)."""
    root, _ = os.path.splitext(os.fspath(result_path))
    return root + ".timeseries.jsonl"


def load_result(path: PathLike) -> Dict:
    """Read back a result written by :func:`save_result`."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def manifest_path(result_path: PathLike) -> str:
    """The sidecar manifest path for a result file (``x.json`` -> ``x.manifest.json``)."""
    root, _ = os.path.splitext(os.fspath(result_path))
    return root + ".manifest.json"


def save_manifest(manifest: RunManifest, result_path: PathLike) -> str:
    """Write a :class:`RunManifest` next to its result file; returns the path."""
    path = manifest_path(result_path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_manifest(result_path: PathLike) -> RunManifest:
    """Read the manifest written next to ``result_path``."""
    with open(manifest_path(result_path), "r", encoding="utf-8") as handle:
        return RunManifest.from_dict(json.load(handle))
