"""Experiment configuration dataclasses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.errors import ConfigError


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters of the (benign-looking) training loop."""

    epochs: int = 10
    batch_size: int = 32
    lr: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 0.0
    seed: int = 0

    def validate(self) -> None:
        if self.epochs < 1:
            raise ConfigError(f"epochs must be >= 1, got {self.epochs}")
        if self.lr <= 0:
            raise ConfigError(f"lr must be positive, got {self.lr}")
        if self.batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {self.batch_size}")


@dataclass(frozen=True)
class AttackConfig:
    """The adversary's knobs (Sec. IV).

    Attributes:
        layer_ranges: 1-based inclusive encodable-layer index ranges per
            group; the paper's ResNet-34 grouping is
            ``[(1, 12), (13, 16), (17, -1)]`` (-1 = through the end).
        rates: per-group correlation rates ``lambda_k``; the paper's
            final configuration zeroes the first two groups.
        std_window: the pre-processing window length ``d``.
        std_range: pin the window explicitly (paper uses [50, 55]).
        selection_seed: RNG seed for the random target draw.
        polarity: decoding polarity resolution ("auto" = adversary's TV
            heuristic, "reference" = metric upper bound).
        capacity_fraction: fraction of the active groups' image capacity
            to actually encode.  Encoding at 100% correlates every
            active weight, which costs accuracy on small models; the
            paper's models are huge relative to the payload, so <1
            emulates that regime.
    """

    layer_ranges: Tuple[Tuple[int, int], ...] = ((1, 12), (13, 16), (17, -1))
    rates: Tuple[float, ...] = (0.0, 0.0, 5.0)
    std_window: float = 5.0
    std_range: Optional[Tuple[float, float]] = None
    selection_seed: int = 0
    polarity: str = "reference"
    capacity_fraction: float = 1.0

    def validate(self) -> None:
        if len(self.layer_ranges) != len(self.rates):
            raise ConfigError("layer_ranges and rates must have equal length")
        if all(rate == 0.0 for rate in self.rates):
            raise ConfigError("at least one group needs a non-zero rate")
        if any(rate < 0 for rate in self.rates):
            raise ConfigError("correlation rates must be non-negative")
        if not 0.0 < self.capacity_fraction <= 1.0:
            raise ConfigError(
                f"capacity_fraction must be in (0, 1], got {self.capacity_fraction}"
            )


@dataclass(frozen=True)
class QuantizationConfig:
    """Compression step configuration.

    Attributes:
        bits: released bit width (levels = 2**bits).
        method: "target_correlated" (Algorithm 1), "weighted_entropy"
            (Park et al.), "uniform" or "kmeans" (deep compression).
        scope: "per_layer" (default; deep compression and Park et al.
            both keep one codebook per layer) or "global".
        finetune_epochs / finetune_lr: the light post-quantization
            fine-tuning both the paper and Park et al. apply.
    """

    bits: int = 4
    method: str = "target_correlated"
    scope: str = "per_layer"
    finetune_epochs: int = 2
    finetune_lr: float = 0.02

    _METHODS = ("target_correlated", "weighted_entropy", "uniform", "kmeans")

    def validate(self) -> None:
        if not 1 <= self.bits <= 16:
            raise ConfigError(f"bits must be in [1, 16], got {self.bits}")
        if self.method not in self._METHODS:
            raise ConfigError(f"method must be one of {self._METHODS}, got {self.method!r}")
        if self.finetune_epochs < 0:
            raise ConfigError("finetune_epochs must be >= 0")

    @property
    def levels(self) -> int:
        return 1 << self.bits
