"""End-to-end pipelines: Fig. 1's attack flow and the baselines.

* :class:`TrainingConfig` / :class:`AttackConfig` /
  :class:`QuantizationConfig` -- experiment configuration.
* :class:`Trainer` -- the training loop with optional penalty hooks.
* :func:`run_quantized_correlation_attack` -- the paper's full flow:
  pre-processing -> layer-wise correlation training -> target-correlated
  quantization (+ fine-tuning) -> extraction -> evaluation.
* :mod:`repro.pipeline.baselines` -- benign training, the original
  uniform correlation attack, and quantize-with-any-method.
"""

from repro.pipeline.config import AttackConfig, QuantizationConfig, TrainingConfig
from repro.pipeline.trainer import Trainer, TrainHistory
from repro.pipeline.attack_flow import AttackFlowResult, run_quantized_correlation_attack
from repro.pipeline.baselines import (
    make_quantizer,
    original_correlation_attack,
    quantize_and_finetune,
    run_baseline_suite,
    train_benign,
)
from repro.pipeline.evaluation import AttackEvaluation, evaluate_attack
from repro.pipeline.reporting import format_records, format_table
from repro.pipeline.results_io import (
    attack_result_to_dict,
    evaluation_to_dict,
    load_manifest,
    load_result,
    manifest_path,
    save_manifest,
    save_result,
)
from repro.pipeline.sweep import Sweep, SweepResult, expand_grid

__all__ = [
    "TrainingConfig", "AttackConfig", "QuantizationConfig",
    "Trainer", "TrainHistory",
    "AttackFlowResult", "run_quantized_correlation_attack",
    "train_benign", "original_correlation_attack", "quantize_and_finetune",
    "run_baseline_suite",
    "make_quantizer", "AttackEvaluation", "evaluate_attack", "format_table",
    "format_records",
    "evaluation_to_dict", "attack_result_to_dict", "save_result", "load_result",
    "save_manifest", "load_manifest", "manifest_path",
    "Sweep", "SweepResult", "expand_grid",
]
