"""Shared attack evaluation: evasiveness + effectiveness in one sweep."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro import backend as _backend
from repro.attacks.decoder import decode_groups, decode_images
from repro.attacks.layerwise import LayerGroup
from repro.attacks.secret import SecretPayload
from repro.metrics.accuracy import evaluate_accuracy
from repro.metrics.mape import batch_mape
from repro.metrics.recognizability import recognizable_mask
from repro.metrics.ssim import batch_ssim
from repro.nn.module import Module


@dataclass
class AttackEvaluation:
    """Everything the paper's tables report about one released model."""

    accuracy: float
    reconstructions: np.ndarray
    originals: np.ndarray
    mape_per_image: np.ndarray
    ssim_per_image: np.ndarray
    recognizable: np.ndarray

    @property
    def encoded_images(self) -> int:
        return len(self.originals)

    @property
    def mean_mape(self) -> float:
        return float(self.mape_per_image.mean()) if len(self.mape_per_image) else float("nan")

    @property
    def mean_ssim(self) -> float:
        return float(self.ssim_per_image.mean()) if len(self.ssim_per_image) else float("nan")

    @property
    def recognized_count(self) -> int:
        return int(self.recognizable.sum())

    @property
    def recognized_percent(self) -> float:
        return 100.0 * self.recognized_count / max(self.encoded_images, 1)

    def mape_above(self, threshold: float = 20.0) -> int:
        """Badly encoded images (Table II metric)."""
        return int((self.mape_per_image > threshold).sum())

    def mape_below(self, threshold: float = 20.0) -> int:
        return int((self.mape_per_image < threshold).sum())

    def ssim_above(self, threshold: float = 0.5) -> int:
        return int((self.ssim_per_image > threshold).sum())


def evaluate_attack(
    model: Module,
    test_inputs: np.ndarray,
    test_labels: np.ndarray,
    groups: Optional[Sequence[LayerGroup]] = None,
    payload: Optional[SecretPayload] = None,
    weight_vector: Optional[np.ndarray] = None,
    polarity: str = "reference",
    mean: Optional[np.ndarray] = None,
    std: Optional[np.ndarray] = None,
    backend: Optional[str] = None,
) -> AttackEvaluation:
    """Evaluate a released model's evasiveness and data leakage.

    Either ``groups`` (layer-wise attack) or ``payload`` +
    ``weight_vector`` (uniform attack over a flat weight vector) selects
    the decoding source.  ``backend`` scopes the kernel backend used for
    the forward passes (the accuracy and recognizability sweeps run
    no-grad, so the fast backend's fused inference kernels apply).
    """
    with _backend.use_backend(backend):
        return _evaluate_attack(
            model, test_inputs, test_labels, groups, payload,
            weight_vector, polarity, mean, std,
        )


def _evaluate_attack(
    model, test_inputs, test_labels, groups, payload,
    weight_vector, polarity, mean, std,
) -> AttackEvaluation:
    accuracy = evaluate_accuracy(model, test_inputs, test_labels)
    if groups is not None:
        reconstructions, originals, _ = decode_groups(groups, polarity=polarity)
        labels: List[int] = []
        for group in groups:
            if group.payload is not None:
                labels.extend(group.payload.labels.tolist())
        labels = np.asarray(labels)
    elif payload is not None and weight_vector is not None:
        reconstructions = decode_images(weight_vector, payload, polarity=polarity)
        originals = payload.images
        labels = payload.labels
    else:
        raise ValueError("need either groups or (payload, weight_vector)")
    mape = batch_mape(originals, reconstructions)
    ssim_values = batch_ssim(originals, reconstructions)
    recognizable = recognizable_mask(model, reconstructions, labels, mean, std)
    return AttackEvaluation(
        accuracy=accuracy,
        reconstructions=reconstructions,
        originals=originals,
        mape_per_image=mape,
        ssim_per_image=ssim_values,
        recognizable=recognizable,
    )
