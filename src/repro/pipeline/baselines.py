"""Baselines: benign training, the original uniform attack, and
quantize-with-any-method -- the comparison arms of Tables I/III/IV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional, Tuple

import numpy as np

from repro.attacks.correlated import CorrelationPenalty
from repro.attacks.secret import SecretPayload
from repro.datasets.base import ImageDataset
from repro.datasets.transforms import images_to_batch, normalize_batch
from repro.errors import ConfigError
from repro.metrics.accuracy import evaluate_accuracy
from repro.models.introspect import encodable_parameters
from repro.nn.dataloader import DataLoader
from repro.nn.module import Module
from repro.pipeline.config import QuantizationConfig, TrainingConfig
from repro.pipeline.evaluation import AttackEvaluation, evaluate_attack
from repro.pipeline.trainer import Trainer, TrainHistory
from repro.quantization.base import QuantizationResult, Quantizer, apply_quantization
from repro.quantization.finetune import finetune_quantized
from repro.quantization.target_correlated import TargetCorrelatedQuantizer
from repro.quantization.uniform import KMeansQuantizer, UniformQuantizer
from repro.quantization.weighted_entropy import WeightedEntropyQuantizer


def make_quantizer(
    config: QuantizationConfig,
    target_images: Optional[np.ndarray] = None,
    flip: bool = False,
) -> Quantizer:
    """Build the quantizer named by a :class:`QuantizationConfig`.

    ``flip`` only affects the target-correlated method: it reverses the
    pixel histogram when the trained weight-pixel correlation is
    negative (see :func:`repro.quantization.target_correlated.detect_flip`).
    """
    config.validate()
    if config.method == "target_correlated":
        if target_images is None:
            raise ConfigError("target_correlated quantization needs target_images")
        return TargetCorrelatedQuantizer(target_images, config.levels, config.scope,
                                         flip=flip)
    if config.method == "weighted_entropy":
        return WeightedEntropyQuantizer(config.levels, config.scope)
    if config.method == "uniform":
        return UniformQuantizer(config.levels, config.scope)
    return KMeansQuantizer(config.levels, config.scope)


def quantize_model_for_attack(
    model: Module,
    config: QuantizationConfig,
    target_images: Optional[np.ndarray] = None,
    flip: bool = False,
    encoding_names: Optional[list] = None,
) -> QuantizationResult:
    """Quantize as the adversary would: Algorithm 1 on the layers that
    carry data, a benign quantizer (k-means, same levels) elsewhere.

    Applying the target pixel histogram to *non-encoding* layers hurts
    accuracy when the histogram is skewed (dark-background digits,
    bright-background faces) -- those layers' weights are ordinary
    Gaussians, not pixel mirrors.  The adversary writes the quantizer,
    so nothing stops them from mixing methods per layer.
    """
    if (config.method == "target_correlated" and encoding_names):
        quantizer = make_quantizer(config, target_images=target_images, flip=flip)
        result = quantizer.quantize_model(model, names=encoding_names)
        wanted = set(encoding_names)
        other_names = [n for n, _ in encodable_parameters(model) if n not in wanted]
        if other_names:
            benign = KMeansQuantizer(config.levels, config.scope)
            other = benign.quantize_model(model, names=other_names)
            result.codebooks.update(other.codebooks)
            result.assignments.update(other.assignments)
            result.validate()
        return result
    quantizer = make_quantizer(config, target_images=target_images, flip=flip)
    return quantizer.quantize_model(model)


def run_baseline_suite(
    arms: Mapping[str, Callable[[], Mapping[str, Any]]],
    parallel: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
) -> "SweepResult":
    """Evaluate named baseline arms, optionally across worker processes.

    Each arm is a zero-argument callable returning a metrics mapping
    (e.g. a benign training run, the original uniform attack, or one
    quantization method) -- the comparison columns of Tables I/III/IV.
    The result is a :class:`~repro.pipeline.sweep.SweepResult` with one
    record per arm, ``{"arm": name, **metrics}``; a raising, crashing
    or timed-out arm becomes a failure record (``error`` /
    ``error_kind`` keys) instead of aborting its siblings.

    ``parallel=None`` or ``<= 1`` runs in-process; larger values fan
    out through :class:`repro.parallel.WorkerPool` (records come back
    in arm order either way).
    """
    from repro.parallel.pool import Task, WorkerPool
    from repro.pipeline.sweep import ERROR_KEY, SweepResult

    names = list(arms)
    pool = WorkerPool(max_workers=parallel or 1, timeout=timeout,
                      retries=retries)
    outcomes = pool.run([Task(arms[name]) for name in names])
    result = SweepResult()
    for name, outcome in zip(names, outcomes):
        record: dict = {"arm": name}
        if outcome.ok:
            record.update(outcome.value)
        else:
            record[ERROR_KEY] = outcome.error
            record["error_kind"] = outcome.error_kind
        result.records.append(record)
    return result


@dataclass
class BenignResult:
    model: Module
    accuracy: float
    history: TrainHistory
    mean: np.ndarray
    std: np.ndarray


def train_benign(
    train_dataset: ImageDataset,
    test_dataset: ImageDataset,
    model_builder: Callable[[], Module],
    training: TrainingConfig = TrainingConfig(),
    ddp_workers: Optional[int] = None,
) -> BenignResult:
    """Plain training run -- the reference the data holder validates against."""
    train_batch = images_to_batch(train_dataset.images)
    train_batch, mean, std = normalize_batch(train_batch)
    test_batch = images_to_batch(test_dataset.images)
    test_batch, _, _ = normalize_batch(test_batch, mean, std)
    model = model_builder()
    trainer = Trainer(model, train_batch, train_dataset.labels, training,
                      ddp_workers=ddp_workers)
    history = trainer.train()
    accuracy = evaluate_accuracy(model, test_batch, test_dataset.labels)
    return BenignResult(model, accuracy, history, mean, std)


@dataclass
class OriginalAttackResult:
    """Uniform-rate correlated value encoding (Song et al. / Eq. 1)."""

    model: Module
    payload: SecretPayload
    penalty: CorrelationPenalty
    history: TrainHistory
    evaluation: AttackEvaluation
    mean: np.ndarray
    std: np.ndarray

    def weight_vector(self) -> np.ndarray:
        from repro.attacks.decoder import extract_weight_vector
        return extract_weight_vector(self.model)


def original_correlation_attack(
    train_dataset: ImageDataset,
    test_dataset: ImageDataset,
    model_builder: Callable[[], Module],
    training: TrainingConfig = TrainingConfig(),
    rate: float = 5.0,
    num_images: Optional[int] = None,
    selection_seed: int = 0,
    polarity: str = "reference",
) -> OriginalAttackResult:
    """The original attack: one uniform rate over *all* encodable weights,
    targets drawn randomly with no std pre-processing."""
    train_batch = images_to_batch(train_dataset.images)
    train_batch, mean, std = normalize_batch(train_batch)
    test_batch = images_to_batch(test_dataset.images)
    test_batch, _, _ = normalize_batch(test_batch, mean, std)

    model = model_builder()
    params = [p for _, p in encodable_parameters(model)]
    total_weights = sum(p.size for p in params)
    capacity = total_weights // train_dataset.pixels_per_image
    count = min(capacity, len(train_dataset)) if num_images is None else num_images
    rng = np.random.default_rng(selection_seed)
    indices = rng.choice(len(train_dataset), size=count, replace=False)
    payload = SecretPayload.from_dataset(train_dataset, np.sort(indices))

    penalty = CorrelationPenalty(params, payload.secret_vector(), rate)
    trainer = Trainer(model, train_batch, train_dataset.labels, training, penalty=penalty)
    history = trainer.train()

    from repro.attacks.decoder import extract_weight_vector
    evaluation = evaluate_attack(
        model, test_batch, test_dataset.labels,
        payload=payload, weight_vector=extract_weight_vector(model),
        polarity=polarity, mean=mean, std=std,
    )
    return OriginalAttackResult(model, payload, penalty, history, evaluation, mean, std)


def quantize_and_finetune(
    model: Module,
    config: QuantizationConfig,
    train_dataset: ImageDataset,
    training: TrainingConfig,
    mean: np.ndarray,
    std: np.ndarray,
    target_images: Optional[np.ndarray] = None,
    penalty=None,
    flip: bool = False,
    encoding_names: Optional[list] = None,
) -> QuantizationResult:
    """Quantize a trained model and run the light fine-tuning pass.

    When ``encoding_names`` is given and the method is target-correlated,
    the mixed per-layer strategy of :func:`quantize_model_for_attack` is
    used.
    """
    result = quantize_model_for_attack(
        model, config, target_images=target_images, flip=flip,
        encoding_names=encoding_names,
    )
    apply_quantization(model, result)
    if config.finetune_epochs > 0:
        train_batch = images_to_batch(train_dataset.images)
        train_batch, _, _ = normalize_batch(train_batch, mean, std)
        loader = DataLoader(
            train_batch, train_dataset.labels,
            batch_size=training.batch_size, seed=training.seed + 1,
        )
        finetune_quantized(
            model, result, loader,
            epochs=config.finetune_epochs, lr=config.finetune_lr,
            momentum=training.momentum, penalty=penalty,
        )
    return result
