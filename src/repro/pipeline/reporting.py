"""Plain-text table rendering for benchmark output.

Benchmarks print the same row/column structure as the paper's tables.
The implementations moved to :mod:`repro.telemetry.tables` (so the
telemetry layer can render tables without importing the pipeline);
this module re-exports them for existing callers.
"""

from __future__ import annotations

from repro.telemetry.tables import (  # noqa: F401
    Cell,
    format_records,
    format_table,
    percent,
)

__all__ = ["Cell", "format_records", "format_table", "percent"]
