"""Plain-text table rendering for benchmark output.

Benchmarks print the same row/column structure as the paper's tables;
this keeps the formatting in one place.
"""

from __future__ import annotations

from typing import List, Sequence, Union

Cell = Union[str, int, float]


def _format_cell(cell: Cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Cell]], title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    rendered: List[List[str]] = [[_format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def _line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    out: List[str] = []
    if title:
        out.append(title)
    out.append(_line(list(headers)))
    out.append("-+-".join("-" * width for width in widths))
    out.extend(_line(row) for row in rendered)
    return "\n".join(out)


def percent(value: float) -> str:
    """0.8831 -> '88.31%'."""
    return f"{100.0 * value:.2f}%"
