"""The paper's end-to-end quantized correlation encoding attack (Fig. 1).

Three stages, each a "normal looking" part of a training pipeline:

1. **Data pre-processing** (Sec. IV-A): select target images whose pixel
   std sits in a window around the dataset mean, sized to the model's
   capacity.
2. **Layer-wise correlation training** (Sec. IV-B, Eq. 2): train with
   cross-entropy plus per-group correlation penalties; accuracy-critical
   early groups get rate 0.
3. **Target-correlated quantization** (Sec. IV-C, Algorithm 1) plus
   light cluster-shared fine-tuning.

The returned result carries the uncompressed and quantized evaluations
side by side -- exactly the columns of Table III.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.attacks.layerwise import (
    LayerGroup,
    LayerwiseCorrelationPenalty,
    assign_payload,
    group_by_layer_ranges,
)
from repro.attacks.secret import SecretPayload
from repro.datasets.base import ImageDataset
from repro.datasets.transforms import images_to_batch, normalize_batch
from repro.errors import CapacityError
from repro.nn.dataloader import DataLoader
from repro.nn.module import Module
from repro.pipeline.config import AttackConfig, QuantizationConfig, TrainingConfig
from repro.pipeline.evaluation import AttackEvaluation, evaluate_attack
from repro.pipeline.trainer import Trainer, TrainHistory
from repro.preprocessing.selection import SelectionResult, select_encoding_targets
from repro.quantization.base import QuantizationResult, apply_quantization
from repro.quantization.finetune import finetune_quantized
from repro.telemetry.events import get_logger
from repro.telemetry.trace import timed_stage


@dataclass
class AttackFlowResult:
    """Everything produced by one run of the quantized attack flow."""

    model: Module
    groups: List[LayerGroup]
    selection: SelectionResult
    payload: SecretPayload
    history: TrainHistory
    uncompressed: AttackEvaluation
    quantized: Optional[AttackEvaluation]
    quantization: Optional[QuantizationResult]
    mean: np.ndarray
    std: np.ndarray

    @property
    def encoded_images(self) -> int:
        return self.uncompressed.encoded_images


def run_quantized_correlation_attack(
    train_dataset: ImageDataset,
    test_dataset: ImageDataset,
    model_builder: Callable[[], Module],
    training: TrainingConfig = TrainingConfig(),
    attack: AttackConfig = AttackConfig(),
    quantization: Optional[QuantizationConfig] = QuantizationConfig(),
    progress: Optional[Callable[[str], None]] = None,
    backend: Optional[str] = None,
    monitor: Optional[object] = None,
    dtype: Optional[str] = None,
    ddp_workers: Optional[int] = None,
) -> AttackFlowResult:
    """Run the full Fig. 1 flow and evaluate it.

    Args:
        train_dataset / test_dataset: uint8 NHWC image datasets.
        model_builder: zero-argument callable building a fresh model.
        training / attack / quantization: stage configurations; pass
            ``quantization=None`` to stop after the uncompressed attack.
        progress: optional stage-name callback.
        backend: kernel backend name (``"reference"``/``"fast"``) scoped
            around the whole flow; ``None`` keeps the process default.
        dtype: compute dtype (``"float32"``/``"float64"``) scoped around
            the whole flow including model construction, so parameters,
            batches and training all run at one precision; ``None``
            keeps the process policy (see :mod:`repro.precision`).
            Evaluation metrics accumulate in float64 either way.
        monitor: optional :class:`repro.monitor.Monitor`.  It is bound
            to the attack's layer groups/payload after pre-processing,
            observed per epoch throughout correlation training, and
            ticked once more after quantization so the timeseries shows
            the imprint appearing and then being erased.
        ddp_workers: data-parallel rank count for the correlation
            training stage (see :class:`~repro.pipeline.trainer.Trainer`);
            ``None`` follows the process default (the CLI's
            ``--ddp-workers``).  The workers are torn down before the
            quantization stage, so everything downstream of training is
            unchanged.

    Returns:
        An :class:`AttackFlowResult` with per-stage artifacts and both
        evaluations.
    """
    from repro import backend as _backend
    from repro import precision as _precision
    with _backend.use_backend(backend), _precision.use_dtype(dtype):
        return _run_attack_flow(
            train_dataset, test_dataset, model_builder,
            training, attack, quantization, progress, monitor,
            ddp_workers,
        )


def _run_attack_flow(
    train_dataset: ImageDataset,
    test_dataset: ImageDataset,
    model_builder: Callable[[], Module],
    training: TrainingConfig,
    attack: AttackConfig,
    quantization: Optional[QuantizationConfig],
    progress: Optional[Callable[[str], None]],
    monitor: Optional[object] = None,
    ddp_workers: Optional[int] = None,
) -> AttackFlowResult:
    training.validate()
    attack.validate()
    if quantization is not None:
        quantization.validate()

    logger = get_logger()

    def _report(stage: str) -> None:
        from repro.telemetry.export import update_health
        update_health(stage=stage)
        logger.debug("attack.stage", stage=stage)
        if progress is not None:
            progress(stage)

    # ------------------------------------------------------- data setup
    with timed_stage("attack.setup"):
        train_batch = images_to_batch(train_dataset.images)
        train_batch, mean, std = normalize_batch(train_batch)
        test_batch = images_to_batch(test_dataset.images)
        test_batch, _, _ = normalize_batch(test_batch, mean, std)

        model = model_builder()

    # ------------------------------------------- stage 1: pre-processing
    _report("pre-processing")
    with timed_stage("attack.pre_processing"):
        groups = group_by_layer_ranges(model, attack.layer_ranges, attack.rates)
        pixels = train_dataset.pixels_per_image
        capacity = sum(g.capacity(pixels) for g in groups if g.rate > 0.0)
        capacity = max(1, int(capacity * attack.capacity_fraction)) if capacity else 0
        if capacity == 0:
            raise CapacityError(
                "active groups cannot hold a single image; use a larger model "
                "or smaller images"
            )
        selection = select_encoding_targets(
            train_dataset, capacity,
            window=attack.std_window,
            seed=attack.selection_seed,
            std_range=attack.std_range,
        )
        full_payload = SecretPayload.from_dataset(train_dataset, selection.target_indices)
        assigned = assign_payload(groups, full_payload)
        payload = full_payload.take(assigned)

    # --------------------------------- stage 2: correlation training
    _report("training")
    if monitor is not None:
        monitor.bind(groups=groups, payload=payload, mean=mean, std=std)
    with timed_stage("attack.training", epochs=training.epochs):
        penalty = LayerwiseCorrelationPenalty(groups)
        trainer = Trainer(model, train_batch, train_dataset.labels, training,
                          penalty=penalty, probes=monitor,
                          ddp_workers=ddp_workers)
        history = trainer.train()

    _report("evaluating uncompressed")
    with timed_stage("attack.evaluate", which="uncompressed"):
        uncompressed = evaluate_attack(
            model, test_batch, test_dataset.labels, groups=groups,
            polarity=attack.polarity, mean=mean, std=std,
        )

    # ------------------------------------------ stage 3: quantization
    quantized_eval: Optional[AttackEvaluation] = None
    quant_result: Optional[QuantizationResult] = None
    if quantization is not None:
        _report("quantizing")
        with timed_stage("attack.quantize", bits=quantization.bits,
                         method=quantization.method):
            # Algorithm 1 assumes the weights mirror the pixel distribution;
            # under Eq. 1's |corr| the mirror may be negative, so detect the
            # sign on the first active group and flip the histogram if needed.
            from repro.quantization.target_correlated import detect_flip
            flip = False
            encoding_names: List[str] = []
            for group in groups:
                if group.payload is not None:
                    if not encoding_names:
                        flip = detect_flip(group.weight_vector(),
                                           group.payload.secret_vector())
                    encoding_names.extend(group.param_names)
            from repro.pipeline.baselines import quantize_model_for_attack
            quant_result = quantize_model_for_attack(
                model, quantization, target_images=payload.images, flip=flip,
                encoding_names=encoding_names,
            )
            apply_quantization(model, quant_result)
        if quantization.finetune_epochs > 0:
            with timed_stage("attack.finetune",
                             epochs=quantization.finetune_epochs):
                loader = DataLoader(
                    train_batch, train_dataset.labels,
                    batch_size=training.batch_size, seed=training.seed + 1,
                )
                finetune_quantized(
                    model, quant_result, loader,
                    epochs=quantization.finetune_epochs,
                    lr=quantization.finetune_lr,
                    momentum=training.momentum,
                    penalty=penalty,
                )
        _report("evaluating quantized")
        with timed_stage("attack.evaluate", which="quantized"):
            quantized_eval = evaluate_attack(
                model, test_batch, test_dataset.labels, groups=groups,
                polarity=attack.polarity, mean=mean, std=std,
            )
        if monitor is not None:
            # One post-release tick: the same probes over the quantized
            # weights, so the timeseries ends with the erased imprint.
            monitor.on_epoch(model, epoch=history.epochs, history=history)

    return AttackFlowResult(
        model=model,
        groups=groups,
        selection=selection,
        payload=payload,
        history=history,
        uncompressed=uncompressed,
        quantized=quantized_eval,
        quantization=quant_result,
        mean=mean,
        std=std,
    )
