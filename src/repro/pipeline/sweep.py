"""Parameter-sweep runner: cartesian grids of experiment configurations.

The benchmarks hand-roll their sweeps for readable output; this runner
is the programmatic equivalent for users extending the study -- it
expands a grid, runs a callable per point, tags each record with its
parameters, and renders/exports the collected records.

``Sweep.run(parallel=N)`` fans the grid across a
:class:`repro.parallel.WorkerPool`.  Parallel and serial runs produce
identical records: points are recorded in grid order regardless of
completion order, and per-point randomness (when ``seed`` is given)
derives from ``SeedSequence.spawn`` by point index, independent of
scheduling.  A failed point becomes a failure record (``error`` /
``error_kind`` keys) instead of aborting the sweep.
"""

from __future__ import annotations

import csv
import itertools
import numbers
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigError
from repro.pipeline.reporting import format_records
from repro.telemetry.metrics import default_registry
from repro.telemetry.trace import span

#: Key marking a sweep record as a failed point.
ERROR_KEY = "error"


def expand_grid(grid: Mapping[str, Sequence[Any]]) -> Iterator[Dict[str, Any]]:
    """Yield one dict per point of the cartesian product of ``grid``."""
    if not grid:
        yield {}
        return
    keys = list(grid)
    for values in itertools.product(*(grid[key] for key in keys)):
        yield dict(zip(keys, values))


@dataclass
class SweepResult:
    """Records collected by :class:`Sweep`."""

    records: List[Dict[str, Any]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def columns(self) -> List[str]:
        columns: List[str] = []
        for record in self.records:
            for key in record:
                if key not in columns:
                    columns.append(key)
        return columns

    def filter(self, **criteria: Any) -> "SweepResult":
        """Records matching every key=value criterion.

        Records lacking a criterion key simply do not match; failure
        records are handled like any other record.
        """
        kept = [
            record for record in self.records
            if all(record.get(key) == value for key, value in criteria.items())
        ]
        return SweepResult(records=kept)

    def failures(self) -> "SweepResult":
        """Only the failure records (points whose experiment failed)."""
        return SweepResult(records=[r for r in self.records if ERROR_KEY in r])

    def ok(self) -> "SweepResult":
        """Only the successful records."""
        return SweepResult(records=[r for r in self.records if ERROR_KEY not in r])

    def best(self, metric: str, maximize: bool = True) -> Dict[str, Any]:
        """The record with the best value of ``metric``.

        Records that lack the metric or carry a non-orderable value for
        it (``None``, NaN, failure entries) are skipped rather than
        raising; :class:`ConfigError` is raised only when *no* record
        carries a usable value.
        """
        scored = [r for r in self.records if _orderable(r.get(metric))]
        if not scored:
            raise ConfigError(f"no record carries metric {metric!r}")
        chooser = max if maximize else min
        return chooser(scored, key=lambda r: r[metric])

    def to_table(self, title: str = "") -> str:
        return format_records(self.records, title=title, columns=self.columns())

    def to_csv(self, path: Union[str, os.PathLike]) -> None:
        columns = self.columns()
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.DictWriter(handle, fieldnames=columns, restval="")
            writer.writeheader()
            writer.writerows(self.records)


def _orderable(value: Any) -> bool:
    if not isinstance(value, numbers.Real):
        return False
    return value == value  # rejects NaN


def _run_point(experiment: Callable[..., Mapping[str, Any]],
               params: Dict[str, Any],
               seed_seq: Optional[np.random.SeedSequence],
               index: int,
               backend: Optional[str] = None) -> Dict[str, Any]:
    """Execute one grid point (module-level for spawn-safe pickling).

    ``backend`` is threaded by *name* so it survives pickling into
    spawn-started workers, where the backend registry is re-created on
    import.
    """
    from repro import backend as _backend
    with _backend.use_backend(backend), \
            span("sweep.point", index=index,
                 **{k: repr(v) for k, v in params.items()}):
        if seed_seq is not None:
            metrics = experiment(**params, rng=np.random.default_rng(seed_seq))
        else:
            metrics = experiment(**params)
    return dict(metrics)


class Sweep:
    """Run ``experiment(**params)`` over every grid point.

    The experiment callable returns a dict of metrics; each record in
    the result is ``{**params, **metrics}``.

    With ``telemetry=True`` each record additionally carries its
    wall-clock ``duration_s`` and a flattened metrics snapshot under
    ``tm.*`` keys, so a sweep export doubles as a per-point cost trace.
    Serial runs snapshot the cumulative default registry after each
    point; pooled runs attach the worker's per-point snapshot (see
    ``repro.parallel``).  Each point also runs inside a ``sweep.point``
    span for Chrome-trace export.
    """

    def __init__(self, grid: Mapping[str, Sequence[Any]],
                 experiment: Callable[..., Mapping[str, Any]],
                 telemetry: bool = False) -> None:
        if not callable(experiment):
            raise ConfigError("experiment must be callable")
        self.grid = dict(grid)
        self.experiment = experiment
        self.telemetry = bool(telemetry)

    def __len__(self) -> int:
        count = 1
        for values in self.grid.values():
            count *= len(values)
        return count

    def run(self, progress: Callable[[Dict[str, Any]], None] = None,
            parallel: Optional[int] = None,
            seed: Optional[int] = None,
            timeout: Optional[float] = None,
            retries: int = 1,
            backend: Optional[str] = None) -> SweepResult:
        """Run every grid point and collect records.

        Args:
            progress: per-point callback receiving the point's params
                (called at submission time, in grid order).
            parallel: ``None`` keeps the legacy in-line path where an
                experiment exception propagates.  Any integer routes
                through :class:`repro.parallel.WorkerPool` semantics --
                failed points become failure records -- with ``<= 1``
                executing in-process and ``> 1`` fanning out across
                processes.  Serial and parallel runs produce identical
                records (``telemetry=True`` keys excepted: durations
                and snapshots are execution-dependent by nature).
            seed: when given, point ``i`` receives an extra ``rng``
                kwarg, a ``numpy`` Generator derived via
                ``SeedSequence(seed).spawn`` by grid index -- identical
                regardless of scheduling.
            timeout / retries: per-point budget and crash retry bound,
                forwarded to the pool (ignored when ``parallel`` is
                ``None``).
            backend: kernel backend name scoped around every point --
                threaded by name into worker processes so spawn-started
                workers resolve it against their own registry.
        """
        points = list(expand_grid(self.grid))
        seeds: List[Optional[np.random.SeedSequence]] = [None] * len(points)
        if seed is not None:
            from repro.parallel.seeding import spawn_sequences
            seeds = list(spawn_sequences(seed, len(points)))

        if parallel is None:
            with span("sweep", points=len(points), parallel=0):
                return self._run_inline(points, seeds, progress, backend)

        from repro.parallel.pool import Task, WorkerPool
        for params in points:
            if progress is not None:
                progress(params)
        pool = WorkerPool(max_workers=parallel, timeout=timeout, retries=retries)
        with span("sweep", points=len(points), parallel=int(parallel)):
            outcomes = pool.run([
                Task(_run_point, (self.experiment, params, seed_seq, index,
                                  backend))
                for index, (params, seed_seq) in enumerate(zip(points, seeds))
            ])
        result = SweepResult()
        for params, outcome in zip(points, outcomes):
            record = dict(params)
            if outcome.ok:
                record.update(outcome.value)
            else:
                record[ERROR_KEY] = outcome.error
                record["error_kind"] = outcome.error_kind
            if self.telemetry:
                record["duration_s"] = outcome.duration_s
                for kind_values in outcome.telemetry.values():
                    for name, value in kind_values.items():
                        if isinstance(value, dict):
                            for fld, scalar in value.items():
                                record[f"tm.{name}.{fld}"] = scalar
                        else:
                            record[f"tm.{name}"] = value
            result.records.append(record)
        return result

    def _run_inline(self, points: List[Dict[str, Any]],
                    seeds: List[Optional[np.random.SeedSequence]],
                    progress: Callable[[Dict[str, Any]], None],
                    backend: Optional[str] = None) -> SweepResult:
        result = SweepResult()
        for index, (params, seed_seq) in enumerate(zip(points, seeds)):
            if progress is not None:
                progress(params)
            start = time.perf_counter()
            metrics = _run_point(self.experiment, params, seed_seq, index, backend)
            duration = time.perf_counter() - start
            record = dict(params)
            record.update(metrics)
            if self.telemetry:
                record["duration_s"] = duration
                for name, value in default_registry().flat_snapshot().items():
                    record[f"tm.{name}"] = value
            result.records.append(record)
        return result
