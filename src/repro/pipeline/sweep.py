"""Parameter-sweep runner: cartesian grids of experiment configurations.

The benchmarks hand-roll their sweeps for readable output; this runner
is the programmatic equivalent for users extending the study -- it
expands a grid, runs a callable per point, tags each record with its
parameters, and renders/exports the collected records.
"""

from __future__ import annotations

import csv
import itertools
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Sequence, Union

from repro.errors import ConfigError
from repro.pipeline.reporting import format_records
from repro.telemetry.metrics import default_registry
from repro.telemetry.trace import span


def expand_grid(grid: Mapping[str, Sequence[Any]]) -> Iterator[Dict[str, Any]]:
    """Yield one dict per point of the cartesian product of ``grid``."""
    if not grid:
        yield {}
        return
    keys = list(grid)
    for values in itertools.product(*(grid[key] for key in keys)):
        yield dict(zip(keys, values))


@dataclass
class SweepResult:
    """Records collected by :class:`Sweep`."""

    records: List[Dict[str, Any]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def columns(self) -> List[str]:
        columns: List[str] = []
        for record in self.records:
            for key in record:
                if key not in columns:
                    columns.append(key)
        return columns

    def filter(self, **criteria: Any) -> "SweepResult":
        """Records matching every key=value criterion."""
        kept = [
            record for record in self.records
            if all(record.get(key) == value for key, value in criteria.items())
        ]
        return SweepResult(records=kept)

    def best(self, metric: str, maximize: bool = True) -> Dict[str, Any]:
        """The record with the best value of ``metric``."""
        scored = [r for r in self.records if metric in r]
        if not scored:
            raise ConfigError(f"no record carries metric {metric!r}")
        chooser = max if maximize else min
        return chooser(scored, key=lambda r: r[metric])

    def to_table(self, title: str = "") -> str:
        return format_records(self.records, title=title, columns=self.columns())

    def to_csv(self, path: Union[str, os.PathLike]) -> None:
        columns = self.columns()
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.DictWriter(handle, fieldnames=columns)
            writer.writeheader()
            writer.writerows(self.records)


class Sweep:
    """Run ``experiment(**params)`` over every grid point.

    The experiment callable returns a dict of metrics; each record in
    the result is ``{**params, **metrics}``.

    With ``telemetry=True`` each record additionally carries its
    wall-clock ``duration_s`` and the default registry's flattened
    snapshot under ``tm.*`` keys (snapshotted after the point ran), so a
    sweep export doubles as a per-point cost trace.  Each point also
    runs inside a ``sweep.point`` span for Chrome-trace export.
    """

    def __init__(self, grid: Mapping[str, Sequence[Any]],
                 experiment: Callable[..., Mapping[str, Any]],
                 telemetry: bool = False) -> None:
        if not callable(experiment):
            raise ConfigError("experiment must be callable")
        self.grid = dict(grid)
        self.experiment = experiment
        self.telemetry = bool(telemetry)

    def __len__(self) -> int:
        count = 1
        for values in self.grid.values():
            count *= len(values)
        return count

    def run(self, progress: Callable[[Dict[str, Any]], None] = None) -> SweepResult:
        result = SweepResult()
        for index, params in enumerate(expand_grid(self.grid)):
            if progress is not None:
                progress(params)
            with span("sweep.point", index=index,
                      **{k: repr(v) for k, v in params.items()}):
                start = time.perf_counter()
                metrics = self.experiment(**params)
                duration = time.perf_counter() - start
            record = dict(params)
            record.update(metrics)
            if self.telemetry:
                record["duration_s"] = duration
                for name, value in default_registry().flat_snapshot().items():
                    record[f"tm.{name}"] = value
            result.records.append(record)
        return result
