"""Parameter-sweep runner: cartesian grids of experiment configurations.

The benchmarks hand-roll their sweeps for readable output; this runner
is the programmatic equivalent for users extending the study -- it
expands a grid, runs a callable per point, tags each record with its
parameters, and renders/exports the collected records.
"""

from __future__ import annotations

import csv
import itertools
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Sequence, Union

from repro.errors import ConfigError
from repro.pipeline.reporting import format_table


def expand_grid(grid: Mapping[str, Sequence[Any]]) -> Iterator[Dict[str, Any]]:
    """Yield one dict per point of the cartesian product of ``grid``."""
    if not grid:
        yield {}
        return
    keys = list(grid)
    for values in itertools.product(*(grid[key] for key in keys)):
        yield dict(zip(keys, values))


@dataclass
class SweepResult:
    """Records collected by :class:`Sweep`."""

    records: List[Dict[str, Any]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def columns(self) -> List[str]:
        columns: List[str] = []
        for record in self.records:
            for key in record:
                if key not in columns:
                    columns.append(key)
        return columns

    def filter(self, **criteria: Any) -> "SweepResult":
        """Records matching every key=value criterion."""
        kept = [
            record for record in self.records
            if all(record.get(key) == value for key, value in criteria.items())
        ]
        return SweepResult(records=kept)

    def best(self, metric: str, maximize: bool = True) -> Dict[str, Any]:
        """The record with the best value of ``metric``."""
        scored = [r for r in self.records if metric in r]
        if not scored:
            raise ConfigError(f"no record carries metric {metric!r}")
        chooser = max if maximize else min
        return chooser(scored, key=lambda r: r[metric])

    def to_table(self, title: str = "") -> str:
        columns = self.columns()
        rows = [[record.get(col, "") for col in columns] for record in self.records]
        return format_table(columns, rows, title=title)

    def to_csv(self, path: Union[str, os.PathLike]) -> None:
        columns = self.columns()
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.DictWriter(handle, fieldnames=columns)
            writer.writeheader()
            writer.writerows(self.records)


class Sweep:
    """Run ``experiment(**params)`` over every grid point.

    The experiment callable returns a dict of metrics; each record in
    the result is ``{**params, **metrics}``.
    """

    def __init__(self, grid: Mapping[str, Sequence[Any]],
                 experiment: Callable[..., Mapping[str, Any]]) -> None:
        if not callable(experiment):
            raise ConfigError("experiment must be callable")
        self.grid = dict(grid)
        self.experiment = experiment

    def __len__(self) -> int:
        count = 1
        for values in self.grid.values():
            count *= len(values)
        return count

    def run(self, progress: Callable[[Dict[str, Any]], None] = None) -> SweepResult:
        result = SweepResult()
        for params in expand_grid(self.grid):
            if progress is not None:
                progress(params)
            metrics = self.experiment(**params)
            record = dict(params)
            record.update(metrics)
            result.records.append(record)
        return result
