"""White-box audits a data holder can run before releasing a model.

Two complementary signals:

1. **Distribution anomaly** -- the correlation attack visibly reshapes
   the weight distribution towards the pixel distribution (the paper's
   own Fig. 2a); a KS test against a benign reference model flags it.
2. **Correlation scan** -- the data holder *owns the training data*, so
   they can directly measure the Pearson correlation between weight
   slices and each training image.  A benign model shows |corr| near 0
   (order 1/sqrt(u)); an attacked model shows |corr| near 1 on the
   embedded images.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats

from repro.datasets.base import ImageDataset
from repro.models.introspect import parameter_vector
from repro.nn.module import Module


@dataclass(frozen=True)
class DetectionReport:
    """Outcome of a pre-release audit."""

    max_abs_correlation: float
    suspicious_images: int
    ks_statistic: Optional[float]
    flagged: bool

    def __str__(self) -> str:
        verdict = "ATTACK SUSPECTED" if self.flagged else "clean"
        ks_text = f", ks={self.ks_statistic:.3f}" if self.ks_statistic is not None else ""
        return (f"DetectionReport({verdict}: max|corr|={self.max_abs_correlation:.3f}, "
                f"{self.suspicious_images} suspicious images{ks_text})")


def weight_distribution_anomaly(
    model: Module, reference: Module, names: Optional[Sequence[str]] = None
) -> float:
    """KS statistic between a model's weights and a benign reference's.

    Both vectors are standardised first so that scale differences from
    training randomness do not dominate.
    """
    def _standardise(vector: np.ndarray) -> np.ndarray:
        std = vector.std()
        return (vector - vector.mean()) / (std if std > 1e-12 else 1.0)

    weights = _standardise(parameter_vector(model, list(names) if names else None))
    ref = _standardise(parameter_vector(reference, list(names) if names else None))
    statistic, _ = stats.ks_2samp(weights, ref)
    return float(statistic)


def correlation_scan(
    model: Module,
    dataset: ImageDataset,
    names: Optional[Sequence[str]] = None,
    stride_fraction: float = 0.25,
) -> Tuple[np.ndarray, np.ndarray]:
    """Scan weight slices for correlation with each training image.

    The encoder packs each image into a contiguous weight slice, but the
    auditor does not know the offsets, so the scan slides a window of
    one image-length over the weight vector with the given stride.

    Returns:
        (max_abs_corr, best_offset) arrays, one entry per image.
    """
    weights = parameter_vector(model, list(names) if names else None)
    pixels_per_image = dataset.pixels_per_image
    if weights.size < pixels_per_image:
        return np.zeros(len(dataset)), np.zeros(len(dataset), dtype=np.int64)
    stride = max(1, int(pixels_per_image * stride_fraction))
    offsets = np.arange(0, weights.size - pixels_per_image + 1, stride)

    # Precompute windowed weight statistics for every offset.
    windows = np.stack([weights[o:o + pixels_per_image] for o in offsets])
    windows = windows - windows.mean(axis=1, keepdims=True)
    window_norms = np.sqrt((windows ** 2).sum(axis=1))
    window_norms[window_norms < 1e-12] = 1.0

    flat_images = dataset.images.reshape(len(dataset), -1).astype(np.float64)
    flat_images = flat_images - flat_images.mean(axis=1, keepdims=True)
    image_norms = np.sqrt((flat_images ** 2).sum(axis=1))
    image_norms[image_norms < 1e-12] = 1.0

    # corr[i, o] = <image_i, window_o> / (|image_i| |window_o|)
    correlation = (flat_images @ windows.T) / image_norms[:, None] / window_norms[None, :]
    best = np.abs(correlation).argmax(axis=1)
    max_abs = np.abs(correlation)[np.arange(len(dataset)), best]
    return max_abs, offsets[best]


def detect_attack(
    model: Module,
    dataset: ImageDataset,
    reference: Optional[Module] = None,
    correlation_threshold: float = 0.5,
    ks_threshold: float = 0.15,
    max_images: int = 64,
    seed: int = 0,
) -> DetectionReport:
    """Run the full audit: correlation scan (+ optional KS anomaly).

    Args:
        model: the model about to be released.
        dataset: the holder's training data (a random subsample of
            ``max_images`` is scanned -- the attack embeds a sizable
            subset, so sampling finds it with high probability).
        reference: optional benign model of the same architecture.
        correlation_threshold: |corr| above this flags an image.
        ks_threshold: KS statistic above this flags the distribution.
    """
    if len(dataset) > max_images:
        rng = np.random.default_rng(seed)
        indices = rng.choice(len(dataset), size=max_images, replace=False)
        dataset = dataset.subset(np.sort(indices))
    max_abs, _ = correlation_scan(model, dataset)
    suspicious = int((max_abs > correlation_threshold).sum())
    ks_statistic = None
    ks_flag = False
    if reference is not None:
        ks_statistic = weight_distribution_anomaly(model, reference)
        ks_flag = ks_statistic > ks_threshold
    flagged = suspicious > 0 or ks_flag
    return DetectionReport(
        max_abs_correlation=float(max_abs.max()) if len(max_abs) else 0.0,
        suspicious_images=suspicious,
        ks_statistic=ks_statistic,
        flagged=flagged,
    )
