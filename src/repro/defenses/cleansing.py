"""Retraining-based payload removal.

Two recipes, measured in ``benchmarks/test_ext_blackbox_and_cleanse.py``:

* :func:`retrain_cleanse` -- plain clean fine-tuning with weight decay.
  **This is weak on a converged model**: once the task loss is ~0 the
  only force is weight decay, which rescales weights uniformly -- and
  both the Pearson correlation and the min-max decoder are
  scale-invariant, so the payload survives untouched (the bench shows
  this negative result).
* :func:`perturb_and_restore` -- inject payload-destroying noise first,
  then fine-tune to restore accuracy.  The noise corrupts the embedded
  pixels; the restoring gradients care only about the decision function
  and do not rebuild them.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module
from repro.pipeline.config import TrainingConfig
from repro.pipeline.trainer import Trainer


def retrain_cleanse(
    model: Module,
    inputs: np.ndarray,
    labels: np.ndarray,
    epochs: int = 3,
    lr: float = 0.02,
    batch_size: int = 32,
    seed: int = 0,
    weight_decay: float = 1e-3,
) -> None:
    """Fine-tune in place on clean data with weight decay, no penalty.

    Weight decay actively pulls weights towards zero, eroding the
    embedded pixel structure faster than plain fine-tuning (embedded
    bright pixels live far from zero and carry little task gradient).
    """
    config = TrainingConfig(epochs=epochs, batch_size=batch_size, lr=lr,
                            momentum=0.9, weight_decay=weight_decay, seed=seed)
    Trainer(model, inputs, labels, config).train()


def perturb_and_restore(
    model: Module,
    inputs: np.ndarray,
    labels: np.ndarray,
    noise_fraction: float = 0.5,
    epochs: int = 3,
    lr: float = 0.02,
    batch_size: int = 32,
    seed: int = 0,
) -> None:
    """Noise-then-finetune payload removal (in place).

    ``noise_fraction`` of the per-tensor weight std is injected first
    (destroying the embedded pixel structure), then clean fine-tuning
    recovers the decision function.  Restoration gradients do not
    recreate the payload -- nothing in the clean loss references it.
    """
    from repro.defenses.sanitization import inject_noise

    inject_noise(model, noise_fraction, seed=seed)
    retrain_cleanse(model, inputs, labels, epochs=epochs, lr=lr,
                    batch_size=batch_size, seed=seed, weight_decay=0.0)
