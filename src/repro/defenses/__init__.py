"""Defenses for the data holder (extension beyond the paper).

The paper closes by hoping the community will "examine this emerging
threat"; this subpackage implements the natural countermeasures a data
holder can run *before releasing a model*, and the benchmarks measure
how well they catch the paper's attack:

* :mod:`repro.defenses.detection` -- white-box audits: weight
  distribution anomaly testing against a benign reference, and direct
  correlation scanning of the weights against the holder's own data.
* :mod:`repro.defenses.sanitization` -- payload destruction: noise
  injection and weight clipping applied to the released weights, with
  an accuracy cost the holder controls.
"""

from repro.defenses.detection import (
    DetectionReport,
    correlation_scan,
    detect_attack,
    weight_distribution_anomaly,
)
from repro.defenses.sanitization import clip_weights, inject_noise
from repro.defenses.cleansing import perturb_and_restore, retrain_cleanse

__all__ = [
    "DetectionReport", "weight_distribution_anomaly", "correlation_scan",
    "detect_attack", "inject_noise", "clip_weights", "retrain_cleanse",
    "perturb_and_restore",
]
