"""Payload destruction before release: noise injection and clipping.

Unlike detection, sanitization does not need a verdict: the holder
perturbs the weights just enough to scramble any embedded pixels while
keeping accuracy.  Because the decoder is a min-max remap of a weight
slice, additive noise at a fraction of the per-layer weight std directly
becomes pixel noise in any reconstruction.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.models.introspect import encodable_parameters
from repro.nn.module import Module


def inject_noise(
    model: Module,
    noise_fraction: float = 0.1,
    names: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> None:
    """Add Gaussian noise of ``noise_fraction`` x per-tensor weight std.

    Applied in place to the encodable weights.  A fraction around
    0.05-0.2 typically costs little accuracy but adds 5-20% pixel-range
    noise to any embedded image.
    """
    if noise_fraction < 0:
        raise ConfigError(f"noise_fraction must be >= 0, got {noise_fraction}")
    if noise_fraction == 0:
        return
    rng = np.random.default_rng(seed)
    params = encodable_parameters(model)
    if names is not None:
        wanted = set(names)
        params = [(n, p) for n, p in params if n in wanted]
    for _, param in params:
        scale = float(param.data.std()) * noise_fraction
        if scale > 0:
            param.data = param.data + rng.normal(0.0, scale, size=param.shape)


def clip_weights(
    model: Module,
    percentile: float = 99.0,
    names: Optional[Sequence[str]] = None,
) -> None:
    """Clip each tensor's weights at the given |w| percentile.

    Embedded bright/dark pixels live in the distribution tails; clipping
    flattens them (at some cost to the decoded dynamic range) while
    barely moving the bulk of the weights.
    """
    if not 50.0 < percentile <= 100.0:
        raise ConfigError(f"percentile must be in (50, 100], got {percentile}")
    params = encodable_parameters(model)
    if names is not None:
        wanted = set(names)
        params = [(n, p) for n, p in params if n in wanted]
    for _, param in params:
        limit = float(np.percentile(np.abs(param.data), percentile))
        param.data = np.clip(param.data, -limit, limit)
