"""Neural-network ops: convolution, pooling, softmax and the fused loss.

Convolution is implemented with the standard im2col lowering: each local
receptive field becomes a column, so the convolution is one large matrix
multiply.  This is the usual way to get acceptable conv performance out
of pure numpy.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.autograd.function import Function
from repro.autograd.tensor import Tensor
from repro.errors import ShapeError

# ---------------------------------------------------------------------------
# im2col machinery
# ---------------------------------------------------------------------------


def _conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"convolution output size is non-positive: input={size}, "
            f"kernel={kernel}, stride={stride}, padding={padding}"
        )
    return out


def _im2col_indices(
    shape: Tuple[int, int, int, int], kh: int, kw: int, stride: int, padding: int
):
    """Index arrays that gather conv patches into columns (CS231n style)."""
    _, channels, height, width = shape
    out_h = _conv_output_size(height, kh, stride, padding)
    out_w = _conv_output_size(width, kw, stride, padding)

    i0 = np.repeat(np.arange(kh), kw)
    i0 = np.tile(i0, channels)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kw), kh * channels)
    j1 = stride * np.tile(np.arange(out_w), out_h)
    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(channels), kh * kw).reshape(-1, 1)
    return k, i, j, out_h, out_w


def im2col(x: np.ndarray, kh: int, kw: int, stride: int, padding: int) -> np.ndarray:
    """Lower NCHW input to a (C*kh*kw, N*out_h*out_w) patch matrix."""
    p = padding
    x_padded = np.pad(x, ((0, 0), (0, 0), (p, p), (p, p))) if p > 0 else x
    k, i, j, _, _ = _im2col_indices(x.shape, kh, kw, stride, padding)
    cols = x_padded[:, k, i, j]
    return cols.transpose(1, 2, 0).reshape(kh * kw * x.shape[1], -1)


def col2im(
    cols: np.ndarray,
    shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Scatter-add a patch matrix back into an NCHW array (inverse of im2col)."""
    batch, channels, height, width = shape
    p = padding
    padded = np.zeros((batch, channels, height + 2 * p, width + 2 * p), dtype=cols.dtype)
    k, i, j, _, _ = _im2col_indices(shape, kh, kw, stride, padding)
    cols_reshaped = cols.reshape(channels * kh * kw, -1, batch).transpose(2, 0, 1)
    np.add.at(padded, (slice(None), k, i, j), cols_reshaped)
    if p == 0:
        return padded
    return padded[:, :, p:-p, p:-p]


# ---------------------------------------------------------------------------
# Convolution
# ---------------------------------------------------------------------------


class Conv2dFn(Function):
    def __init__(self, stride: int = 1, padding: int = 0) -> None:
        super().__init__()
        self.stride, self.padding = int(stride), int(padding)

    def forward(self, x, weight):
        if x.ndim != 4 or weight.ndim != 4:
            raise ShapeError(f"conv2d expects NCHW input and OIHW weight, got {x.shape}, {weight.shape}")
        out_channels, in_channels, kh, kw = weight.shape
        if x.shape[1] != in_channels:
            raise ShapeError(
                f"conv2d channel mismatch: input has {x.shape[1]}, weight expects {in_channels}"
            )
        cols = im2col(x, kh, kw, self.stride, self.padding)
        out = weight.reshape(out_channels, -1) @ cols
        _, _, _, out_h, out_w = _im2col_indices(x.shape, kh, kw, self.stride, self.padding)
        out = out.reshape(out_channels, out_h, out_w, x.shape[0]).transpose(3, 0, 1, 2)
        self.save_for_backward(cols, weight)
        self._x_shape = x.shape
        return np.ascontiguousarray(out)

    def backward(self, grad):
        cols, weight = self.saved
        out_channels, _, kh, kw = weight.shape
        grad_flat = grad.transpose(1, 2, 3, 0).reshape(out_channels, -1)
        grad_weight = (grad_flat @ cols.T).reshape(weight.shape)
        grad_cols = weight.reshape(out_channels, -1).T @ grad_flat
        grad_x = col2im(grad_cols, self._x_shape, kh, kw, self.stride, self.padding)
        return grad_x, grad_weight


def conv2d(x, weight, bias=None, stride: int = 1, padding: int = 0) -> Tensor:
    """2-D convolution over NCHW input with OIHW weights."""
    out = Conv2dFn.apply(x, weight, stride=stride, padding=padding)
    if bias is not None:
        from repro.autograd import functional as F
        out = F.add(out, F.reshape(bias, (1, -1, 1, 1)))
    return out


# ---------------------------------------------------------------------------
# Pooling
# ---------------------------------------------------------------------------


class MaxPool2dFn(Function):
    def __init__(self, kernel: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel = int(kernel)
        self.stride = int(stride) if stride is not None else int(kernel)

    def forward(self, x):
        batch, channels, _, _ = x.shape
        reshaped = x.reshape(batch * channels, 1, *x.shape[2:])
        cols = im2col(reshaped, self.kernel, self.kernel, self.stride, 0)
        self._argmax = np.argmax(cols, axis=0)
        out = cols[self._argmax, np.arange(cols.shape[1])]
        _, _, _, out_h, out_w = _im2col_indices(
            reshaped.shape, self.kernel, self.kernel, self.stride, 0
        )
        self._cols_shape = cols.shape
        self._reshaped_shape = reshaped.shape
        self._x_shape = x.shape
        return out.reshape(out_h, out_w, batch * channels).transpose(2, 0, 1).reshape(
            batch, channels, out_h, out_w
        )

    def backward(self, grad):
        batch, channels, _, _ = self._x_shape
        grad_flat = grad.reshape(batch * channels, -1).transpose(1, 0).reshape(-1)
        grad_cols = np.zeros(self._cols_shape, dtype=grad.dtype)
        grad_cols[self._argmax, np.arange(grad_cols.shape[1])] = grad_flat
        grad_reshaped = col2im(
            grad_cols, self._reshaped_shape, self.kernel, self.kernel, self.stride, 0
        )
        return (grad_reshaped.reshape(self._x_shape),)


class AvgPool2dFn(Function):
    def __init__(self, kernel: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel = int(kernel)
        self.stride = int(stride) if stride is not None else int(kernel)

    def forward(self, x):
        batch, channels, _, _ = x.shape
        reshaped = x.reshape(batch * channels, 1, *x.shape[2:])
        cols = im2col(reshaped, self.kernel, self.kernel, self.stride, 0)
        out = cols.mean(axis=0)
        _, _, _, out_h, out_w = _im2col_indices(
            reshaped.shape, self.kernel, self.kernel, self.stride, 0
        )
        self._cols_shape = cols.shape
        self._reshaped_shape = reshaped.shape
        self._x_shape = x.shape
        return out.reshape(out_h, out_w, batch * channels).transpose(2, 0, 1).reshape(
            batch, channels, out_h, out_w
        )

    def backward(self, grad):
        batch, channels, _, _ = self._x_shape
        grad_flat = grad.reshape(batch * channels, -1).transpose(1, 0).reshape(-1)
        grad_cols = np.broadcast_to(
            grad_flat / (self.kernel * self.kernel), self._cols_shape
        ).copy()
        grad_reshaped = col2im(
            grad_cols, self._reshaped_shape, self.kernel, self.kernel, self.stride, 0
        )
        return (grad_reshaped.reshape(self._x_shape),)


def max_pool2d(x, kernel: int, stride: Optional[int] = None) -> Tensor:
    return MaxPool2dFn.apply(x, kernel=kernel, stride=stride)


def avg_pool2d(x, kernel: int, stride: Optional[int] = None) -> Tensor:
    return AvgPool2dFn.apply(x, kernel=kernel, stride=stride)


def global_avg_pool2d(x) -> Tensor:
    """Average each channel's spatial map down to a single value."""
    from repro.autograd import functional as F
    return F.mean(x, axis=(2, 3))


# ---------------------------------------------------------------------------
# Softmax and the fused cross-entropy loss
# ---------------------------------------------------------------------------


def _log_softmax_array(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))


class LogSoftmax(Function):
    def forward(self, logits):
        out = _log_softmax_array(logits)
        self.save_for_backward(out)
        return out

    def backward(self, grad):
        (out,) = self.saved
        softmax_vals = np.exp(out)
        return (grad - softmax_vals * grad.sum(axis=1, keepdims=True),)


class SoftmaxCrossEntropy(Function):
    """Mean cross-entropy between logits and integer class targets.

    Fusing the softmax into the loss keeps the computation numerically
    stable and makes the backward pass the textbook ``softmax - onehot``.
    """

    def __init__(self, targets: np.ndarray) -> None:
        super().__init__()
        self.targets = np.asarray(targets, dtype=np.int64)

    def forward(self, logits):
        if logits.ndim != 2:
            raise ShapeError(f"cross-entropy expects (batch, classes) logits, got {logits.shape}")
        if self.targets.shape != (logits.shape[0],):
            raise ShapeError(
                f"targets shape {self.targets.shape} does not match batch {logits.shape[0]}"
            )
        log_probs = _log_softmax_array(logits)
        self.save_for_backward(log_probs)
        batch = logits.shape[0]
        return np.asarray(-log_probs[np.arange(batch), self.targets].mean())

    def backward(self, grad):
        (log_probs,) = self.saved
        batch = log_probs.shape[0]
        grad_logits = np.exp(log_probs)
        grad_logits[np.arange(batch), self.targets] -= 1.0
        return (grad_logits * (np.asarray(grad) / batch),)


def log_softmax(logits) -> Tensor:
    return LogSoftmax.apply(logits)


def softmax(logits) -> Tensor:
    from repro.autograd import functional as F
    return F.exp(log_softmax(logits))


def softmax_cross_entropy(logits, targets) -> Tensor:
    """Mean cross-entropy loss; ``targets`` is an int array of class ids."""
    if isinstance(targets, Tensor):
        targets = targets.data
    return SoftmaxCrossEntropy.apply(logits, targets=targets)
