"""Neural-network ops: convolution, pooling, softmax and the fused loss.

Convolution is implemented with the standard im2col lowering: each local
receptive field becomes a column, so the convolution is one large matrix
multiply.  This is the usual way to get acceptable conv performance out
of pure numpy.

The numerical kernels themselves live behind the dispatch layer in
:mod:`repro.backend` -- ops here validate shapes, build graph nodes and
call ``backend.active().<kernel>(...)`` for the math.  The free
functions (``conv2d``, ``max_pool2d``, ``avg_pool2d``) additionally
take a no-grad fast path when gradients are disabled, dispatching to
the fused ``*_infer`` kernels and skipping all backward bookkeeping.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro import backend as _backend
from repro.autograd.function import Function
from repro.autograd.tensor import Tensor, is_grad_enabled
from repro.backend import reference as _reference
from repro.errors import ShapeError

# ---------------------------------------------------------------------------
# im2col machinery (public API; dispatches to the active backend)
# ---------------------------------------------------------------------------


def _conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    return _reference.conv_output_size(size, kernel, stride, padding)


def _im2col_indices(
    shape: Tuple[int, int, int, int], kh: int, kw: int, stride: int, padding: int
):
    """Index arrays that gather conv patches into columns (CS231n style)."""
    return _reference.im2col_indices(shape, kh, kw, stride, padding)


def im2col(x: np.ndarray, kh: int, kw: int, stride: int, padding: int) -> np.ndarray:
    """Lower NCHW input to a (C*kh*kw, N*out_h*out_w) patch matrix."""
    return _backend.active().im2col(x, kh, kw, stride, padding)


def col2im(
    cols: np.ndarray,
    shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Scatter-add a patch matrix back into an NCHW array (inverse of im2col).

    All backends honor the same contract: the output dtype equals
    ``cols.dtype`` (float32 gradients never upcast) and the result is
    C-contiguous.
    """
    return _backend.active().col2im(cols, shape, kh, kw, stride, padding)


# ---------------------------------------------------------------------------
# Convolution
# ---------------------------------------------------------------------------


def _validate_conv(x_shape, weight_shape) -> None:
    if len(x_shape) != 4 or len(weight_shape) != 4:
        raise ShapeError(
            f"conv2d expects NCHW input and OIHW weight, got {x_shape}, {weight_shape}"
        )
    if x_shape[1] != weight_shape[1]:
        raise ShapeError(
            f"conv2d channel mismatch: input has {x_shape[1]}, "
            f"weight expects {weight_shape[1]}"
        )


class Conv2dFn(Function):
    #: Set by the graph compiler on captured instances: a compiled replay
    #: trades the tape planner's memory saving back for compute by keeping
    #: the forward's patch matrix alive in a program-owned slot instead of
    #: re-gathering it in backward (the gather is bit-identical either
    #: way, so replay numerics do not move).
    keep_cols = False

    def __init__(self, stride: int = 1, padding: int = 0) -> None:
        super().__init__()
        self.stride, self.padding = int(stride), int(padding)
        self._cols = None

    def forward(self, x, weight):
        _validate_conv(x.shape, weight.shape)
        out, cols = _backend.active().conv2d_forward(
            x, weight, self.stride, self.padding
        )
        if self.keep_cols:
            self._cols = cols
        else:
            # Checkpoint the input rather than the patch matrix: cols is
            # ~kh*kw times larger than x and would dominate the tape's
            # saved bytes, while x is the parent tensor's own data (alive
            # through the walk regardless).  Backward re-gathers the
            # columns, which is cheap next to the two gradient matmuls.
            del cols
        self.save_for_backward(x, weight)
        self._x_shape = x.shape
        return out

    def backward(self, grad):
        x, weight = self.saved
        kh, kw = weight.shape[2], weight.shape[3]
        K = _backend.active()
        # identical gather to the forward's (same indices, same layout),
        # so gradients are bit-for-bit what saving cols would produce
        cols = self._cols
        if cols is None:
            cols = K.im2col(x, kh, kw, self.stride, self.padding)
        # the backend may skip the input-gradient matmul + scatter when
        # x is a graph leaf that does not require grad (needs_grad is
        # only populated when the graph edge was recorded)
        need_input_grad = self.needs_grad[0] if self.needs_grad else True
        return K.conv2d_backward(
            grad, cols, weight, self._x_shape, self.stride, self.padding,
            need_input_grad=need_input_grad,
        )


def conv2d(x, weight, bias=None, stride: int = 1, padding: int = 0) -> Tensor:
    """2-D convolution over NCHW input with OIHW weights."""
    if not is_grad_enabled():
        x_data = x.data if isinstance(x, Tensor) else np.asarray(x)
        w_data = weight.data if isinstance(weight, Tensor) else np.asarray(weight)
        b_data = None
        if bias is not None:
            b_data = bias.data if isinstance(bias, Tensor) else np.asarray(bias)
        _validate_conv(x_data.shape, w_data.shape)
        out = _backend.active().conv2d_infer(
            x_data, w_data, b_data, int(stride), int(padding)
        )
        return Tensor(out)
    out = Conv2dFn.apply(x, weight, stride=stride, padding=padding)
    if bias is not None:
        from repro.autograd import functional as F
        out = F.add(out, F.reshape(bias, (1, -1, 1, 1)))
    return out


# ---------------------------------------------------------------------------
# Batch normalization (fused training path)
# ---------------------------------------------------------------------------


class BatchNormTrainFn(Function):
    """Training-mode batch norm as one graph node.

    Computes the batch statistics inside ``forward`` (so a traced replay
    recomputes them from live activations -- they are data-dependent
    state, not capture-time constants), normalizes and scales/shifts in
    a single fused forward kernel; the backward is the analytic
    batch-norm gradient -- mathematically the exact derivative of the
    composed mean/sub/mul/div graph, collapsed to one kernel call.
    Backends that advertise ``fused_batchnorm`` (fast) route batch-norm
    layers through this node; reference keeps the composed graph
    bit-identical.  The layer reads ``mean``/``var`` off the node after
    ``apply`` to update its running statistics.
    """

    extra_saved = ("mean", "var")

    def __init__(self, axes: Tuple[int, ...], eps: float) -> None:
        super().__init__()
        self.mean = None
        self.var = None
        self.axes, self.eps = tuple(axes), float(eps)

    def forward(self, x, gamma, beta):
        K = _backend.active()
        mean, var = K.batchnorm_stats(x, self.axes)
        self.mean, self.var = mean, var
        out, xhat, inv_std = K.batchnorm_train_forward(
            x, mean, var, gamma, beta, self.eps
        )
        self.save_for_backward(xhat, inv_std, gamma)
        return out

    def backward(self, grad):
        xhat, inv_std, gamma = self.saved
        return _backend.active().batchnorm_train_backward(
            grad, xhat, inv_std, gamma, self.axes
        )


# ---------------------------------------------------------------------------
# Pooling
# ---------------------------------------------------------------------------


class MaxPool2dFn(Function):
    # the argmax map is as large as the pooled output; let the tape
    # planner release it with the rest of the backward state
    extra_saved = ("_argmax",)

    def __init__(self, kernel: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel = int(kernel)
        self.stride = int(stride) if stride is not None else int(kernel)

    def forward(self, x):
        out, argmax = _backend.active().maxpool2d_forward(x, self.kernel, self.stride)
        self._argmax = argmax
        self._x_shape = x.shape
        return out

    def backward(self, grad):
        return (
            _backend.active().maxpool2d_backward(
                grad, self._argmax, self._x_shape, self.kernel, self.stride
            ),
        )


class AvgPool2dFn(Function):
    def __init__(self, kernel: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel = int(kernel)
        self.stride = int(stride) if stride is not None else int(kernel)

    def forward(self, x):
        self._x_shape = x.shape
        return _backend.active().avgpool2d_forward(x, self.kernel, self.stride)

    def backward(self, grad):
        return (
            _backend.active().avgpool2d_backward(
                grad, self._x_shape, self.kernel, self.stride
            ),
        )


def _pool_args(x, kernel, stride):
    x_data = x.data if isinstance(x, Tensor) else np.asarray(x)
    return x_data, int(kernel), int(stride) if stride is not None else int(kernel)


def max_pool2d(x, kernel: int, stride: Optional[int] = None) -> Tensor:
    if not is_grad_enabled():
        x_data, k, s = _pool_args(x, kernel, stride)
        return Tensor(_backend.active().maxpool2d_infer(x_data, k, s))
    return MaxPool2dFn.apply(x, kernel=kernel, stride=stride)


def avg_pool2d(x, kernel: int, stride: Optional[int] = None) -> Tensor:
    if not is_grad_enabled():
        x_data, k, s = _pool_args(x, kernel, stride)
        return Tensor(_backend.active().avgpool2d_forward(x_data, k, s))
    return AvgPool2dFn.apply(x, kernel=kernel, stride=stride)


def global_avg_pool2d(x) -> Tensor:
    """Average each channel's spatial map down to a single value."""
    from repro.autograd import functional as F
    return F.mean(x, axis=(2, 3))


# ---------------------------------------------------------------------------
# Softmax and the fused cross-entropy loss
# ---------------------------------------------------------------------------


def _log_softmax_array(logits: np.ndarray) -> np.ndarray:
    return _backend.active().log_softmax(logits)


class LogSoftmax(Function):
    def forward(self, logits):
        out = _log_softmax_array(logits)
        self.save_for_backward(out)
        return out

    def backward(self, grad):
        (out,) = self.saved
        softmax_vals = np.exp(out)
        return (grad - softmax_vals * grad.sum(axis=1, keepdims=True),)


class SoftmaxCrossEntropy(Function):
    """Mean cross-entropy between logits and integer class targets.

    Fusing the softmax into the loss keeps the computation numerically
    stable and makes the backward pass the textbook ``softmax - onehot``.
    """

    #: The labels change every step but arrive as a constructor argument,
    #: not a graph input.  The graph compiler reads this marker and calls
    #: :meth:`rebind` with the per-replay value before each replay.
    step_binding = "targets"

    def __init__(self, targets: np.ndarray) -> None:
        super().__init__()
        self.targets = np.asarray(targets, dtype=np.int64)

    def rebind(self, targets: np.ndarray) -> None:
        """Swap in a new step's targets (compiled-replay seam)."""
        self.targets = np.asarray(targets, dtype=np.int64)

    def forward(self, logits):
        if logits.ndim != 2:
            raise ShapeError(f"cross-entropy expects (batch, classes) logits, got {logits.shape}")
        if self.targets.shape != (logits.shape[0],):
            raise ShapeError(
                f"targets shape {self.targets.shape} does not match batch {logits.shape[0]}"
            )
        log_probs = _log_softmax_array(logits)
        self.save_for_backward(log_probs)
        batch = logits.shape[0]
        return np.asarray(-log_probs[np.arange(batch), self.targets].mean())

    def backward(self, grad):
        (log_probs,) = self.saved
        batch = log_probs.shape[0]
        grad_logits = np.exp(log_probs)
        grad_logits[np.arange(batch), self.targets] -= 1.0
        return (grad_logits * (np.asarray(grad) / batch),)


def log_softmax(logits) -> Tensor:
    return LogSoftmax.apply(logits)


def softmax(logits) -> Tensor:
    from repro.autograd import functional as F
    return F.exp(log_softmax(logits))


def softmax_cross_entropy(logits, targets) -> Tensor:
    """Mean cross-entropy loss; ``targets`` is an int array of class ids."""
    if isinstance(targets, Tensor):
        targets = targets.data
    return SoftmaxCrossEntropy.apply(logits, targets=targets)
