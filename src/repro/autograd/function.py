"""Function base class: one node of the dynamic computation graph.

Each differentiable operation subclasses :class:`Function`, implements
``forward`` (ndarray in, ndarray out) and ``backward`` (gradient of the
output in, tuple of gradients w.r.t. each input out).  ``Function.apply``
wires the node into the graph when gradients are enabled.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Optional, Sequence, Tuple

import numpy as np

from repro import backend as _backend

# Op-level profiling hook.  ``None`` keeps dispatch on a no-hook fast
# path (one global read + is-None test per op); repro.telemetry.profiler
# installs a callable ``hook(op_name, phase, seconds, nbytes)`` while a
# profile() region is active.  ``Tensor.backward`` reads the same hook
# for the backward phase.
_op_hook: Optional[Callable[[str, str, float, int], None]] = None

# Graph-capture hooks (repro.graph.trace).  ``_trace_hook(fn, tensors,
# out, requires)`` fires after every ``Function.apply`` -- including
# no-grad applies, so a trace sees the full dataflow, not just the
# differentiable spine.  ``_backward_trace(root, grad, retain_graph)``
# fires at the top of ``Tensor.backward`` so a capture session knows
# which tensors a training step backpropagated from.  Both default to
# ``None`` and cost one global read per op when idle.
_trace_hook: Optional[Callable[..., None]] = None
_backward_trace: Optional[Callable[..., None]] = None


def set_op_hook(
    hook: Optional[Callable[[str, str, float, int], None]]
) -> Optional[Callable[[str, str, float, int], None]]:
    """Install (or with ``None``, clear) the op hook; returns the old one."""
    global _op_hook
    previous = _op_hook
    _op_hook = hook
    return previous


def get_op_hook() -> Optional[Callable[[str, str, float, int], None]]:
    return _op_hook


def set_trace_hook(hook: Optional[Callable[..., None]]) -> Optional[Callable[..., None]]:
    """Install (or with ``None``, clear) the apply-trace hook; returns the old one."""
    global _trace_hook
    previous = _trace_hook
    _trace_hook = hook
    return previous


def get_trace_hook() -> Optional[Callable[..., None]]:
    return _trace_hook


def set_backward_trace(hook: Optional[Callable[..., None]]) -> Optional[Callable[..., None]]:
    """Install (or with ``None``, clear) the backward-trace hook; returns the old one."""
    global _backward_trace
    previous = _backward_trace
    _backward_trace = hook
    return previous


def get_backward_trace() -> Optional[Callable[..., None]]:
    return _backward_trace


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting.

    When a forward op broadcast an input from ``shape`` to a larger shape,
    the gradient flowing back must be summed over the broadcast axes so
    that it again matches ``shape``.
    """
    if grad.shape == shape:
        return grad
    K = _backend.active()
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = K.reduce_sum(grad, tuple(range(extra)), False)
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = K.reduce_sum(grad, axes, True)
    return grad.reshape(shape)


class Function:
    """A differentiable operation and graph node.

    Subclasses implement :meth:`forward` and :meth:`backward`.  Instances
    are single-use: one instance records the inputs and saved arrays of
    one forward call.
    """

    #: Names of instance attributes (beyond ``saved``) that hold large
    #: backward-only arrays, so the tape planner can account for and
    #: release them too (e.g. ``MaxPool2dFn._argmax``).
    extra_saved: Tuple[str, ...] = ()

    #: Name of a per-step constructor argument the graph compiler must
    #: rebind before every replay (e.g. ``SoftmaxCrossEntropy.targets``).
    #: ``None`` means the node has no per-step non-tensor state.
    step_binding: Optional[str] = None

    #: Optional callable attached by a layer after ``apply``; a compiled
    #: replay invokes it with the node after the forward section so
    #: non-graph side effects (batch-norm running statistics) happen on
    #: replay exactly as they do eagerly.
    on_replay: Optional[Callable[["Function"], None]] = None

    def __init__(self) -> None:
        self.inputs: Tuple[Any, ...] = ()
        self.saved: Tuple[np.ndarray, ...] = ()
        self.needs_grad: Tuple[bool, ...] = ()
        self.released: bool = False

    def save_for_backward(self, *arrays: np.ndarray) -> None:
        """Stash arrays needed by :meth:`backward`."""
        self.saved = arrays

    def saved_arrays(self) -> Tuple[np.ndarray, ...]:
        """All backward-only ndarrays this node keeps alive."""
        arrays = [a for a in self.saved if isinstance(a, np.ndarray)]
        for name in self.extra_saved:
            value = getattr(self, name, None)
            if isinstance(value, np.ndarray):
                arrays.append(value)
        return tuple(arrays)

    def release_saved(self) -> None:
        """Drop backward-only state after this node's backward has run.

        Further backward passes through this node raise, pointing the
        caller at ``backward(retain_graph=True)``.
        """
        self.saved = ()
        for name in self.extra_saved:
            if getattr(self, name, None) is not None:
                setattr(self, name, None)
        self.released = True

    def forward(self, *arrays: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> Sequence[Optional[np.ndarray]]:
        raise NotImplementedError

    @classmethod
    def apply(cls, *args: Any, **kwargs: Any):
        """Run the op on tensors/arrays/scalars and build the graph edge."""
        from repro.autograd.tensor import Tensor, is_grad_enabled

        tensors = [arg if isinstance(arg, Tensor) else Tensor(arg) for arg in args]
        fn = cls(**kwargs) if kwargs else cls()
        hook = _op_hook
        if hook is None:
            out_data = fn.forward(*[t.data for t in tensors])
        else:
            start = time.perf_counter()
            out_data = fn.forward(*[t.data for t in tensors])
            elapsed = time.perf_counter() - start
            nbytes = out_data.nbytes + sum(t.data.nbytes for t in tensors)
            hook(cls.__name__, "forward", elapsed, nbytes)
        requires = is_grad_enabled() and any(t.requires_grad for t in tensors)
        out = Tensor(out_data, requires_grad=requires)
        if requires:
            fn.inputs = tuple(tensors)
            fn.needs_grad = tuple(t.requires_grad for t in tensors)
            out._creator = fn
        trace = _trace_hook
        if trace is not None:
            trace(fn, tensors, out, requires)
        return out
