"""Numerical gradient verification.

``grad_check`` compares analytic gradients from the autograd engine
against central finite differences.  It is used throughout the test
suite to certify every op's backward pass.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    index: int,
    eps: float = 1e-5,
) -> np.ndarray:
    """Central finite-difference gradient of scalar ``fn`` w.r.t. one input."""
    base = [np.array(arr, dtype=np.float64) for arr in inputs]
    grad = np.zeros_like(base[index])
    flat = grad.reshape(-1)
    target = base[index].reshape(-1)
    for i in range(target.size):
        original = target[i]
        target[i] = original + eps
        plus = fn(*[Tensor(a) for a in base]).item()
        target[i] = original - eps
        minus = fn(*[Tensor(a) for a in base]).item()
        target[i] = original
        flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def grad_check(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    eps: float = 1e-5,
    atol: float = 1e-6,
    rtol: float = 1e-4,
) -> bool:
    """Verify analytic gradients of a scalar-valued tensor function.

    Args:
        fn: function mapping input Tensors to a scalar Tensor.
        inputs: numpy arrays; the gradient is checked w.r.t. each.
        eps: finite-difference step.
        atol / rtol: tolerances for the comparison.

    Returns:
        True when every analytic gradient matches its numerical estimate.

    Raises:
        AssertionError: with a diagnostic message on mismatch.
    """
    tensors = [Tensor(np.array(arr, dtype=np.float64), requires_grad=True) for arr in inputs]
    out = fn(*tensors)
    out.backward()
    for index, tensor in enumerate(tensors):
        analytic = tensor.grad
        if analytic is None:
            raise AssertionError(f"input {index} received no gradient")
        numeric = numerical_gradient(fn, [t.data for t in tensors], index, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradient mismatch on input {index}: max abs error {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
