"""Numerical gradient verification.

``grad_check`` compares analytic gradients from the autograd engine
against central finite differences.  It is used throughout the test
suite to certify every op's backward pass.

Finite differencing evaluates the function twice per input element, so
for large inputs the probes dominate; ``workers > 1`` fans contiguous
element slices across a :class:`repro.parallel.WorkerPool`.  The
result is bit-identical to the serial computation -- each probe
depends only on its element index, never on the partitioning.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.autograd.tensor import Tensor


def _fd_probe_slice(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    index: int,
    eps: float,
    start: int,
    stop: int,
) -> List[float]:
    """Central differences for elements [start, stop) of input ``index``.

    Module-level so worker processes can import it under ``spawn``.
    """
    base = [np.array(arr, dtype=np.float64) for arr in inputs]
    target = base[index].reshape(-1)
    values: List[float] = []
    for i in range(start, stop):
        original = target[i]
        target[i] = original + eps
        plus = fn(*[Tensor(a) for a in base]).item()
        target[i] = original - eps
        minus = fn(*[Tensor(a) for a in base]).item()
        target[i] = original
        values.append((plus - minus) / (2.0 * eps))
    return values


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    index: int,
    eps: float = 1e-5,
    workers: Optional[int] = None,
) -> np.ndarray:
    """Central finite-difference gradient of scalar ``fn`` w.r.t. one input.

    ``workers > 1`` distributes element probes across processes; the
    gradient is identical to the serial result.
    """
    base = [np.array(arr, dtype=np.float64) for arr in inputs]
    size = base[index].size
    if workers is not None and workers > 1 and size > 1:
        from repro.parallel.pool import Task, WorkerPool

        pool = WorkerPool(max_workers=workers)
        step = math.ceil(size / (pool.max_workers * 2))
        bounds = [(s, min(s + step, size)) for s in range(0, size, step)]
        outcomes = pool.run([
            Task(_fd_probe_slice, (fn, base, index, eps, start, stop))
            for start, stop in bounds
        ])
        flat = np.empty(size, dtype=np.float64)
        for (start, stop), outcome in zip(bounds, outcomes):
            if not outcome.ok:
                raise RuntimeError(
                    f"finite-difference probe [{start}:{stop}] failed "
                    f"({outcome.error_kind}): {outcome.error}"
                )
            flat[start:stop] = outcome.value
        return flat.reshape(base[index].shape)
    return np.asarray(
        _fd_probe_slice(fn, base, index, eps, 0, size), dtype=np.float64
    ).reshape(base[index].shape)


#: Tolerance floors applied when the analytic pass runs in float32.
#: The FD oracle stays float64 (accurate to ~1e-8 relative), so the
#: comparison noise is the float32 rounding of the analytic pass
#: itself, amplified by reduction depth -- hence the looser floors.
FLOAT32_RTOL = 2e-3
FLOAT32_ATOL = 2e-4


def grad_check(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    eps: float = 1e-5,
    atol: float = 1e-6,
    rtol: float = 1e-4,
    workers: Optional[int] = None,
    dtype: Optional[np.dtype] = None,
) -> bool:
    """Verify analytic gradients of a scalar-valued tensor function.

    Args:
        fn: function mapping input Tensors to a scalar Tensor.
        inputs: numpy arrays; the gradient is checked w.r.t. each.
        eps: finite-difference step.
        atol / rtol: tolerances for the comparison.
        workers: fan finite-difference probes across this many worker
            processes (``None``/``1`` = serial; the verdict and all
            compared values are identical either way).
        dtype: dtype for the analytic forward/backward pass (default
            float64).  The finite-difference oracle always evaluates in
            float64 regardless; with ``dtype=np.float32`` the
            tolerances are widened to at least :data:`FLOAT32_RTOL` /
            :data:`FLOAT32_ATOL` to absorb single-precision rounding.

    Returns:
        True when every analytic gradient matches its numerical estimate.

    Raises:
        AssertionError: with a diagnostic message on mismatch.
    """
    check_dtype = np.dtype(dtype) if dtype is not None else np.dtype(np.float64)
    if check_dtype == np.dtype(np.float32):
        atol = max(atol, FLOAT32_ATOL)
        rtol = max(rtol, FLOAT32_RTOL)
    tensors = [Tensor(np.array(arr, dtype=check_dtype), requires_grad=True)
               for arr in inputs]
    out = fn(*tensors)
    out.backward()
    for index, tensor in enumerate(tensors):
        analytic = tensor.grad
        if analytic is None:
            raise AssertionError(f"input {index} received no gradient")
        numeric = numerical_gradient(fn, [t.data for t in tensors], index,
                                     eps=eps, workers=workers)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradient mismatch on input {index}: max abs error {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
