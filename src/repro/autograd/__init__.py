"""Reverse-mode automatic differentiation over numpy arrays.

This subpackage is the training substrate for the whole reproduction: a
small but complete tensor library with a dynamic computation graph,
broadcast-aware arithmetic, convolution/pooling, and a fused numerically
stable softmax cross-entropy.  Gradients of every op are covered by
numerical-differentiation tests (see ``tests/autograd``).

The public surface is:

* :class:`Tensor` -- the differentiable array type.
* :mod:`repro.autograd.functional` -- free functions (``relu``, ``conv2d`` ...).
* :func:`grad_check` -- numerical gradient verification helper.
* :func:`last_tape_stats` -- byte accounting of the most recent
  ``backward()`` (see :mod:`repro.autograd.planner`).
"""

from repro.autograd.tensor import Tensor, no_grad, is_grad_enabled
from repro.autograd import functional
from repro.autograd.grad_check import grad_check
from repro.autograd.planner import TapeStats, last_tape_stats

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "functional", "grad_check",
           "TapeStats", "last_tape_stats"]
