"""Liveness planning for the autograd tape.

``Tensor.backward()`` walks the graph in reverse-topological order, so
for every :class:`~repro.autograd.function.Function` the position of its
backward call is exactly the *last use* of the arrays it saved during
the forward pass.  Without planning, every saved activation stays
referenced by the graph until the whole walk (and usually the whole
graph) dies -- peak memory is the sum of all saved tensors plus the
in-flight gradients.

:class:`TapePlan` computes, in one pass over the walk order:

* the unique saved arrays per function (id-deduplicated -- several
  functions may save the same array) and the walk position after which
  each one is dead, so ``backward()`` can drop the references
  immediately after the consuming backward runs;
* a running planned footprint (live saved bytes + live gradient bytes)
  and, from the same walk, the footprint the un-planned tape would have
  had -- all saved bytes pinned for the whole walk *and* every
  intermediate gradient left pinned on its tensor's ``.grad``, which is
  what the tape did before leaf-only storage -- so the ≥30% peak
  reduction is measurable without re-running anything.

The stats of the most recent backward are kept in a module-level slot
(:func:`last_tape_stats`) and mirrored into telemetry gauges
(``autograd.live_saved_bytes`` et al.) that the monitor's Memory probe
picks up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class TapeStats:
    """Byte accounting for one ``backward()`` walk."""

    functions: int = 0
    #: Sum of unique saved-array bytes over the whole tape.
    total_saved_bytes: int = 0
    #: Peak of (live saved + live gradient) bytes with early release.
    peak_live_bytes: int = 0
    #: Peak the same walk would have had under pre-planner semantics:
    #: every saved array pinned until the walk ends, and every
    #: intermediate gradient pinned on its tensor instead of dying
    #: after the backward that consumes it.
    unplanned_peak_bytes: int = 0
    #: Saved bytes released before the walk finished.
    released_bytes: int = 0
    #: Dead gradient buffers handed back to the backend scratch pool.
    recycled_buffers: int = 0
    recycled_bytes: int = 0

    @property
    def peak_reduction(self) -> float:
        """Fraction of the unplanned peak the planner avoided."""
        if self.unplanned_peak_bytes <= 0:
            return 0.0
        return 1.0 - self.peak_live_bytes / self.unplanned_peak_bytes


_last_stats: Optional[TapeStats] = None


def last_tape_stats() -> Optional[TapeStats]:
    """Stats of the most recent ``Tensor.backward()`` in this process."""
    return _last_stats


class TapePlan:
    """Last-use release schedule for one reverse-topological walk."""

    __slots__ = ("stats", "_release_bytes", "_live_saved", "_live_grad",
                 "_legacy_grad")

    def __init__(self, order: Sequence) -> None:
        seen: Dict[int, int] = {}       # id(array) -> nbytes
        last_use: Dict[int, int] = {}   # id(array) -> last walk position
        release: List[int] = [0] * len(order)
        total = 0
        functions = 0
        for position, tensor in enumerate(order):
            fn = tensor._creator
            if fn is None:
                continue
            functions += 1
            for array in fn.saved_arrays():
                key = id(array)
                if key not in seen:
                    seen[key] = array.nbytes
                    total += array.nbytes
                last_use[key] = position
        for key, position in last_use.items():
            release[position] += seen[key]
        self._release_bytes = release
        self._live_saved = total
        self._live_grad = 0
        self._legacy_grad = 0
        self.stats = TapeStats(functions=functions, total_saved_bytes=total)

    # ------------------------------------------------- gradient tracking
    def grad_stored(self, nbytes: int) -> None:
        """A gradient buffer entered the in-flight accumulator."""
        self._live_grad += nbytes

    def grad_popped(self, nbytes: int) -> None:
        """A gradient left the accumulator to be consumed by a backward."""
        self._live_grad -= nbytes

    def grad_recycled(self, nbytes: int) -> None:
        self.stats.recycled_buffers += 1
        self.stats.recycled_bytes += nbytes

    # ------------------------------------------------------ walk events
    def note_step(self, inflight_bytes: int = 0,
                  pinned: bool = False) -> None:
        """Record the footprint while one backward is about to run.

        ``inflight_bytes`` is the gradient just popped for this step --
        still alive, but no longer counted by :meth:`grad_stored`.
        ``pinned`` marks gradients the pre-planner tape would have kept
        on ``tensor.grad`` after this step (intermediates), which the
        planner instead lets die; they keep counting toward the
        unplanned footprint for the rest of the walk.
        """
        planned = self._live_saved + self._live_grad + inflight_bytes
        unplanned = (self.stats.total_saved_bytes + self._legacy_grad
                     + self._live_grad + inflight_bytes)
        if planned > self.stats.peak_live_bytes:
            self.stats.peak_live_bytes = planned
        if unplanned > self.stats.unplanned_peak_bytes:
            self.stats.unplanned_peak_bytes = unplanned
        if pinned:
            self._legacy_grad += inflight_bytes

    def released(self, position: int) -> None:
        """Saved arrays whose last use was ``position`` are now dead."""
        freed = self._release_bytes[position]
        if freed:
            self._live_saved -= freed
            self.stats.released_bytes += freed

    @property
    def live_saved_bytes(self) -> int:
        return self._live_saved

    # --------------------------------------------------------- finalize
    def finalize(self) -> TapeStats:
        """Publish this walk's stats to the module slot and telemetry."""
        global _last_stats
        _last_stats = self.stats
        from repro.telemetry.metrics import default_registry
        registry = default_registry()
        registry.gauge("autograd.live_saved_bytes").set(
            float(self.stats.peak_live_bytes))
        registry.gauge("autograd.saved_bytes_total").set(
            float(self.stats.total_saved_bytes))
        registry.gauge("autograd.unplanned_peak_bytes").set(
            float(self.stats.unplanned_peak_bytes))
        return self.stats


# ---------------------------------------------------------------------------
# Static allocation planning (graph compiler)
# ---------------------------------------------------------------------------


@dataclass
class _BufferRequest:
    """One planned buffer: a (shape, dtype) slot live over [start, end]."""

    index: int
    shape: Tuple[int, ...]
    dtype: np.dtype
    start: int
    end: int           # inclusive; a very large end means pinned all step
    exclusive: bool    # never share backing storage, even if liveness allows
    physical: int = -1  # assigned physical buffer id


class StaticAllocationPlan:
    """Ahead-of-time buffer plan for a compiled step.

    The tape planner (:class:`TapePlan`) discovers liveness *during* a
    backward walk; a compiled schedule knows the full instruction order
    up front, so the same interval reasoning can run once at compile
    time.  Callers request buffers with an explicit live interval
    (instruction indices); requests whose intervals do not overlap share
    one physical allocation (greedy first-fit over same shape+dtype).

    Requests that the schedule *saves* across the forward/backward
    boundary (fused-op saved operands, gradient accumulators an op's
    backward may return views of) are marked ``exclusive`` -- they get a
    dedicated allocation, because aliasing them is exactly the class of
    bug the eager tape's ``may_share_memory`` guards exist to prevent.

    Physical buffers are materialized lazily on first
    :meth:`materialize` and reused by every subsequent replay -- the
    compiled step never re-allocates its scratch.
    """

    PINNED = 1 << 30

    def __init__(self) -> None:
        self._requests: List[_BufferRequest] = []
        self._buffers: Dict[int, np.ndarray] = {}
        self._planned = False

    def request(self, shape: Tuple[int, ...], dtype,
                start: int, end: Optional[int] = None,
                exclusive: bool = False) -> int:
        """Reserve a buffer live over ``[start, end]``; returns its handle."""
        if self._planned:
            raise RuntimeError("allocation plan is frozen; request before solve()")
        req = _BufferRequest(
            index=len(self._requests),
            shape=tuple(int(s) for s in shape),
            dtype=np.dtype(dtype),
            start=int(start),
            end=self.PINNED if end is None else int(end),
            exclusive=bool(exclusive),
        )
        self._requests.append(req)
        return req.index

    def solve(self) -> None:
        """Assign physical buffers: first-fit interval packing per shape+dtype."""
        if self._planned:
            return
        self._planned = True
        # physical id -> (shape, dtype, [(start, end), ...])
        physical: List[Tuple[Tuple[int, ...], np.dtype, List[Tuple[int, int]]]] = []
        for req in sorted(self._requests, key=lambda r: (r.start, r.index)):
            if not req.exclusive:
                for pid, (shape, dtype, intervals) in enumerate(physical):
                    if shape != req.shape or dtype != req.dtype:
                        continue
                    # inclusive-interval intersection test: sharing is
                    # allowed only when the lifetimes are fully disjoint
                    # (a def at the other's last-use index still clashes
                    # -- both values are live inside that instruction)
                    if any(req.start <= e and s <= req.end for s, e in intervals):
                        continue
                    intervals.append((req.start, req.end))
                    req.physical = pid
                    break
            if req.physical < 0:
                physical.append((req.shape, req.dtype, [(req.start, req.end)]))
                req.physical = len(physical) - 1
        self._physical_count = len(physical)

    def materialize(self, handle: int) -> np.ndarray:
        """The physical ndarray behind a request handle (lazily allocated)."""
        if not self._planned:
            self.solve()
        req = self._requests[handle]
        buf = self._buffers.get(req.physical)
        if buf is None:
            buf = np.empty(req.shape, dtype=req.dtype)
            self._buffers[req.physical] = buf
        return buf

    # ------------------------------------------------------------- stats
    @property
    def requested_bytes(self) -> int:
        return sum(int(np.prod(r.shape)) * r.dtype.itemsize
                   for r in self._requests)

    @property
    def planned_bytes(self) -> int:
        if not self._planned:
            self.solve()
        seen: Dict[int, int] = {}
        for r in self._requests:
            seen[r.physical] = int(np.prod(r.shape)) * r.dtype.itemsize
        return sum(seen.values())

    @property
    def buffers(self) -> int:
        if not self._planned:
            self.solve()
        return self._physical_count

    @property
    def requests(self) -> int:
        return len(self._requests)

    def summary(self) -> Dict[str, int]:
        return {
            "requests": self.requests,
            "buffers": self.buffers,
            "requested_bytes": self.requested_bytes,
            "planned_bytes": self.planned_bytes,
        }
