"""Differentiable free functions over :class:`~repro.autograd.tensor.Tensor`.

Every function here builds a graph node (when gradients are enabled) via
``Function.apply``.  Convolution, pooling and the fused softmax
cross-entropy live in :mod:`repro.autograd.ops_nn` and are re-exported.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro import backend as _backend
from repro.autograd.function import Function, unbroadcast
from repro.autograd.tensor import Tensor
from repro.errors import ShapeError

# ---------------------------------------------------------------------------
# Elementwise binary ops (dispatched through repro.backend kernels)
# ---------------------------------------------------------------------------


class Add(Function):
    def forward(self, a, b):
        self._shapes = (a.shape, b.shape)
        return _backend.active().add(a, b)

    def backward(self, grad):
        sa, sb = self._shapes
        return unbroadcast(grad, sa), unbroadcast(grad, sb)


class Sub(Function):
    def forward(self, a, b):
        self._shapes = (a.shape, b.shape)
        return _backend.active().sub(a, b)

    def backward(self, grad):
        sa, sb = self._shapes
        K = _backend.active()
        return unbroadcast(grad, sa), unbroadcast(K.neg(grad), sb)


class Mul(Function):
    def forward(self, a, b):
        self.save_for_backward(a, b)
        return _backend.active().mul(a, b)

    def backward(self, grad):
        a, b = self.saved
        K = _backend.active()
        return unbroadcast(K.mul(grad, b), a.shape), unbroadcast(K.mul(grad, a), b.shape)


class Div(Function):
    def forward(self, a, b):
        self.save_for_backward(a, b)
        return _backend.active().div(a, b)

    def backward(self, grad):
        a, b = self.saved
        K = _backend.active()
        grad_a = unbroadcast(K.div(grad, b), a.shape)
        grad_b = unbroadcast(-K.div(K.mul(grad, a), K.mul(b, b)), b.shape)
        return grad_a, grad_b


class Maximum(Function):
    def forward(self, a, b):
        self.save_for_backward(a, b)
        return np.maximum(a, b)

    def backward(self, grad):
        a, b = self.saved
        mask = a >= b
        return unbroadcast(grad * mask, a.shape), unbroadcast(grad * ~mask, b.shape)


class MatMul(Function):
    def forward(self, a, b):
        if a.ndim != 2 or b.ndim != 2:
            raise ShapeError(f"matmul expects 2-D operands, got {a.shape} @ {b.shape}")
        self.save_for_backward(a, b)
        return _backend.active().matmul(a, b)

    def backward(self, grad):
        a, b = self.saved
        K = _backend.active()
        return K.matmul(grad, b.T), K.matmul(a.T, grad)


# ---------------------------------------------------------------------------
# Elementwise unary ops
# ---------------------------------------------------------------------------


class Neg(Function):
    def forward(self, a):
        return _backend.active().neg(a)

    def backward(self, grad):
        return (_backend.active().neg(grad),)


class Pow(Function):
    def __init__(self, exponent: float) -> None:
        super().__init__()
        self.exponent = float(exponent)

    def forward(self, a):
        self.save_for_backward(a)
        return a ** self.exponent

    def backward(self, grad):
        (a,) = self.saved
        return (grad * self.exponent * a ** (self.exponent - 1.0),)


class Exp(Function):
    def forward(self, a):
        out = np.exp(a)
        self.save_for_backward(out)
        return out

    def backward(self, grad):
        (out,) = self.saved
        return (grad * out,)


class Log(Function):
    def forward(self, a):
        self.save_for_backward(a)
        return np.log(a)

    def backward(self, grad):
        (a,) = self.saved
        return (grad / a,)


class Sqrt(Function):
    def forward(self, a):
        out = np.sqrt(a)
        self.save_for_backward(out)
        return out

    def backward(self, grad):
        (out,) = self.saved
        return (grad / (2.0 * out),)


class Abs(Function):
    def forward(self, a):
        self.save_for_backward(a)
        return np.abs(a)

    def backward(self, grad):
        (a,) = self.saved
        return (grad * np.sign(a),)


class Tanh(Function):
    def forward(self, a):
        out = np.tanh(a)
        self.save_for_backward(out)
        return out

    def backward(self, grad):
        (out,) = self.saved
        return (grad * (1.0 - out * out),)


class Sigmoid(Function):
    def forward(self, a):
        out = 1.0 / (1.0 + np.exp(-a))
        self.save_for_backward(out)
        return out

    def backward(self, grad):
        (out,) = self.saved
        return (grad * out * (1.0 - out),)


class ReLU(Function):
    def forward(self, a):
        out, mask = _backend.active().relu(a)
        self.save_for_backward(mask)
        return out

    def backward(self, grad):
        (mask,) = self.saved
        return (_backend.active().mul(grad, mask),)


class LeakyReLU(Function):
    def __init__(self, slope: float = 0.01) -> None:
        super().__init__()
        self.slope = float(slope)

    def forward(self, a):
        mask = a > 0
        self.save_for_backward(mask)
        return np.where(mask, a, self.slope * a)

    def backward(self, grad):
        (mask,) = self.saved
        return (np.where(mask, grad, self.slope * grad),)


class Softplus(Function):
    """log(1 + exp(x)), computed stably."""

    def forward(self, a):
        out = np.logaddexp(0.0, a)
        self.save_for_backward(a)
        return out

    def backward(self, grad):
        (a,) = self.saved
        return (grad / (1.0 + np.exp(-a)),)


class Gelu(Function):
    """Gaussian error linear unit (exact erf form)."""

    def forward(self, a):
        from scipy.special import erf
        cdf = 0.5 * (1.0 + erf(a / np.sqrt(2.0)))
        self.save_for_backward(a, cdf)
        return a * cdf

    def backward(self, grad):
        a, cdf = self.saved
        pdf = np.exp(-0.5 * a * a) / np.sqrt(2.0 * np.pi)
        return (grad * (cdf + a * pdf),)


class Silu(Function):
    """x * sigmoid(x) (a.k.a. swish)."""

    def forward(self, a):
        sig = 1.0 / (1.0 + np.exp(-a))
        self.save_for_backward(a, sig)
        return a * sig

    def backward(self, grad):
        a, sig = self.saved
        return (grad * (sig + a * sig * (1.0 - sig)),)


class Clip(Function):
    def __init__(self, low: float, high: float) -> None:
        super().__init__()
        self.low, self.high = float(low), float(high)

    def forward(self, a):
        self.save_for_backward((a >= self.low) & (a <= self.high))
        return np.clip(a, self.low, self.high)

    def backward(self, grad):
        (mask,) = self.saved
        return (grad * mask,)


# ---------------------------------------------------------------------------
# Reductions
# ---------------------------------------------------------------------------


def _normalize_axis(axis, ndim) -> Optional[Tuple[int, ...]]:
    if axis is None:
        return None
    if isinstance(axis, int):
        axis = (axis,)
    return tuple(ax % ndim for ax in axis)


class Sum(Function):
    def __init__(self, axis=None, keepdims=False) -> None:
        super().__init__()
        self.axis, self.keepdims = axis, keepdims

    def forward(self, a):
        self._shape = a.shape
        return _backend.active().reduce_sum(a, self.axis, self.keepdims)

    def backward(self, grad):
        grad = np.asarray(grad)
        axis = _normalize_axis(self.axis, len(self._shape))
        if axis is not None and not self.keepdims:
            for ax in sorted(axis):
                grad = np.expand_dims(grad, ax)
        return (_backend.active().broadcast_copy(grad, self._shape),)


class Mean(Function):
    def __init__(self, axis=None, keepdims=False) -> None:
        super().__init__()
        self.axis, self.keepdims = axis, keepdims

    def forward(self, a):
        self._shape = a.shape
        out = _backend.active().reduce_mean(a, self.axis, self.keepdims)
        self._count = a.size / out.size if out.size else 1.0
        return out

    def backward(self, grad):
        grad = np.asarray(grad) / self._count
        axis = _normalize_axis(self.axis, len(self._shape))
        if axis is not None and not self.keepdims:
            for ax in sorted(axis):
                grad = np.expand_dims(grad, ax)
        return (_backend.active().broadcast_copy(grad, self._shape),)


class MaxReduce(Function):
    def __init__(self, axis=None, keepdims=False, minimum=False) -> None:
        super().__init__()
        self.axis, self.keepdims, self.minimum = axis, keepdims, minimum

    def forward(self, a):
        reducer = np.min if self.minimum else np.max
        out_keep = reducer(a, axis=self.axis, keepdims=True)
        self.save_for_backward(a, out_keep)
        if self.keepdims:
            return out_keep
        if self.axis is None:
            return out_keep.reshape(())
        return np.squeeze(out_keep, axis=self.axis)

    def backward(self, grad):
        a, out_keep = self.saved
        grad = np.asarray(grad)
        mask = (a == out_keep)
        # Split the gradient evenly among tied extrema (subgradient choice).
        counts = mask.sum(axis=self.axis, keepdims=True)
        if not self.keepdims:
            if self.axis is None:
                grad = grad.reshape((1,) * a.ndim)
            else:
                axis = _normalize_axis(self.axis, a.ndim)
                for ax in sorted(axis):
                    grad = np.expand_dims(grad, ax)
        return (mask * grad / counts,)


# ---------------------------------------------------------------------------
# Shape ops
# ---------------------------------------------------------------------------


class Reshape(Function):
    def __init__(self, shape: Tuple[int, ...]) -> None:
        super().__init__()
        self.shape = shape

    def forward(self, a):
        self._orig = a.shape
        return a.reshape(self.shape)

    def backward(self, grad):
        return (grad.reshape(self._orig),)


class Transpose(Function):
    def __init__(self, axes: Optional[Tuple[int, ...]]) -> None:
        super().__init__()
        self.axes = axes

    def forward(self, a):
        self._ndim = a.ndim
        return np.transpose(a, self.axes)

    def backward(self, grad):
        if self.axes is None:
            return (np.transpose(grad),)
        inverse = np.argsort(self.axes)
        return (np.transpose(grad, inverse),)


class GetItem(Function):
    def __init__(self, index) -> None:
        super().__init__()
        self.index = index

    def forward(self, a):
        self._shape = a.shape
        return a[self.index]

    def backward(self, grad):
        out = np.zeros(self._shape, dtype=grad.dtype)
        np.add.at(out, self.index, grad)
        return (out,)


class Concat(Function):
    def __init__(self, axis: int = 0) -> None:
        super().__init__()
        self.axis = axis

    def forward(self, *arrays):
        self._sizes = [a.shape[self.axis] for a in arrays]
        return np.concatenate(arrays, axis=self.axis)

    def backward(self, grad):
        splits = np.cumsum(self._sizes)[:-1]
        return tuple(np.split(grad, splits, axis=self.axis))


class Where(Function):
    """Elementwise select: condition is a constant boolean mask."""

    def __init__(self, condition: np.ndarray) -> None:
        super().__init__()
        self.condition = np.asarray(condition, dtype=bool)

    def forward(self, a, b):
        self._shapes = (a.shape, b.shape)
        return np.where(self.condition, a, b)

    def backward(self, grad):
        sa, sb = self._shapes
        grad_a = unbroadcast(grad * self.condition, sa)
        grad_b = unbroadcast(grad * ~self.condition, sb)
        return grad_a, grad_b


class Stack(Function):
    """Stack tensors along a new leading-or-given axis."""

    def __init__(self, axis: int = 0) -> None:
        super().__init__()
        self.axis = axis

    def forward(self, *arrays):
        return np.stack(arrays, axis=self.axis)

    def backward(self, grad):
        pieces = np.split(grad, grad.shape[self.axis], axis=self.axis)
        return tuple(np.squeeze(piece, axis=self.axis) for piece in pieces)


class Pad2D(Function):
    """Zero-pad the two trailing spatial axes of an NCHW tensor."""

    def __init__(self, padding: int) -> None:
        super().__init__()
        self.padding = int(padding)

    def forward(self, a):
        p = self.padding
        return np.pad(a, ((0, 0), (0, 0), (p, p), (p, p)))

    def backward(self, grad):
        p = self.padding
        return (grad[:, :, p:-p or None, p:-p or None],)


# ---------------------------------------------------------------------------
# Public functional API
# ---------------------------------------------------------------------------


def add(a, b) -> Tensor: return Add.apply(a, b)
def sub(a, b) -> Tensor: return Sub.apply(a, b)
def mul(a, b) -> Tensor: return Mul.apply(a, b)
def div(a, b) -> Tensor: return Div.apply(a, b)
def maximum(a, b) -> Tensor: return Maximum.apply(a, b)
def matmul(a, b) -> Tensor: return MatMul.apply(a, b)
def neg(a) -> Tensor: return Neg.apply(a)
def pow(a, exponent: float) -> Tensor: return Pow.apply(a, exponent=exponent)  # noqa: A001
def exp(a) -> Tensor: return Exp.apply(a)
def log(a) -> Tensor: return Log.apply(a)
def sqrt(a) -> Tensor: return Sqrt.apply(a)
def abs(a) -> Tensor: return Abs.apply(a)  # noqa: A001
def tanh(a) -> Tensor: return Tanh.apply(a)
def sigmoid(a) -> Tensor: return Sigmoid.apply(a)
def relu(a) -> Tensor: return ReLU.apply(a)
def leaky_relu(a, slope: float = 0.01) -> Tensor: return LeakyReLU.apply(a, slope=slope)
def softplus(a) -> Tensor: return Softplus.apply(a)
def gelu(a) -> Tensor: return Gelu.apply(a)
def silu(a) -> Tensor: return Silu.apply(a)
def clip(a, low: float, high: float) -> Tensor: return Clip.apply(a, low=low, high=high)


def sum(a, axis=None, keepdims=False) -> Tensor:  # noqa: A001
    return Sum.apply(a, axis=axis, keepdims=keepdims)


def mean(a, axis=None, keepdims=False) -> Tensor:
    return Mean.apply(a, axis=axis, keepdims=keepdims)


def max(a, axis=None, keepdims=False) -> Tensor:  # noqa: A001
    return MaxReduce.apply(a, axis=axis, keepdims=keepdims, minimum=False)


def min(a, axis=None, keepdims=False) -> Tensor:  # noqa: A001
    return MaxReduce.apply(a, axis=axis, keepdims=keepdims, minimum=True)


def var(a, axis=None, keepdims=False) -> Tensor:
    """Population variance composed from differentiable primitives."""
    centered = sub(a, mean(a, axis=axis, keepdims=True))
    return mean(mul(centered, centered), axis=axis, keepdims=keepdims)


def reshape(a, *shape) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Reshape.apply(a, shape=shape)


def transpose(a, *axes) -> Tensor:
    if len(axes) == 0:
        axes_arg = None
    elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
        axes_arg = tuple(axes[0])
    else:
        axes_arg = axes
    return Transpose.apply(a, axes=axes_arg)


def flatten(a, start_axis: int = 1) -> Tensor:
    shape = a.shape[:start_axis] + (-1,)
    return reshape(a, shape)


def getitem(a, index) -> Tensor:
    return GetItem.apply(a, index=index)


def concat(tensors: Sequence, axis: int = 0) -> Tensor:
    return Concat.apply(*tensors, axis=axis)


def where(condition, a, b) -> Tensor:
    """Select ``a`` where ``condition`` is true, else ``b`` (condition is
    treated as a constant -- no gradient flows through it)."""
    if isinstance(condition, Tensor):
        condition = condition.data
    return Where.apply(a, b, condition=condition)


def stack(tensors: Sequence, axis: int = 0) -> Tensor:
    return Stack.apply(*tensors, axis=axis)


def pad2d(a, padding: int) -> Tensor:
    if padding == 0:
        return a if isinstance(a, Tensor) else Tensor(a)
    return Pad2D.apply(a, padding=padding)


# Neural-network ops (conv / pool / losses) are defined in ops_nn and
# re-exported here so that `functional` is the single import site.
from repro.autograd.ops_nn import (  # noqa: E402
    avg_pool2d,
    conv2d,
    global_avg_pool2d,
    log_softmax,
    max_pool2d,
    softmax,
    softmax_cross_entropy,
)

__all__ = [
    "add", "sub", "mul", "div", "maximum", "matmul", "neg", "pow", "exp",
    "log", "sqrt", "abs", "tanh", "sigmoid", "relu", "leaky_relu", "clip",
    "softplus", "gelu", "silu",
    "sum", "mean", "max", "min", "var", "reshape", "transpose", "flatten",
    "getitem", "concat", "where", "stack", "pad2d",
    "conv2d", "max_pool2d", "avg_pool2d",
    "global_avg_pool2d", "softmax", "log_softmax", "softmax_cross_entropy",
]
