"""The differentiable Tensor type.

A :class:`Tensor` wraps a numpy array together with an optional gradient
and a reference to the :class:`~repro.autograd.function.Function` that
created it.  Calling :meth:`Tensor.backward` walks the graph in reverse
topological order and accumulates gradients into every tensor that has
``requires_grad=True``.
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import Iterator, List, Optional, Set, Tuple, Union

import numpy as np

from repro import precision as _precision
from repro.autograd import function as _function
from repro.errors import GradientError

Scalar = Union[int, float]
ArrayLike = Union[np.ndarray, Scalar, list, tuple]

_state = threading.local()


def is_grad_enabled() -> bool:
    """Return True when graph construction is currently enabled."""
    return getattr(_state, "grad_enabled", True)


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Context manager that disables graph construction (inference mode)."""
    previous = is_grad_enabled()
    _state.grad_enabled = False
    try:
        yield
    finally:
        _state.grad_enabled = previous


class Tensor:
    """A numpy-backed array with reverse-mode automatic differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_creator")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        dtype: Optional[np.dtype] = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        # numpy scalars (np.float64(x), reductions over all axes) carry
        # an explicit dtype just like ndarrays do
        was_typed = isinstance(data, (np.ndarray, np.generic))
        arr = np.asarray(data, dtype=dtype)
        if dtype is None:
            # Dtype policy (repro.precision): int/bool data promotes to
            # the active compute dtype, and float data that *numpy*
            # typed for us (python scalars / lists default to float64)
            # is materialized at the policy dtype too.  Explicit float
            # ndarrays keep their dtype so float64 pipelines stay
            # float64 end to end.
            if arr.dtype.kind in "iub":
                arr = arr.astype(_precision.default_dtype())
            elif arr.dtype.kind == "f" and not was_typed:
                want = _precision.default_dtype()
                if arr.dtype != want:
                    arr = arr.astype(want)
        self.data: np.ndarray = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad)
        self._creator = None

    # ---------------------------------------------------------------- basics
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, threshold=16)}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------- backward
    def backward(self, grad: Optional[np.ndarray] = None,
                 retain_graph: bool = False) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Gradients are stored on the leaves (and on this root); saved
        activations are released as soon as the backward that consumes
        them has run, per the :mod:`repro.autograd.planner` liveness
        plan.  Pass ``retain_graph=True`` to keep the saved state for a
        second backward through the same graph.
        """
        if not self.requires_grad:
            raise GradientError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise GradientError(
                    "backward() without an explicit gradient requires a scalar "
                    f"tensor, got shape {self.data.shape}"
                )
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise GradientError(
                    f"gradient shape {grad.shape} does not match tensor shape {self.data.shape}"
                )

        bw_trace = _function._backward_trace
        if bw_trace is not None:
            bw_trace(self, grad, retain_graph)

        from repro import backend as _backend
        from repro.autograd.planner import TapePlan
        K = _backend.active()
        # Optional backend hook: hand dead gradient buffers back to the
        # kernel scratch pool (the fast backend exposes its BufferPool).
        recycle = getattr(K, "recycle_buffer", None)
        order = self._topological_order()
        plan = TapePlan(order)
        grads = {id(self): grad}
        plan.grad_stored(grad.nbytes)
        # One hook read per backward pass; the profiled branch times each
        # op's backward and reports the gradient bytes it produced.
        hook = _function._op_hook
        for position, tensor in enumerate(order):
            fn = tensor._creator
            tensor_grad = grads.pop(id(tensor), None)
            if tensor_grad is not None:
                plan.grad_popped(tensor_grad.nbytes)
            # Gradients persist only on leaves (and on the root the user
            # called backward on); intermediate gradients stay on the
            # tape and their buffers can be recycled once consumed.
            store = tensor.requires_grad and (fn is None or tensor is self)
            if store and tensor_grad is not None:
                tensor.grad = (tensor_grad if tensor.grad is None
                               else K.add(tensor.grad, tensor_grad))
            if fn is None or tensor_grad is None:
                continue
            if fn.released:
                raise GradientError(
                    f"{type(fn).__name__} saved state was already released by a "
                    "previous backward; call backward(retain_graph=True) to "
                    "backpropagate through the same graph more than once"
                )
            plan.note_step(tensor_grad.nbytes,
                           pinned=tensor.requires_grad and not store)
            if hook is None:
                input_grads = fn.backward(tensor_grad)
            else:
                start = time.perf_counter()
                input_grads = fn.backward(tensor_grad)
                elapsed = time.perf_counter() - start
                nbytes = tensor_grad.nbytes + sum(
                    g.nbytes for g in input_grads if g is not None
                )
                hook(type(fn).__name__, "backward", elapsed, nbytes)
            if len(input_grads) != len(fn.inputs):
                raise GradientError(
                    f"{type(fn).__name__}.backward returned {len(input_grads)} "
                    f"gradients for {len(fn.inputs)} inputs"
                )
            for parent, parent_grad, needs in zip(fn.inputs, input_grads, fn.needs_grad):
                if parent_grad is None:
                    continue
                if not (needs or parent._creator is not None):
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = K.add(grads[key], parent_grad)
                else:
                    grads[key] = parent_grad
                    plan.grad_stored(parent_grad.nbytes)
            if not retain_graph:
                fn.release_saved()
                plan.released(position)
            # Recycle the consumed gradient buffer unless anything still
            # aliases it: a returned input gradient (views from Reshape/
            # Transpose, or Add handing the same array to both parents)
            # or a gradient still pending in the accumulator.
            if (recycle is not None and not store
                    and tensor_grad.base is None
                    and tensor_grad.flags.owndata
                    and tensor_grad.flags.c_contiguous
                    and not any(g is not None
                                and np.may_share_memory(g, tensor_grad)
                                for g in input_grads)
                    and not any(np.may_share_memory(pending, tensor_grad)
                                for pending in grads.values())):
                recycle(tensor_grad)
                plan.grad_recycled(tensor_grad.nbytes)
        plan.finalize()

    def _topological_order(self) -> List["Tensor"]:
        """Tensors reachable from self, ordered so each node precedes its inputs."""
        order: List[Tensor] = []
        seen: Set[int] = set()
        # Iterative DFS post-order (graphs can be deep; avoid recursion limits).
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            if node._creator is not None:
                for parent in node._creator.inputs:
                    if id(parent) not in seen:
                        stack.append((parent, False))
        order.reverse()
        return order

    # ------------------------------------------------------------ operators
    def __add__(self, other): return _ops().add(self, other)
    def __radd__(self, other): return _ops().add(other, self)
    def __sub__(self, other): return _ops().sub(self, other)
    def __rsub__(self, other): return _ops().sub(other, self)
    def __mul__(self, other): return _ops().mul(self, other)
    def __rmul__(self, other): return _ops().mul(other, self)
    def __truediv__(self, other): return _ops().div(self, other)
    def __rtruediv__(self, other): return _ops().div(other, self)
    def __neg__(self): return _ops().neg(self)
    def __pow__(self, exponent): return _ops().pow(self, exponent)
    def __matmul__(self, other): return _ops().matmul(self, other)
    def __getitem__(self, index): return _ops().getitem(self, index)

    # ------------------------------------------------------- method aliases
    def sum(self, axis=None, keepdims=False): return _ops().sum(self, axis=axis, keepdims=keepdims)
    def mean(self, axis=None, keepdims=False): return _ops().mean(self, axis=axis, keepdims=keepdims)
    def max(self, axis=None, keepdims=False): return _ops().max(self, axis=axis, keepdims=keepdims)
    def min(self, axis=None, keepdims=False): return _ops().min(self, axis=axis, keepdims=keepdims)
    def reshape(self, *shape): return _ops().reshape(self, *shape)
    def transpose(self, *axes): return _ops().transpose(self, *axes)
    def flatten(self, start_axis: int = 1): return _ops().flatten(self, start_axis)
    def exp(self): return _ops().exp(self)
    def log(self): return _ops().log(self)
    def sqrt(self): return _ops().sqrt(self)
    def abs(self): return _ops().abs(self)
    def tanh(self): return _ops().tanh(self)
    def sigmoid(self): return _ops().sigmoid(self)
    def relu(self): return _ops().relu(self)
    def clip(self, low, high): return _ops().clip(self, low, high)
    def var(self, axis=None, keepdims=False): return _ops().var(self, axis=axis, keepdims=keepdims)


def _ops():
    """Late import of the functional namespace to avoid an import cycle."""
    from repro.autograd import functional
    return functional
