"""Process-pool experiment execution with deterministic seeding.

Three pieces:

* :mod:`repro.parallel.pool` -- :class:`WorkerPool`: chunked
  multi-process task scheduling with per-task timeouts, bounded retry
  of crashed workers, structured :class:`TaskOutcome` failure records
  (never pool-wide aborts), per-worker telemetry snapshot ship-back,
  and a transparent in-process serial fallback.
* :mod:`repro.parallel.shards` -- :class:`ShardPool`: *persistent*
  worker processes holding expensive state (loaded model artifacts)
  and answering a request stream, with shard respawn + bounded retry
  of in-flight requests on crash.  The serving layer's execution
  substrate.
* :mod:`repro.parallel.seeding` -- ``SeedSequence``-based per-task seed
  derivation so parallel and serial runs produce identical records.
* :mod:`repro.parallel.arena` -- :class:`SharedTensorArena`: named
  tensors inside one ``multiprocessing.shared_memory`` segment with a
  picklable registry/attach protocol and crash-safe unlink sweeps.
* :mod:`repro.parallel.ddp` -- :class:`DDPContext`: persistent
  fork-based data-parallel training ranks sharing parameters and
  gradient slabs through an arena, with a deterministic tree-structured
  all-reduce (``Trainer(ddp_workers=N)``, the CLI's ``--ddp-workers``).

Consumers: ``pipeline.sweep`` (``Sweep.run(parallel=N)``),
``pipeline.baselines`` (:func:`run_baseline_suite`),
``autograd.grad_check`` (parallel finite-difference probes),
``repro.serve`` (:class:`~repro.serve.server.ModelServer` dispatch),
and the CLI's global ``--workers`` flag.
"""

from repro.parallel.arena import ArenaSpec, SharedTensorArena, cleanup_stale_segments
from repro.parallel.ddp import (
    DDPContext,
    ddp_config,
    default_ddp_workers,
    reduce_plan,
    set_default_ddp_workers,
)
from repro.parallel.pool import Task, TaskOutcome, WorkerPool, cpu_workers
from repro.parallel.seeding import (
    rng_for_index,
    sequence_for_index,
    spawn_sequences,
)
from repro.parallel.shards import ShardPool, ShardResult

__all__ = [
    "Task", "TaskOutcome", "WorkerPool", "cpu_workers",
    "ShardPool", "ShardResult",
    "ArenaSpec", "SharedTensorArena", "cleanup_stale_segments",
    "DDPContext", "ddp_config", "default_ddp_workers",
    "set_default_ddp_workers", "reduce_plan",
    "rng_for_index", "sequence_for_index", "spawn_sequences",
]
