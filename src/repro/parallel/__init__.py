"""Process-pool experiment execution with deterministic seeding.

Two pieces:

* :mod:`repro.parallel.pool` -- :class:`WorkerPool`: chunked
  multi-process task scheduling with per-task timeouts, bounded retry
  of crashed workers, structured :class:`TaskOutcome` failure records
  (never pool-wide aborts), per-worker telemetry snapshot ship-back,
  and a transparent in-process serial fallback.
* :mod:`repro.parallel.seeding` -- ``SeedSequence``-based per-task seed
  derivation so parallel and serial runs produce identical records.

Consumers: ``pipeline.sweep`` (``Sweep.run(parallel=N)``),
``pipeline.baselines`` (:func:`run_baseline_suite`),
``autograd.grad_check`` (parallel finite-difference probes), and the
CLI's global ``--workers`` flag.
"""

from repro.parallel.pool import Task, TaskOutcome, WorkerPool, cpu_workers
from repro.parallel.seeding import (
    rng_for_index,
    sequence_for_index,
    spawn_sequences,
)

__all__ = [
    "Task", "TaskOutcome", "WorkerPool", "cpu_workers",
    "rng_for_index", "sequence_for_index", "spawn_sequences",
]
