"""Process-pool experiment execution with deterministic seeding.

Three pieces:

* :mod:`repro.parallel.pool` -- :class:`WorkerPool`: chunked
  multi-process task scheduling with per-task timeouts, bounded retry
  of crashed workers, structured :class:`TaskOutcome` failure records
  (never pool-wide aborts), per-worker telemetry snapshot ship-back,
  and a transparent in-process serial fallback.
* :mod:`repro.parallel.shards` -- :class:`ShardPool`: *persistent*
  worker processes holding expensive state (loaded model artifacts)
  and answering a request stream, with shard respawn + bounded retry
  of in-flight requests on crash.  The serving layer's execution
  substrate.
* :mod:`repro.parallel.seeding` -- ``SeedSequence``-based per-task seed
  derivation so parallel and serial runs produce identical records.

Consumers: ``pipeline.sweep`` (``Sweep.run(parallel=N)``),
``pipeline.baselines`` (:func:`run_baseline_suite`),
``autograd.grad_check`` (parallel finite-difference probes),
``repro.serve`` (:class:`~repro.serve.server.ModelServer` dispatch),
and the CLI's global ``--workers`` flag.
"""

from repro.parallel.pool import Task, TaskOutcome, WorkerPool, cpu_workers
from repro.parallel.seeding import (
    rng_for_index,
    sequence_for_index,
    spawn_sequences,
)
from repro.parallel.shards import ShardPool, ShardResult

__all__ = [
    "Task", "TaskOutcome", "WorkerPool", "cpu_workers",
    "ShardPool", "ShardResult",
    "rng_for_index", "sequence_for_index", "spawn_sequences",
]
