"""Zero-copy shared-memory tensor storage for data-parallel training.

A :class:`SharedTensorArena` is **one** ``multiprocessing.shared_memory``
segment holding many named tensors at fixed offsets.  The owner process
lays out the registry (name -> offset/shape/dtype), creates the segment,
and hands out :func:`numpy.ndarray` views backed directly by the mapped
buffer -- writes made by any process mapping the segment are visible to
every other one without serialization.  That is the whole point: the
DDP hot path (:mod:`repro.parallel.ddp`) moves gradients and parameters
through these views and never pickles a weight or a batch.

Two ways to reach an arena from another process:

* **fork** (the DDP default): children forked after the arena exists
  inherit the mapping as-is -- the same :class:`SharedTensorArena`
  object, the same views, nothing to attach.
* **attach protocol**: :meth:`SharedTensorArena.spec` returns a small
  picklable :class:`ArenaSpec` (segment name + registry); any process
  can call :meth:`SharedTensorArena.attach` on it to map the segment by
  name.  Attached arenas never unlink the segment -- the owner does.

Cleanup hygiene: segments live in ``/dev/shm`` and outlive a crashed
process unless someone unlinks them.  Owner arenas register themselves
for an ``atexit`` sweep, unlink *before* closing (so the name disappears
even while views pin the mapping), and :func:`cleanup_stale_segments`
removes segments whose owner pid is dead -- the pool-teardown sweep for
crash/KeyboardInterrupt paths.  The test suite enforces all of this with
a fixture failing any test that leaks a ``/dev/shm/repro_*`` segment.
"""

from __future__ import annotations

import atexit
import os
import secrets
import threading
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.errors import DDPError

#: Prefix every arena segment name carries; the stale sweep and the
#: test-suite leak fixture both key off it.
SEGMENT_PREFIX = "repro_arena"

#: Tensor offsets are rounded up to this many bytes so every view is
#: cache-line aligned regardless of its neighbours' sizes.
_ALIGN = 64

_SHM_DIR = "/dev/shm"


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class ArenaSpec:
    """Picklable description of an arena: ship this, not the tensors.

    ``entries`` maps tensor name -> ``(offset, shape, dtype string)``.
    """

    segment: str
    size: int
    entries: Dict[str, Tuple[int, Tuple[int, ...], str]] = field(
        default_factory=dict
    )


class SharedTensorArena:
    """Named tensors at fixed offsets inside one shared-memory segment."""

    def __init__(self, shm: shared_memory.SharedMemory, spec: ArenaSpec,
                 owner: bool) -> None:
        self._shm = shm
        self._spec = spec
        self._owner = owner
        self._views: Dict[str, np.ndarray] = {}
        self._closed = False
        if owner:
            _register_owned(self)

    # ------------------------------------------------------------ creation
    @classmethod
    def create(
        cls,
        tensors: Mapping[str, Tuple[Tuple[int, ...], object]],
        zero: bool = True,
    ) -> "SharedTensorArena":
        """Lay out and create an arena for ``{name: (shape, dtype)}``.

        The segment name encodes the owner pid so a later sweep can tell
        whether the owner is still alive.
        """
        if not tensors:
            raise DDPError("cannot create an empty SharedTensorArena")
        entries: Dict[str, Tuple[int, Tuple[int, ...], str]] = {}
        offset = 0
        for name, (shape, dtype) in tensors.items():
            shape = tuple(int(dim) for dim in shape)
            dt = np.dtype(dtype)
            offset = _align(offset)
            entries[name] = (offset, shape, dt.str)
            offset += int(np.prod(shape, dtype=np.int64)) * dt.itemsize
        size = max(offset, 1)
        segment = f"{SEGMENT_PREFIX}_{os.getpid()}_{secrets.token_hex(4)}"
        try:
            shm = shared_memory.SharedMemory(
                name=segment, create=True, size=size
            )
        except OSError as exc:  # pragma: no cover - exotic /dev/shm states
            raise DDPError(f"could not create shared memory segment: {exc}")
        spec = ArenaSpec(segment=segment, size=size, entries=dict(entries))
        arena = cls(shm, spec, owner=True)
        if zero:
            shm.buf[:size] = b"\x00" * size
        return arena

    @classmethod
    def attach(cls, spec: ArenaSpec) -> "SharedTensorArena":
        """Map an existing arena by name (the non-fork consumer path)."""
        # The attaching process's resource tracker would otherwise think
        # it owns the segment and unlink it at interpreter exit, yanking
        # the memory out from under the real owner.  (Python 3.13 grows
        # a track=False argument; suppressing registration is the 3.11
        # spelling -- unregistering after the fact double-counts when the
        # owner shares the same tracker process and later unlinks.)
        from multiprocessing import resource_tracker
        original_register = resource_tracker.register

        def _skip_shm(name: str, rtype: str) -> None:
            if rtype != "shared_memory":
                original_register(name, rtype)

        resource_tracker.register = _skip_shm
        try:
            shm = shared_memory.SharedMemory(name=spec.segment)
        except FileNotFoundError:
            raise DDPError(
                f"arena segment {spec.segment!r} does not exist "
                "(owner exited or already unlinked it)"
            )
        finally:
            resource_tracker.register = original_register
        return cls(shm, spec, owner=False)

    # ------------------------------------------------------------- access
    @property
    def segment_name(self) -> str:
        return self._spec.segment

    @property
    def nbytes(self) -> int:
        return self._spec.size

    @property
    def owner(self) -> bool:
        return self._owner

    def spec(self) -> ArenaSpec:
        """The picklable attach handle for this arena."""
        return self._spec

    def keys(self) -> List[str]:
        return list(self._spec.entries)

    def __contains__(self, name: str) -> bool:
        return name in self._spec.entries

    def view(self, name: str) -> np.ndarray:
        """A writable ndarray view of one named tensor (no copy)."""
        if self._closed:
            raise DDPError(f"arena {self._spec.segment} is closed")
        cached = self._views.get(name)
        if cached is not None:
            return cached
        try:
            offset, shape, dtype = self._spec.entries[name]
        except KeyError:
            raise DDPError(
                f"arena has no tensor {name!r} "
                f"(known: {sorted(self._spec.entries)[:8]}...)"
            )
        view = np.ndarray(shape, dtype=np.dtype(dtype),
                          buffer=self._shm.buf, offset=offset)
        self._views[name] = view
        return view

    # ------------------------------------------------------------ teardown
    def unlink(self) -> None:
        """Remove the segment name; the mapping stays valid until closed."""
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    def close(self) -> None:
        """Release this process's handle (owners unlink first).

        Unlinking before closing means the ``/dev/shm`` entry is gone
        immediately, so a segment can never be leaked by a close that
        fails halfway.  Views handed out by :meth:`view` must not be
        touched after ``close`` -- numpy does not pin the underlying
        mapping, so a stale view dereferences unmapped memory.  The DDP
        runtime copies parameters out of the arena before closing it for
        exactly this reason.  A ``BufferError`` from the close itself is
        swallowed: a briefly pinned mapping beats a leaked segment.
        """
        if self._closed:
            return
        self._closed = True
        if self._owner:
            self.unlink()
            _unregister_owned(self)
        self._views.clear()
        try:
            self._shm.close()
        except BufferError:
            pass

    def __enter__(self) -> "SharedTensorArena":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Owner registry + atexit / crash sweeps
# ---------------------------------------------------------------------------

_owned_lock = threading.Lock()
_owned: Dict[str, SharedTensorArena] = {}
_atexit_registered = False


def _register_owned(arena: SharedTensorArena) -> None:
    global _atexit_registered
    with _owned_lock:
        _owned[arena.segment_name] = arena
        if not _atexit_registered:
            atexit.register(_close_owned_arenas)
            _atexit_registered = True


def _unregister_owned(arena: SharedTensorArena) -> None:
    with _owned_lock:
        _owned.pop(arena.segment_name, None)


def _close_owned_arenas() -> None:
    """atexit hook: unlink every owner arena still open in this process."""
    with _owned_lock:
        arenas = list(_owned.values())
    for arena in arenas:
        try:
            arena.close()
        except Exception:  # pragma: no cover - nothing to do at exit
            pass


def live_segments() -> List[str]:
    """Names of ``repro_*`` segments currently present in ``/dev/shm``."""
    try:
        names = os.listdir(_SHM_DIR)
    except OSError:
        return []
    return sorted(n for n in names if n.startswith("repro_"))


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - pid exists, not ours
        return True
    return True


def cleanup_stale_segments() -> List[str]:
    """Unlink arena segments whose owner process is dead.

    The segment name encodes the creating pid
    (``repro_arena_<pid>_<token>``), so a sweep after a crash or a
    KeyboardInterrupt can reclaim segments no live process will ever
    unlink.  Segments owned by live pids (including this one) are left
    alone.  Returns the names removed.
    """
    removed: List[str] = []
    for name in live_segments():
        if not name.startswith(SEGMENT_PREFIX + "_"):
            continue
        parts = name[len(SEGMENT_PREFIX) + 1:].split("_", 1)
        if not parts or not parts[0].isdigit():
            continue
        pid = int(parts[0])
        if pid == os.getpid() or _pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join(_SHM_DIR, name))
            removed.append(name)
        except OSError:  # pragma: no cover - raced with another sweep
            pass
    return removed
