"""Deterministic per-task seed derivation for parallel experiments.

Parallel and serial runs must produce identical records, so per-point
randomness cannot depend on scheduling.  The scheme here derives one
:class:`numpy.random.SeedSequence` child per task *index* via
``SeedSequence.spawn`` -- child ``i`` depends only on the base seed and
``i`` (its spawn key), never on how many siblings exist or which worker
runs it.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.SeedSequence]


def spawn_sequences(seed: SeedLike, count: int) -> List[np.random.SeedSequence]:
    """``count`` independent child sequences of ``seed``, in index order."""
    root = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return root.spawn(count)


def sequence_for_index(seed: int, index: int) -> np.random.SeedSequence:
    """Child sequence ``index`` of ``SeedSequence(seed)``.

    Equals ``spawn_sequences(seed, n)[index]`` for any ``n > index`` --
    spawn keys encode only the child's position, so a single task can be
    re-derived without materialising the whole batch.
    """
    return np.random.SeedSequence(seed, spawn_key=(index,))


def rng_for_index(seed: int, index: int) -> np.random.Generator:
    """A Generator seeded from :func:`sequence_for_index`."""
    return np.random.default_rng(sequence_for_index(seed, index))
