"""Process-pool task execution with structured failure records.

:class:`WorkerPool` runs a list of :class:`Task`\\ s across worker
processes and returns one :class:`TaskOutcome` per task, in task order.
It is built for experiment fan-out (sweep points, baseline arms,
finite-difference probes), so its failure model is per-task, never
pool-wide:

* a task that **raises** produces an ``error_kind="exception"`` outcome
  and its siblings keep running;
* a worker that **crashes** (segfault, ``os._exit``) loses only its
  current task, which is retried up to ``retries`` times before an
  ``error_kind="crash"`` outcome is recorded;
* a task that exceeds the per-task **timeout** gets its worker killed
  and is retried / recorded as ``error_kind="timeout"``.

Workers are spawn-safe: the worker entrypoint is a module-level
function and tasks are pickled when the start method requires it.  When
``max_workers <= 1``, the platform has no usable start method, or the
tasks cannot be pickled under a non-fork start method, the pool
transparently falls back to in-process serial execution with identical
outcome semantics (timeouts cannot preempt in-process and are ignored
there).

Each worker resets its process-local :func:`repro.telemetry.metrics
.default_registry` before a task and ships the task's typed metrics
snapshot back with the result; the parent merges it into its own
registry (see :meth:`MetricsRegistry.merge_typed`) and attaches it to
the outcome.  When the parent is inside a :func:`repro.telemetry
.profile` region, workers additionally collect per-kernel stats for
each task and ship those back too, so the parent profile's kernel
table covers work done in worker processes.  Likewise, when the parent
has a :class:`repro.telemetry.trace.TraceRecorder` active, its
:class:`TraceContext` rides along in the worker envelope: each worker
records spans on a clock aligned to the parent's timeline and ships
them back per task, and the parent merges them so one pooled run
renders as a single multi-lane Chrome trace.
"""

from __future__ import annotations

import math
import multiprocessing
import multiprocessing.connection
import os
import pickle
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.telemetry.metrics import default_registry


@dataclass
class Task:
    """One unit of work: ``fn(*args, **kwargs)`` returning any picklable value."""

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Optional[Mapping[str, Any]] = None


@dataclass
class TaskOutcome:
    """Structured result of one task attempt chain.

    ``ok`` outcomes carry ``value``; failures carry ``error`` (a repr of
    the exception, or a timeout/crash description) and ``error_kind``
    (``"exception"`` | ``"timeout"`` | ``"crash"``).  ``attempts``
    counts executions including retries; ``telemetry`` is the worker's
    typed metrics snapshot for the task (empty in serial fallback,
    where metrics flow directly into the parent registry).
    ``kernels`` is the worker's per-kernel profiler stats for the task,
    populated only when the parent ran the pool inside a
    :func:`repro.telemetry.profile` region (empty in serial fallback,
    where the parent's own kernel hook sees every call).  ``spans`` is
    the worker's span dicts for the task, populated only when the
    parent had a trace recorder active at dispatch (empty in serial
    fallback, where spans land directly in the parent recorder).
    """

    index: int
    ok: bool
    value: Any = None
    error: str = ""
    error_kind: str = ""
    attempts: int = 1
    duration_s: float = 0.0
    telemetry: Dict[str, Any] = field(default_factory=dict)
    kernels: Dict[str, Any] = field(default_factory=dict)
    spans: List[Dict[str, Any]] = field(default_factory=list)


def cpu_workers() -> int:
    """Worker count auto-detected from the CPU count (always >= 1)."""
    return max(1, os.cpu_count() or 1)


def _execute(fn: Callable[..., Any], args: Tuple[Any, ...],
             kwargs: Optional[Mapping[str, Any]]) -> Tuple[str, Any, str, float]:
    """Run one task, catching exceptions: (status, value, kind, duration)."""
    start = time.perf_counter()
    try:
        value = fn(*args, **dict(kwargs or {}))
    except Exception as exc:
        return "err", repr(exc), "exception", time.perf_counter() - start
    return "ok", value, "", time.perf_counter() - start


class _KernelCollector:
    """Worker-side kernel hook accumulating the profiler wire format."""

    def __init__(self) -> None:
        self.stats: Dict[str, Dict[str, Any]] = {}

    def __call__(self, backend: str, kernel: str,
                 seconds: float, nbytes: int) -> None:
        key = f"{backend}/{kernel}"
        stat = self.stats.get(key)
        if stat is None:
            stat = self.stats[key] = {
                "backend": backend, "kernel": kernel,
                "calls": 0, "total_time": 0.0, "bytes_moved": 0,
            }
        stat["calls"] += 1
        stat["total_time"] += seconds
        stat["bytes_moved"] += nbytes

    def drain(self) -> Dict[str, Dict[str, Any]]:
        stats, self.stats = self.stats, {}
        return stats


def _worker_main(chunk: List[Tuple[int, Task]], conn,
                 collect_kernels: bool = False,
                 trace_ctx=None) -> None:
    """Worker entrypoint: run a chunk of tasks, send one message each.

    Module-level so the pool stays importable under the ``spawn`` start
    method.  The process-local metrics registry is reset per task so the
    shipped snapshot covers exactly that task (under ``fork`` the child
    inherits a copy of the parent registry; resetting the copy leaves
    the parent untouched).  With ``collect_kernels`` the worker installs
    a kernel hook and ships per-task kernel stats for the parent's
    active profile to merge.  With ``trace_ctx`` the worker installs a
    parent-aligned trace recorder (replacing any recorder inherited via
    fork, whose spans the parent already owns) and ships each task's
    span dicts back for the parent to merge.
    """
    from repro.telemetry.trace import set_recorder, span, worker_recorder

    registry = default_registry()
    collector: Optional[_KernelCollector] = None
    if collect_kernels:
        from repro.backend import registry as _backend_registry
        collector = _KernelCollector()
        _backend_registry.set_kernel_hook(collector)
    recorder = worker_recorder(trace_ctx) if trace_ctx is not None else None
    set_recorder(recorder)
    for index, task in chunk:
        registry.reset()
        with span("pool.task", index=index):
            status, value, kind, duration = _execute(task.fn, task.args,
                                                     task.kwargs)
        snapshot = registry.typed_snapshot()
        kernels = collector.drain() if collector is not None else {}
        spans = recorder.drain_dicts() if recorder is not None else []
        try:
            conn.send((status, index, value, kind, duration, snapshot,
                       kernels, spans))
        except Exception as exc:  # unpicklable task result
            conn.send(("err", index, f"unpicklable result: {exc!r}",
                       "exception", duration, snapshot, kernels, spans))
    conn.send(("bye", -1, None, "", 0.0, None, None, None))
    conn.close()


class _ActiveWorker:
    """Parent-side bookkeeping for one live worker process."""

    __slots__ = ("process", "conn", "chunk", "position", "last_event")

    def __init__(self, process, conn, chunk: List[Tuple[int, Task]]) -> None:
        self.process = process
        self.conn = conn
        self.chunk = chunk
        self.position = 0  # index into chunk of the task now executing
        self.last_event = time.perf_counter()

    def current_index(self) -> int:
        return self.chunk[self.position][0]

    def remaining(self) -> List[Tuple[int, Task]]:
        return self.chunk[self.position + 1:]


class WorkerPool:
    """Chunked multi-process task runner with bounded retries.

    Args:
        max_workers: concurrent worker processes; ``None`` auto-detects
            from the CPU count; ``<= 1`` forces in-process serial
            execution.
        timeout: per-task wall-clock budget in seconds (``None`` = no
            limit).  A worker's startup time counts against its first
            task.  Ignored in the serial fallback.
        retries: how many times a crashed or timed-out task is re-run
            before a failure outcome is recorded (exceptions are never
            retried -- they are deterministic).
        chunk_size: tasks handed to a worker per process spawn; defaults
            to ``ceil(n / (workers * 4))`` for load balancing.
        start_method: multiprocessing start method override; defaults to
            ``fork`` when available (no pickling of task functions),
            else the platform default.
    """

    def __init__(self, max_workers: Optional[int] = None,
                 timeout: Optional[float] = None,
                 retries: int = 1,
                 chunk_size: Optional[int] = None,
                 start_method: Optional[str] = None) -> None:
        if timeout is not None and timeout <= 0:
            raise ConfigError(f"timeout must be positive, got {timeout}")
        if retries < 0:
            raise ConfigError(f"retries must be >= 0, got {retries}")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigError(f"chunk_size must be >= 1, got {chunk_size}")
        self.max_workers = cpu_workers() if max_workers is None else int(max_workers)
        self.timeout = timeout
        self.retries = int(retries)
        self.chunk_size = chunk_size
        available = multiprocessing.get_all_start_methods()
        if start_method is not None and start_method not in available:
            raise ConfigError(
                f"start method {start_method!r} not in {available}")
        if start_method is None:
            start_method = "fork" if "fork" in available else (
                available[0] if available else None)
        self.start_method = start_method

    # ------------------------------------------------------------- API
    def map(self, fn: Callable[..., Any],
            kwargs_list: Sequence[Mapping[str, Any]]) -> List[TaskOutcome]:
        """Run ``fn(**kwargs)`` for each kwargs mapping."""
        return self.run([Task(fn, kwargs=kw) for kw in kwargs_list])

    def run(self, tasks: Sequence[Task]) -> List[TaskOutcome]:
        """Execute every task; outcomes are returned in task order."""
        tasks = list(tasks)
        if not tasks:
            return []
        if self.max_workers <= 1 or self.start_method is None or not self._picklable(tasks):
            return self._run_serial(tasks)
        return self._run_pooled(tasks)

    # ---------------------------------------------------- serial path
    def _picklable(self, tasks: Sequence[Task]) -> bool:
        """Under fork, task payloads travel by memory inheritance; any
        other start method pickles them into the child."""
        if self.start_method == "fork":
            return True
        try:
            pickle.dumps([(t.fn, t.args, dict(t.kwargs or {})) for t in tasks])
        except Exception:
            return False
        return True

    def _run_serial(self, tasks: Sequence[Task]) -> List[TaskOutcome]:
        outcomes: List[TaskOutcome] = []
        for index, task in enumerate(tasks):
            status, value, kind, duration = _execute(task.fn, task.args, task.kwargs)
            if status == "ok":
                outcomes.append(TaskOutcome(index, True, value=value,
                                            duration_s=duration))
            else:
                outcomes.append(TaskOutcome(index, False, error=value,
                                            error_kind=kind, duration_s=duration))
        return outcomes

    # ---------------------------------------------------- pooled path
    def _chunks(self, indexed: List[Tuple[int, Task]]) -> List[List[Tuple[int, Task]]]:
        size = self.chunk_size
        if size is None:
            size = max(1, math.ceil(len(indexed) / (self.max_workers * 4)))
        return [indexed[i:i + size] for i in range(0, len(indexed), size)]

    def _spawn(self, ctx, chunk: List[Tuple[int, Task]],
               collect_kernels: bool = False,
               trace_ctx=None) -> _ActiveWorker:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(target=_worker_main,
                              args=(chunk, child_conn, collect_kernels,
                                    trace_ctx),
                              daemon=True)
        process.start()
        child_conn.close()
        return _ActiveWorker(process, parent_conn, chunk)

    def _reap(self, worker: _ActiveWorker) -> None:
        worker.conn.close()
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(0.5)
            if worker.process.is_alive():
                worker.process.kill()
        worker.process.join()

    def _run_pooled(self, tasks: Sequence[Task]) -> List[TaskOutcome]:
        ctx = multiprocessing.get_context(self.start_method)
        pending = self._chunks(list(enumerate(tasks)))
        outcomes: Dict[int, TaskOutcome] = {}
        failures: Dict[int, int] = {}   # crash/timeout count per task index
        attempts: Dict[int, int] = {}   # executions started per task index
        active: List[_ActiveWorker] = []
        registry = default_registry()
        from repro.telemetry.profiler import active_profile
        from repro.telemetry.trace import current_trace_context, get_recorder
        # Decided once at run start: workers collect kernel stats only
        # when the parent has a profile to merge them into; likewise
        # workers record spans only when the parent has a recorder.
        collect_kernels = active_profile() is not None
        trace_ctx = current_trace_context()

        def start_task(worker: _ActiveWorker) -> None:
            index = worker.current_index()
            attempts[index] = attempts.get(index, 0) + 1

        def fail_current(worker: _ActiveWorker, kind: str, message: str) -> None:
            """Attribute a crash/timeout to the in-flight task and
            reschedule it (bounded) plus the chunk's untouched tail."""
            registry.counter(f"pool.worker_{kind}s" if kind in
                             ("crash", "timeout") else
                             "pool.worker_failures").inc()
            index = worker.current_index()
            failures[index] = failures.get(index, 0) + 1
            retry = failures[index] <= self.retries
            tail = worker.remaining()
            requeue = ([worker.chunk[worker.position]] if retry else []) + tail
            if not retry:
                outcomes[index] = TaskOutcome(
                    index, False, error=message, error_kind=kind,
                    attempts=attempts.get(index, 1),
                    duration_s=time.perf_counter() - worker.last_event,
                )
            if requeue:
                pending.append(requeue)
            self._reap(worker)
            active.remove(worker)

        while pending or active:
            while pending and len(active) < self.max_workers:
                worker = self._spawn(ctx, pending.pop(0), collect_kernels,
                                     trace_ctx)
                active.append(worker)
                start_task(worker)
            registry.gauge("pool.workers_alive").set(float(len(active)))

            now = time.perf_counter()
            wait_for = 0.1
            if self.timeout is not None:
                deadlines = [w.last_event + self.timeout for w in active]
                wait_for = max(0.0, min(min(deadlines) - now, wait_for))
            ready = multiprocessing.connection.wait(
                [w.conn for w in active], timeout=wait_for)

            for worker in list(active):
                if worker.conn not in ready:
                    continue
                try:
                    message = worker.conn.recv()
                except (EOFError, OSError):
                    fail_current(worker, "crash",
                                 f"worker died (exitcode "
                                 f"{worker.process.exitcode})")
                    continue
                (status, index, value, kind, duration, snapshot, kernels,
                 spans) = message
                if status == "bye":
                    self._reap(worker)
                    active.remove(worker)
                    continue
                if snapshot:
                    registry.merge_typed(snapshot)
                if kernels:
                    prof = active_profile()
                    if prof is not None:
                        prof.merge_kernels(kernels)
                if spans:
                    parent_recorder = get_recorder()
                    if parent_recorder is not None:
                        parent_recorder.merge_spans(spans)
                if status == "ok":
                    outcomes[index] = TaskOutcome(
                        index, True, value=value,
                        attempts=attempts.get(index, 1), duration_s=duration,
                        telemetry=snapshot or {}, kernels=kernels or {},
                        spans=list(spans or []),
                    )
                else:
                    outcomes[index] = TaskOutcome(
                        index, False, error=value, error_kind=kind,
                        attempts=attempts.get(index, 1), duration_s=duration,
                        telemetry=snapshot or {}, kernels=kernels or {},
                        spans=list(spans or []),
                    )
                worker.last_event = time.perf_counter()
                worker.position += 1
                if worker.position < len(worker.chunk):
                    start_task(worker)

            if self.timeout is not None:
                now = time.perf_counter()
                for worker in list(active):
                    if (worker.position < len(worker.chunk)
                            and now - worker.last_event > self.timeout):
                        fail_current(
                            worker, "timeout",
                            f"task exceeded {self.timeout:.3g}s timeout")

            # a worker that exited without a farewell (e.g. os._exit
            # right after its last send) still needs collecting
            for worker in list(active):
                if not worker.process.is_alive() and not worker.conn.poll():
                    if worker.position < len(worker.chunk):
                        fail_current(worker, "crash",
                                     f"worker died (exitcode "
                                     f"{worker.process.exitcode})")
                    else:
                        self._reap(worker)
                        active.remove(worker)

        registry.gauge("pool.workers_alive").set(0.0)
        return [outcomes[i] for i in sorted(outcomes)]
