"""Data-parallel training: persistent fork workers + deterministic all-reduce.

One training step under ``world`` ranks:

1. every rank runs forward/backward on its :meth:`DataLoader.shard`
   slice of the global batch and writes its *scaled* mean gradient
   (``slice_size / batch_size``) into its own gradient slab inside a
   :class:`~repro.parallel.arena.SharedTensorArena` -- the scaling makes
   the sum over ranks equal the serial mean-over-batch gradient, with
   the weight-only penalty term contributed exactly once in total;
2. a barrier, then a **tree-structured, fixed-reduction-order**
   all-reduce: at level ``k`` rank ``r`` (``r % 2^(k+1) == 0``) adds
   slab ``r + 2^k`` into slab ``r``, with a barrier between levels.
   The reduction pairs depend only on ``world`` (:func:`reduce_plan`),
   never on scheduling, so repeated runs reduce in the same order and
   produce bit-identical gradients;
3. rank 0 -- the *parent process itself*, not a worker -- points each
   ``param.grad`` at its reduced slab view, runs clipping/optimizer as
   in serial training, publishes the updated parameters back into the
   arena, and a final barrier releases the ranks into the next batch.

Parameters and gradients only ever cross process boundaries through the
shared-memory arena: the per-rank control pipes carry one tiny "epoch"
command down and one "done" summary up per epoch, and
:func:`set_message_audit` lets the test suite assert that nothing else
-- no weights, no batches -- is ever pickled on the steady-state path.

Workers are forked lazily on the first epoch (so they inherit the
arena mapping, the model, the loader, and the step runner -- including
a private per-worker compiled-program cache) and persist across epochs.
Batch-norm running statistics stay rank-local during an epoch and are
averaged across ranks through the arena at every epoch end, which keeps
eval-time behaviour close to the serial run (the EMA update is linear,
so averaging commutes with it).

A watchdog thread in the parent aborts the shared barrier the moment a
worker dies, converting what would be a hang into a :class:`DDPError`;
arena segments are unlinked on every teardown path (including crashes,
via the arena's ``atexit`` hook and the stale-segment sweep).
"""

from __future__ import annotations

import dataclasses
import multiprocessing as mp
import os
import signal
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro import backend as _backend
from repro import precision as _precision
from repro.errors import DDPError
from repro.parallel.arena import (
    SharedTensorArena,
    cleanup_stale_segments,
    live_segments,
)
from repro.telemetry.metrics import default_registry
from repro.telemetry.trace import (
    current_trace_context,
    set_recorder,
    span,
    worker_recorder,
)

__all__ = [
    "DDPContext", "available", "shm_available", "reduce_plan",
    "default_ddp_workers", "set_default_ddp_workers", "ddp_config",
    "set_message_audit",
]

#: Backstop timeout for every barrier crossing; the watchdog usually
#: breaks the barrier long before this fires.
DEFAULT_BARRIER_TIMEOUT_S = 120.0


# ---------------------------------------------------------------------------
# Process-wide default (the CLI's --ddp-workers flag)
# ---------------------------------------------------------------------------

_default_workers: Optional[int] = None


def default_ddp_workers() -> Optional[int]:
    """The process-wide worker count (``None`` = serial training)."""
    return _default_workers


def set_default_ddp_workers(workers: Optional[int]) -> Optional[int]:
    """Set the process default; returns the previous value."""
    global _default_workers
    previous = _default_workers
    if workers is not None:
        workers = int(workers)
        if workers < 1:
            raise DDPError(f"ddp workers must be >= 1, got {workers}")
    _default_workers = workers
    return previous


def available() -> bool:
    """Whether this platform can run the fork-based DDP runtime."""
    return "fork" in mp.get_all_start_methods()


def shm_available() -> bool:
    """Whether ``multiprocessing.shared_memory`` actually works here."""
    try:
        from multiprocessing import shared_memory
        probe = shared_memory.SharedMemory(create=True, size=16)
    except Exception:
        return False
    try:
        probe.unlink()
    finally:
        probe.close()
    return True


def ddp_config() -> Dict[str, Any]:
    """Environment/config summary rows for ``repro info``."""
    return {
        "cpus": os.cpu_count() or 1,
        "fork_available": available(),
        "shm_available": shm_available(),
        "default_workers": default_ddp_workers(),
        "live_segments": len(live_segments()),
    }


# ---------------------------------------------------------------------------
# Control-plane message audit (the "no pickling on the hot path" gate)
# ---------------------------------------------------------------------------

_message_audit: Optional[Callable[[str, Any], None]] = None


def set_message_audit(
    hook: Optional[Callable[[str, Any], None]]
) -> Optional[Callable[[str, Any], None]]:
    """Install a hook observing every pickled control message.

    The hook is called as ``hook(direction, message)`` with direction
    ``"send"`` or ``"recv"`` for every message crossing a DDP control
    pipe in this process.  Tests use it to pin down that the
    steady-state step path pickles no weights and no batches -- the
    only traffic is one epoch command and one completion summary per
    worker per epoch.
    """
    global _message_audit
    previous = _message_audit
    _message_audit = hook
    return previous


def _send_msg(conn, message: Any) -> None:
    if _message_audit is not None:
        _message_audit("send", message)
    conn.send(message)


def _recv_msg(conn) -> Any:
    message = conn.recv()
    if _message_audit is not None:
        _message_audit("recv", message)
    return message


# ---------------------------------------------------------------------------
# The fixed reduction schedule
# ---------------------------------------------------------------------------

def reduce_plan(world: int) -> List[List[Tuple[int, int]]]:
    """Binary-tree reduction levels for ``world`` ranks.

    Level ``k`` holds ``(dst, src)`` pairs ``(r, r + 2^k)`` for every
    ``r`` divisible by ``2^(k+1)`` -- after the last level, rank 0's
    slab holds the total.  The schedule is a pure function of ``world``,
    which is what makes the reduction order (and therefore the floating
    point rounding) reproducible run-to-run.

    >>> reduce_plan(4)
    [[(0, 1), (2, 3)], [(0, 2)]]
    """
    if world < 1:
        raise DDPError(f"world size must be >= 1, got {world}")
    plan: List[List[Tuple[int, int]]] = []
    step = 1
    while step < world:
        plan.append([(dst, dst + step)
                     for dst in range(0, world - step, 2 * step)])
        step *= 2
    return plan


# ---------------------------------------------------------------------------
# Per-rank execution state (built pre-fork; children inherit it)
# ---------------------------------------------------------------------------

@dataclass
class _RankState:
    """Everything one rank needs to run its side of the step protocol."""

    rank: int
    world: int
    barrier: Any
    barrier_timeout: float
    model: Any
    params: List[Any]
    runner: Any
    loader: Any
    augment: bool
    augment_rng: np.random.Generator
    backend: Optional[str]
    dtype: Optional[str]
    plan: List[List[Tuple[int, int]]]
    #: grad_views[rank][i] -- rank's scaled-gradient slab for param i.
    grad_views: List[List[np.ndarray]]
    #: (world, 3) float64: per-rank (task_loss, penalty, slice size).
    scalars: np.ndarray
    #: (module, buffer name) pairs for every float buffer, model order.
    buffer_refs: List[Tuple[Any, str]]
    #: buf_views[rank][j] -- rank's epoch-end buffer snapshot slots
    #: (rank 0's row doubles as the broadcast slot for the average).
    buf_views: List[List[np.ndarray]]
    stats: Dict[str, float] = field(default_factory=dict)

    def reset_stats(self) -> None:
        self.stats = {"steps": 0, "allreduce_s": 0.0, "barrier_s": 0.0}


def _barrier_wait(state: _RankState) -> None:
    start = time.perf_counter()
    try:
        state.barrier.wait(timeout=state.barrier_timeout)
    except threading.BrokenBarrierError:
        raise DDPError(
            f"ddp barrier broken at rank {state.rank} "
            "(a worker died or a barrier wait timed out)"
        )
    finally:
        state.stats["barrier_s"] += time.perf_counter() - start


def _compute_and_write(state: _RankState, item, compiled: bool) -> Tuple[float, float]:
    """Forward/backward on this rank's slice; write the scaled slab.

    Returns this rank's (task_loss, penalty) floats.  The augmentation
    mask is always drawn for the *full* batch so the per-rank RNG stays
    in lockstep with the serial run even when this rank's slice is
    empty (ragged final batch smaller than the world size).
    """
    inputs, labels = item.inputs, item.labels
    n = len(labels)
    if state.augment:
        from repro.datasets.transforms import apply_flip_mask, flip_mask
        mask = flip_mask(state.augment_rng, item.global_size)
        if n:
            inputs = apply_flip_mask(inputs, mask[item.offset:item.offset + n])
    slabs = state.grad_views[state.rank]
    if n:
        task_loss, penalty = state.runner.step(inputs, labels, compiled=compiled)
        scale = n / item.global_size
        for param, slab in zip(state.params, slabs):
            if param.grad is None:
                slab[...] = 0
            else:
                np.multiply(param.grad, scale, out=slab)
    else:
        task_loss, penalty = 0.0, 0.0
        for slab in slabs:
            slab[...] = 0
    state.scalars[state.rank, 0] = task_loss
    state.scalars[state.rank, 1] = penalty
    state.scalars[state.rank, 2] = n
    return task_loss, penalty


def _allreduce(state: _RankState) -> None:
    """Fixed-order tree reduction into rank 0's slabs (all ranks call)."""
    start = time.perf_counter()
    with span("ddp.allreduce", rank=state.rank):
        _barrier_wait(state)  # every rank's slab write is complete
        for level in state.plan:
            for dst, src in level:
                if dst == state.rank:
                    for acc, inc in zip(state.grad_views[dst],
                                        state.grad_views[src]):
                        acc += inc
            _barrier_wait(state)
    state.stats["allreduce_s"] += time.perf_counter() - start


def _sync_buffers(state: _RankState) -> None:
    """Epoch-end cross-rank averaging of float buffers (BN statistics).

    Non-zero ranks snapshot their buffers into their arena row and wait;
    rank 0 averages its own live buffers with the rows, loads the mean
    into its model, and leaves it in row 0 for everyone else to load.
    """
    if not state.buffer_refs:
        _barrier_wait(state)
        _barrier_wait(state)
        return
    rank, world = state.rank, state.world
    if rank != 0:
        for (module, name), slot in zip(state.buffer_refs, state.buf_views[rank]):
            np.copyto(slot, module._buffers[name], casting="unsafe")
    _barrier_wait(state)
    if rank == 0:
        for j, (module, name) in enumerate(state.buffer_refs):
            mean = state.buf_views[0][j]
            np.copyto(mean, module._buffers[name], casting="unsafe")
            for r in range(1, world):
                mean += state.buf_views[r][j]
            mean /= world
            module.update_buffer(name, np.array(mean, copy=True))
    _barrier_wait(state)
    if rank != 0:
        for (module, name), mean in zip(state.buffer_refs, state.buf_views[0]):
            module.update_buffer(
                name, np.array(mean, dtype=module._buffers[name].dtype)
            )


def _run_rank_epoch(state: _RankState, epoch: int, compiled: bool) -> None:
    """One full epoch of the worker side of the step protocol."""
    state.model.train()
    shard = state.loader.shard(state.rank, state.world)
    with span("ddp.rank_epoch", rank=state.rank, epoch=epoch):
        for item in shard.iter_meta():
            with span("ddp.rank_step", rank=state.rank):
                _compute_and_write(state, item, compiled)
                _allreduce(state)
                # rank 0 is running clip + optimizer + publish
                _barrier_wait(state)
            state.stats["steps"] += 1
        _sync_buffers(state)


def _worker_main(state: _RankState, conn) -> None:
    """Entry point of a forked worker: serve epoch commands until told
    to stop (``None``) or the barrier breaks."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    set_recorder(None)  # never inherit the parent's live recorder
    default_registry().reset()
    while True:
        try:
            command = _recv_msg(conn)
        except (EOFError, OSError):
            break
        if command is None:
            break
        _, epoch, compiled, trace_ctx = command
        recorder = worker_recorder(trace_ctx) if trace_ctx is not None else None
        set_recorder(recorder)
        state.reset_stats()
        payload: Dict[str, Any] = {"rank": state.rank}
        try:
            with _backend.use_backend(state.backend), \
                    _precision.use_dtype(state.dtype):
                _run_rank_epoch(state, epoch, compiled)
        except DDPError:
            set_recorder(None)
            os._exit(1)
        except BaseException:
            # crash honestly: the parent watchdog turns this into a
            # DDPError at the next barrier instead of a silent hang
            set_recorder(None)
            os._exit(1)
        set_recorder(None)
        payload.update(state.stats)
        payload["compile"] = dict(state.runner.stats)
        from repro.autograd.planner import last_tape_stats
        tape = last_tape_stats()
        payload["tape"] = dataclasses.asdict(tape) if tape is not None else None
        payload["spans"] = recorder.drain_dicts() if recorder is not None else []
        try:
            _send_msg(conn, ("done", state.rank, payload))
        except (BrokenPipeError, OSError):
            break
    conn.close()
    sys.exit(0)


# ---------------------------------------------------------------------------
# The parent-side context
# ---------------------------------------------------------------------------

class DDPContext:
    """Parent-side handle on one data-parallel training group.

    The parent process *is* rank 0: it computes its own shard, runs the
    optimizer on the reduced gradients, and publishes updated weights --
    so ``world_size`` workers means ``world_size - 1`` forked children.
    Construction is cheap; the arena is built and the children are
    forked lazily on the first :meth:`begin_epoch`, which must happen
    before anything else consumes an epoch from the shared loader.
    """

    def __init__(
        self,
        model,
        params: List[Any],
        runner,
        loader,
        world_size: int,
        augment: bool = False,
        augment_rng: Optional[np.random.Generator] = None,
        backend: Optional[str] = None,
        dtype: Optional[str] = None,
        barrier_timeout: float = DEFAULT_BARRIER_TIMEOUT_S,
    ) -> None:
        if world_size < 2:
            raise DDPError(
                f"DDPContext needs world_size >= 2, got {world_size} "
                "(serial training needs no context)"
            )
        if not available():
            raise DDPError("ddp requires the fork start method")
        self.model = model
        self.params = list(params)
        self.runner = runner
        self.loader = loader
        self.world = int(world_size)
        self.augment = bool(augment)
        self.augment_rng = augment_rng or np.random.default_rng(0)
        self.backend = backend
        self.dtype = dtype
        self.barrier_timeout = float(barrier_timeout)
        self.plan = reduce_plan(self.world)
        self.arena: Optional[SharedTensorArena] = None
        self._state: Optional[_RankState] = None
        self._param_views: List[np.ndarray] = []
        self._procs: Dict[int, mp.Process] = {}
        self._conns: Dict[int, Any] = {}
        self._started = False
        self._broken = False
        self._shutting_down = False
        self._dead_rank: Optional[int] = None
        self._watch_stop = threading.Event()
        self._watchdog: Optional[threading.Thread] = None
        self._epoch_open = False
        self._epoch_compiled = False
        self.last_epoch: Dict[str, Any] = {}

    # ------------------------------------------------------------ lifecycle
    def _build_arena(self) -> None:
        layout: Dict[str, Tuple[Tuple[int, ...], Any]] = {}
        for i, param in enumerate(self.params):
            layout[f"param/{i}"] = (param.data.shape, param.data.dtype)
        for rank in range(self.world):
            for i, param in enumerate(self.params):
                layout[f"grad/{rank}/{i}"] = (param.data.shape, param.data.dtype)
        layout["scalars"] = ((self.world, 3), np.float64)
        buffer_refs: List[Tuple[Any, str]] = []
        for _, module in self.model.named_modules():
            for name, buf in module._buffers.items():
                if buf.dtype.kind == "f":
                    buffer_refs.append((module, name))
        for rank in range(self.world):
            for j, (module, name) in enumerate(buffer_refs):
                buf = module._buffers[name]
                layout[f"buf/{rank}/{j}"] = (buf.shape, np.float64)
        self.arena = SharedTensorArena.create(layout)
        self._buffer_refs = buffer_refs
        # move parameters into the arena: children forked after this
        # point see every optimizer update without any copying
        self._param_views = []
        for i, param in enumerate(self.params):
            view = self.arena.view(f"param/{i}")
            np.copyto(view, param.data)
            param.data = view
            self._param_views.append(view)

    def _start(self) -> None:
        cleanup_stale_segments()
        self._build_arena()
        ctx = mp.get_context("fork")
        barrier = ctx.Barrier(self.world)
        grad_views = [
            [self.arena.view(f"grad/{rank}/{i}")
             for i in range(len(self.params))]
            for rank in range(self.world)
        ]
        buf_views = [
            [self.arena.view(f"buf/{rank}/{j}")
             for j in range(len(self._buffer_refs))]
            for rank in range(self.world)
        ]
        scalars = self.arena.view("scalars")

        def rank_state(rank: int) -> _RankState:
            state = _RankState(
                rank=rank, world=self.world, barrier=barrier,
                barrier_timeout=self.barrier_timeout,
                model=self.model, params=self.params, runner=self.runner,
                loader=self.loader, augment=self.augment,
                augment_rng=self.augment_rng, backend=self.backend,
                dtype=self.dtype, plan=self.plan, grad_views=grad_views,
                scalars=scalars, buffer_refs=self._buffer_refs,
                buf_views=buf_views,
            )
            state.reset_stats()
            return state

        self._state = rank_state(0)
        for rank in range(1, self.world):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(rank_state(rank), child_conn),
                daemon=True,
                name=f"repro-ddp-{rank}",
            )
            proc.start()
            child_conn.close()
            self._procs[rank] = proc
            self._conns[rank] = parent_conn
        self._watchdog = threading.Thread(
            target=self._watch, name="repro-ddp-watchdog", daemon=True
        )
        self._watchdog.start()
        self._started = True
        registry = default_registry()
        registry.gauge("ddp.workers").set(float(self.world))
        registry.gauge("ddp.shm_segments").set(float(len(live_segments())))
        from repro.telemetry.events import get_logger
        get_logger().debug(
            "ddp.start", world=self.world,
            segment=self.arena.segment_name,
            arena_bytes=self.arena.nbytes,
            pids=[p.pid for p in self._procs.values()],
        )

    def _watch(self) -> None:
        """Break the barrier as soon as any child dies unexpectedly."""
        while not self._watch_stop.wait(0.05):
            for rank, proc in self._procs.items():
                if not proc.is_alive() and not self._shutting_down:
                    self._dead_rank = rank
                    self._broken = True
                    try:
                        self._state.barrier.abort()
                    except Exception:
                        pass
                    return

    # ------------------------------------------------------------ one epoch
    def begin_epoch(self, epoch: int, compiled: bool):
        """Fork (first call), command every worker into the epoch, and
        return the parent's shard iterator."""
        if not self._started:
            self._start()
        self._raise_if_broken()
        trace_ctx = current_trace_context()
        for rank, conn in self._conns.items():
            try:
                _send_msg(conn, ("epoch", epoch, compiled, trace_ctx))
            except (BrokenPipeError, OSError):
                self._broken = True
                self._dead_rank = rank
                raise DDPError(f"ddp worker rank {rank} is gone")
        self._state.reset_stats()
        self._epoch_open = True
        self._epoch_compiled = bool(compiled)
        return self.loader.shard(0, self.world).iter_meta()

    def rank0_step(self, item) -> Tuple[float, float, int]:
        """The parent's half of one global step, up to the reduced
        gradients: returns ``(task_loss, penalty, batch_size)`` for the
        *global* batch, with ``param.grad`` pointing at the reduced
        slabs ready for clipping and the optimizer."""
        state = self._state
        try:
            _compute_and_write(state, item, self._epoch_compiled)
            _allreduce(state)
        except DDPError:
            self._broken = True
            raise self._death_error()
        for param, slab in zip(self.params, state.grad_views[0]):
            param.grad = slab
        scalars = state.scalars
        counts = scalars[:, 2]
        total = float(counts.sum())
        task_loss = float((scalars[:, 0] * counts).sum() / total)
        nonzero = np.nonzero(counts)[0]
        penalty = float(scalars[nonzero[0], 1]) if len(nonzero) else 0.0
        return task_loss, penalty, int(total)

    def finish_step(self) -> None:
        """Publish the optimizer's update into the arena and release
        every rank into the next batch."""
        state = self._state
        with span("ddp.publish"):
            for param, view in zip(self.params, self._param_views):
                if param.data is not view:
                    np.copyto(view, param.data)
                    param.data = view
        state.stats["steps"] += 1
        try:
            _barrier_wait(state)
        except DDPError:
            self._broken = True
            raise self._death_error()

    def end_epoch(self) -> Dict[str, Any]:
        """Buffer sync + collect per-rank summaries; returns the merged
        epoch summary (also kept as :attr:`last_epoch`)."""
        state = self._state
        try:
            _sync_buffers(state)
        except DDPError:
            self._broken = True
            raise self._death_error()
        self._epoch_open = False
        summaries: Dict[int, Dict[str, Any]] = {}
        for rank, conn in self._conns.items():
            try:
                kind, got_rank, payload = _recv_msg(conn)
            except (EOFError, OSError):
                self._broken = True
                self._dead_rank = rank
                raise self._death_error()
            if kind != "done" or got_rank != rank:
                self._broken = True
                raise DDPError(
                    f"ddp protocol error: expected done from rank {rank}, "
                    f"got {kind!r} from {got_rank}"
                )
            summaries[rank] = payload
        return self._publish_epoch_metrics(summaries)

    def _publish_epoch_metrics(
        self, summaries: Dict[int, Dict[str, Any]]
    ) -> Dict[str, Any]:
        from repro.autograd.planner import last_tape_stats
        from repro.telemetry.trace import get_recorder

        state = self._state
        registry = default_registry()
        recorder = get_recorder()
        steps = int(state.stats["steps"])
        param_bytes = sum(int(p.data.nbytes) for p in self.params)
        # per step: every rank writes its slab, then (world - 1) slab
        # additions, then one parameter publish by rank 0
        step_bytes = param_bytes * (2 * self.world - 1) + param_bytes
        tapes = []
        own_tape = last_tape_stats()
        if own_tape is not None:
            tapes.append(dataclasses.asdict(own_tape))
        compile_totals: Dict[str, int] = {}
        for key, value in self.runner.stats.items():
            compile_totals[key] = compile_totals.get(key, 0) + int(value)
        worker_steps = 0
        allreduce_s = float(state.stats["allreduce_s"])
        barrier_s = float(state.stats["barrier_s"])
        for rank, payload in sorted(summaries.items()):
            worker_steps += int(payload.get("steps", 0))
            for key, value in payload.get("compile", {}).items():
                compile_totals[key] = compile_totals.get(key, 0) + int(value)
            if payload.get("tape"):
                tapes.append(payload["tape"])
            if recorder is not None and payload.get("spans"):
                recorder.merge_spans(payload["spans"],
                                     label=f"ddp rank={rank}")
        registry.counter("ddp.steps").inc(steps)
        registry.counter("ddp.worker_steps").inc(worker_steps)
        registry.counter("ddp.bytes_moved").inc(steps * step_bytes)
        if steps:
            registry.timer("ddp.allreduce_s").update(allreduce_s / steps)
            registry.timer("ddp.barrier_wait_s").update(barrier_s / steps)
        registry.gauge("ddp.workers").set(float(self.world))
        registry.gauge("ddp.shm_segments").set(float(len(live_segments())))
        registry.gauge("ddp.programs").set(
            float(compile_totals.get("programs", 0))
        )
        if tapes:
            registry.gauge("ddp.tape_saved_bytes").set(
                float(sum(t["total_saved_bytes"] for t in tapes))
            )
            registry.gauge("ddp.tape_peak_live_bytes").set(
                float(max(t["peak_live_bytes"] for t in tapes))
            )
        self.last_epoch = {
            "steps": steps,
            "worker_steps": worker_steps,
            "allreduce_s": allreduce_s,
            "barrier_s": barrier_s,
            "bytes_moved": steps * step_bytes,
            "compile": compile_totals,
            "tapes": tapes,
        }
        return self.last_epoch

    # ------------------------------------------------------------- teardown
    def _death_error(self) -> DDPError:
        if self._dead_rank is not None:
            return DDPError(
                f"ddp worker rank {self._dead_rank} (pid "
                f"{self._procs[self._dead_rank].pid}) died mid-epoch"
            )
        return DDPError("ddp barrier broken (worker death or timeout)")

    def _raise_if_broken(self) -> None:
        if self._broken:
            raise DDPError(
                "ddp context is broken (a worker died); build a new Trainer"
            )

    @property
    def broken(self) -> bool:
        return self._broken

    def shutdown(self) -> None:
        """Stop the workers, detach the parameters, unlink the arena.

        Safe to call multiple times and from any teardown path; after it
        returns the model owns private parameter arrays again and no
        ``/dev/shm`` segment of this context remains.
        """
        if self._started and not self._shutting_down:
            self._shutting_down = True
            self._watch_stop.set()
            if self._watchdog is not None:
                self._watchdog.join(timeout=1.0)
            for conn in self._conns.values():
                try:
                    _send_msg(conn, None)
                except (BrokenPipeError, OSError):
                    pass
            for proc in self._procs.values():
                proc.join(timeout=2.0)
            for proc in self._procs.values():
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=1.0)
            for conn in self._conns.values():
                try:
                    conn.close()
                except OSError:
                    pass
            self._procs.clear()
            self._conns.clear()
        # detach the model from the arena before the mapping goes away
        if self._param_views:
            grad_slabs = (set(id(s) for s in self._state.grad_views[0])
                          if self._state is not None else set())
            for param in self.params:
                param.data = np.array(param.data, copy=True)
                if param.grad is not None and id(param.grad) in grad_slabs:
                    param.grad = None
            self._param_views = []
        self._state = None
        if self.arena is not None:
            self.arena.close()
            self.arena = None
        cleanup_stale_segments()
        default_registry().gauge("ddp.shm_segments").set(
            float(len(live_segments()))
        )

    def __enter__(self) -> "DDPContext":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()
