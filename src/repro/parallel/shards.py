"""Persistent shard workers: the long-lived counterpart of :class:`WorkerPool`.

:class:`~repro.parallel.pool.WorkerPool` is built for *finite* fan-out:
it spawns workers per chunk, runs a fixed task list, and tears down.  A
serving front end needs the opposite shape -- a small set of
**persistent** worker processes, each holding expensive state (a loaded
model artifact), answering a stream of requests until shut down.
:class:`ShardPool` provides that with the same failure discipline the
pool established:

* a request whose handler **raises** returns an ``error_kind=
  "exception"`` result; the shard keeps serving;
* a shard that **dies** mid-request (segfault, ``kill``) is respawned
  (bounded by ``max_respawns`` per shard slot) and its in-flight
  requests are retried up to ``retries`` times before an
  ``error_kind="crash"`` result is delivered;
* a request that outlives its ``timeout`` in :meth:`result` returns an
  ``error_kind="timeout"`` result (the shard is left alone -- it may
  still be doing useful work for later requests).

Shards are started with the ``fork`` start method so the ``init_fn``
and payloads travel by memory inheritance; where ``fork`` is
unavailable the pool transparently degrades to in-process serial
execution with identical result semantics (and no crash isolation,
as with the WorkerPool's serial fallback).

A background collector thread owns every shard pipe; :meth:`submit` /
:meth:`result` are thread-safe, so the asyncio server can dispatch
batches from executor threads without extra locking.
"""

from __future__ import annotations

import itertools
import multiprocessing
import multiprocessing.connection
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ServeError
from repro.telemetry.metrics import default_registry

__all__ = ["ShardResult", "ShardPool"]


@dataclass
class ShardResult:
    """Outcome of one shard request (mirrors the pool's TaskOutcome)."""

    ticket: int
    ok: bool
    value: Any = None
    error: str = ""
    error_kind: str = ""       # "" | "exception" | "crash" | "timeout"
    shard: int = -1
    attempts: int = 1
    duration_s: float = 0.0


def _counter_deltas(baseline: Dict[str, float]) -> Dict[str, float]:
    """Positive counter movement since ``baseline`` (which is advanced).

    Shard children fork with a copy of the parent's registry, so
    counters bumped inside a shard (cache hits, handler-level tallies)
    are invisible to the parent.  Each reply ships the per-request
    counter *deltas* home instead; baselining after handler init keeps
    the inherited parent values out of the first delta.
    """
    current = default_registry().typed_snapshot()["counters"]
    deltas: Dict[str, float] = {}
    for name, value in current.items():
        moved = float(value) - baseline.get(name, 0.0)
        if moved > 0:
            deltas[name] = moved
        baseline[name] = float(value)
    return deltas


def _shard_main(index: int, init_fn: Callable[[], Callable[[Any], Any]],
                conn) -> None:
    """Shard entrypoint: build the handler once, then serve requests.

    Module-level for start-method safety.  ``init_fn`` returns the
    request handler; an init failure is reported once and the shard
    exits (the parent treats further traffic to it as a crash).  Replies
    are 6-tuples ``(status, ticket, value, error, duration, deltas)``
    where ``deltas`` maps counter names to their movement during the
    request; the parent folds them into its own registry.
    """
    try:
        handler = init_fn()
    except Exception as exc:
        try:
            conn.send(("init_error", -1, None, repr(exc), 0.0, {}))
        finally:
            conn.close()
        return
    baseline = dict(default_registry().typed_snapshot()["counters"])
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:  # orderly shutdown
            break
        ticket, payload = message
        start = time.perf_counter()
        try:
            value = handler(payload)
            reply = ("ok", ticket, value, "", time.perf_counter() - start,
                     _counter_deltas(baseline))
        except Exception as exc:
            reply = ("err", ticket, None, repr(exc),
                     time.perf_counter() - start, _counter_deltas(baseline))
        try:
            conn.send(reply)
        except Exception as exc:  # unpicklable handler result
            conn.send(("err", ticket, None,
                       f"unpicklable result: {exc!r}",
                       time.perf_counter() - start, {}))
    conn.close()


class _Shard:
    """Parent-side state for one shard slot."""

    __slots__ = ("index", "process", "conn", "inflight", "respawns", "dead")

    def __init__(self, index: int) -> None:
        self.index = index
        self.process = None
        self.conn = None
        self.inflight: Dict[int, Any] = {}  # ticket -> payload
        self.respawns = 0
        self.dead = True


class ShardPool:
    """N persistent worker processes answering a request stream.

    Args:
        init_fn: zero-arg callable run once inside each shard; returns
            the per-request handler ``handler(payload) -> value``.
        shards: number of shard slots (>= 1).
        retries: times a crashed request is re-run before a ``crash``
            result is delivered.
        max_respawns: times one shard slot is restarted after dying
            before it is written off as permanently dead.
        start_method: multiprocessing start method; only ``fork`` keeps
            ``init_fn`` unpickled, so anything else (or ``fork``
            missing) falls back to in-process serial execution.
    """

    def __init__(self, init_fn: Callable[[], Callable[[Any], Any]],
                 shards: int = 1, retries: int = 1, max_respawns: int = 3,
                 start_method: Optional[str] = None) -> None:
        if shards < 1:
            raise ServeError(f"shards must be >= 1, got {shards}")
        if retries < 0:
            raise ServeError(f"retries must be >= 0, got {retries}")
        if max_respawns < 0:
            raise ServeError(f"max_respawns must be >= 0, got {max_respawns}")
        self.init_fn = init_fn
        self.n_shards = int(shards)
        self.retries = int(retries)
        self.max_respawns = int(max_respawns)
        available = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in available else None
        elif start_method not in available:
            raise ServeError(f"start method {start_method!r} not in {available}")
        self.start_method = start_method if start_method == "fork" else None
        self.serial = self.start_method is None

        self._lock = threading.Lock()
        self._results_ready = threading.Condition(self._lock)
        self._results: Dict[int, ShardResult] = {}
        self._attempts: Dict[int, int] = {}
        self._abandoned: set = set()
        self._tickets = itertools.count()
        self._rr = itertools.count()
        self._closed = False
        self._shards: List[_Shard] = [_Shard(i) for i in range(self.n_shards)]
        self._handler: Optional[Callable[[Any], Any]] = None
        self._collector: Optional[threading.Thread] = None
        self._wake_r, self._wake_w = None, None

        if self.serial:
            self._handler = init_fn()
            self._set_alive_gauge(self.n_shards)
        else:
            self._ctx = multiprocessing.get_context(self.start_method)
            self._wake_r, self._wake_w = multiprocessing.Pipe(duplex=False)
            for shard in self._shards:
                self._spawn(shard)
            self._collector = threading.Thread(
                target=self._collect_loop, daemon=True, name="repro-shards")
            self._collector.start()

    # ------------------------------------------------------------ lifecycle
    def _set_alive_gauge(self, count: int) -> None:
        default_registry().gauge("serve.shards_alive").set(float(count))

    def _spawn(self, shard: _Shard) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_shard_main, args=(shard.index, self.init_fn, child_conn),
            daemon=True)
        process.start()
        child_conn.close()
        shard.process = process
        shard.conn = parent_conn
        shard.dead = False
        self._set_alive_gauge(sum(not s.dead for s in self._shards))

    def close(self) -> None:
        """Shut every shard down and stop the collector."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._results_ready.notify_all()
        if self.serial:
            self._set_alive_gauge(0)
            return
        try:
            self._wake_w.send(b"x")
        except Exception:
            pass
        if self._collector is not None:
            self._collector.join(timeout=2.0)
        for shard in self._shards:
            if shard.conn is not None:
                try:
                    shard.conn.send(None)
                except Exception:
                    pass
                shard.conn.close()
            if shard.process is not None:
                shard.process.join(timeout=1.0)
                if shard.process.is_alive():
                    shard.process.terminate()
                    shard.process.join(timeout=1.0)
        self._set_alive_gauge(0)

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc: Any) -> bool:
        self.close()
        return False

    # -------------------------------------------------------------- queries
    def alive(self) -> List[bool]:
        """Liveness per shard slot (serial mode: all True until close)."""
        if self.serial:
            return [not self._closed] * self.n_shards
        return [not shard.dead for shard in self._shards]

    def kill_shard(self, index: int) -> bool:
        """Hard-kill one shard process (fault-injection hook for tests).

        Returns True when a live process was killed; serial mode has no
        processes to kill and returns False.
        """
        if self.serial:
            return False
        shard = self._shards[index]
        if shard.process is None or not shard.process.is_alive():
            return False
        shard.process.kill()
        return True

    # ------------------------------------------------------------- requests
    def submit(self, payload: Any, shard: Optional[int] = None) -> int:
        """Enqueue one request; returns its ticket.

        ``shard=None`` round-robins over live shards.  With every shard
        permanently dead the request completes immediately as a
        ``crash`` result (structured, never an exception).
        """
        with self._lock:
            if self._closed:
                raise ServeError("ShardPool is closed")
            ticket = next(self._tickets)
            self._attempts[ticket] = 1
            if self.serial:
                self._results[ticket] = self._run_serial(ticket, payload)
                self._results_ready.notify_all()
                return ticket
            target = self._pick_shard(shard)
            if target is None:
                self._results[ticket] = ShardResult(
                    ticket, False, error="no live shards",
                    error_kind="crash", attempts=0)
                self._results_ready.notify_all()
                return ticket
            self._send(target, ticket, payload)
            return ticket

    def _run_serial(self, ticket: int, payload: Any) -> ShardResult:
        start = time.perf_counter()
        try:
            value = self._handler(payload)
        except Exception as exc:
            return ShardResult(ticket, False, error=repr(exc),
                               error_kind="exception", shard=0,
                               duration_s=time.perf_counter() - start)
        return ShardResult(ticket, True, value=value, shard=0,
                           duration_s=time.perf_counter() - start)

    def _pick_shard(self, index: Optional[int]) -> Optional[_Shard]:
        if index is not None:
            shard = self._shards[index]
            return None if shard.dead else shard
        live = [s for s in self._shards if not s.dead]
        if not live:
            return None
        return live[next(self._rr) % len(live)]

    def _send(self, shard: _Shard, ticket: int, payload: Any) -> None:
        shard.inflight[ticket] = payload
        try:
            shard.conn.send((ticket, payload))
        except Exception:
            # pipe already broken: let the collector's death handling
            # retry/record it the same way a mid-request crash would be
            self._on_shard_death(shard)

    def result(self, ticket: int,
               timeout: Optional[float] = None) -> ShardResult:
        """Block until the ticket resolves (or ``timeout`` elapses).

        A timeout yields an ``error_kind="timeout"`` result; the late
        value, if it ever arrives, is discarded.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while ticket not in self._results:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self._attempts.pop(ticket, None)
                        self._abandoned.add(ticket)
                        return ShardResult(
                            ticket, False,
                            error=f"request exceeded {timeout:.3g}s timeout",
                            error_kind="timeout")
                self._results_ready.wait(timeout=remaining)
                if self._closed and ticket not in self._results:
                    return ShardResult(ticket, False,
                                       error="ShardPool closed while waiting",
                                       error_kind="crash")
            return self._results.pop(ticket)

    def request(self, payload: Any, shard: Optional[int] = None,
                timeout: Optional[float] = None) -> ShardResult:
        """Submit + wait, as one call."""
        return self.result(self.submit(payload, shard=shard), timeout=timeout)

    # ------------------------------------------------------------ collector
    def _collect_loop(self) -> None:
        while True:
            with self._lock:
                if self._closed:
                    return
                conns = [s.conn for s in self._shards if not s.dead]
            try:
                ready = multiprocessing.connection.wait(
                    conns + [self._wake_r], timeout=0.2)
            except OSError:
                # A submit thread's _send failure can run _on_shard_death
                # and close one of the snapshotted conns while we wait on
                # it; that is a shard death, not a collector crash --
                # re-snapshot live conns and carry on.
                continue
            if self._wake_r in ready:
                try:
                    self._wake_r.recv()
                except Exception:
                    pass
                continue
            with self._lock:
                for shard in self._shards:
                    if shard.dead or shard.conn not in ready:
                        continue
                    try:
                        message = shard.conn.recv()
                    except (EOFError, OSError):
                        self._on_shard_death(shard)
                        continue
                    self._on_message(shard, message)
                # shards can die without a final message being ready
                for shard in self._shards:
                    if (not shard.dead and shard.process is not None
                            and not shard.process.is_alive()
                            and not shard.conn.poll()):
                        self._on_shard_death(shard)

    def _on_message(self, shard: _Shard, message: Any) -> None:
        status, ticket, value, error, duration = message[:5]
        deltas = message[5] if len(message) > 5 else None
        if deltas:
            registry = default_registry()
            for name, moved in deltas.items():
                if moved > 0:
                    registry.counter(str(name)).inc(float(moved))
        if status == "init_error":
            # the shard never became serviceable; treat as death
            self._on_shard_death(shard, reason=f"init failed: {error}")
            return
        shard.inflight.pop(ticket, None)
        attempts = self._attempts.pop(ticket, 1)
        if ticket in self._abandoned:  # waiter already timed out and left
            self._abandoned.discard(ticket)
            return
        if status == "ok":
            self._results[ticket] = ShardResult(
                ticket, True, value=value, shard=shard.index,
                attempts=attempts, duration_s=duration)
        else:
            self._results[ticket] = ShardResult(
                ticket, False, error=error, error_kind="exception",
                shard=shard.index, attempts=attempts, duration_s=duration)
        self._results_ready.notify_all()

    def _on_shard_death(self, shard: _Shard,
                        reason: Optional[str] = None) -> None:
        """Record the death, respawn the slot (bounded), retry in-flight."""
        registry = default_registry()
        registry.counter("serve.shard_deaths").inc()
        exitcode = getattr(shard.process, "exitcode", None)
        message = reason or f"shard {shard.index} died (exitcode {exitcode})"
        shard.dead = True
        try:
            shard.conn.close()
        except Exception:
            pass
        if shard.process is not None:
            if shard.process.is_alive():
                shard.process.terminate()
            shard.process.join(timeout=0.5)
        inflight = list(shard.inflight.items())
        shard.inflight.clear()
        self._set_alive_gauge(sum(not s.dead for s in self._shards))
        if shard.respawns < self.max_respawns and reason is None:
            shard.respawns += 1
            registry.counter("serve.shard_respawns").inc()
            self._spawn(shard)
        for ticket, payload in inflight:
            if ticket in self._abandoned:  # waiter already timed out
                self._abandoned.discard(ticket)
                self._attempts.pop(ticket, None)
                continue
            attempts = self._attempts.get(ticket, 1)
            if attempts <= self.retries:
                self._attempts[ticket] = attempts + 1
                registry.counter("serve.request_retries").inc()
                target = self._pick_shard(None)
                if target is not None:
                    self._send(target, ticket, payload)
                    continue
            self._attempts.pop(ticket, None)
            self._results[ticket] = ShardResult(
                ticket, False, error=message, error_kind="crash",
                shard=shard.index, attempts=attempts)
        self._results_ready.notify_all()
