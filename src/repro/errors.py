"""Exception hierarchy for the repro library.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors such as ``TypeError``.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ShapeError(ReproError):
    """An operation received tensors with incompatible shapes."""


class GradientError(ReproError):
    """Backward pass was requested in an invalid state."""


class CapacityError(ReproError):
    """The secret payload does not fit into the designated parameters."""


class QuantizationError(ReproError):
    """A quantizer received invalid configuration or data."""


class DatasetError(ReproError):
    """A dataset was constructed or indexed incorrectly."""


class ConfigError(ReproError):
    """A pipeline configuration is inconsistent."""


class ServeError(ReproError):
    """The serving layer refused or failed a request/artifact operation."""


class GraphError(ReproError):
    """Graph capture or compilation was requested in an unsupported state."""


class DDPError(ReproError):
    """The data-parallel training runtime failed or was misconfigured."""
