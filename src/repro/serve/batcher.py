"""Deadline-based request coalescing: the batching core of ``repro.serve``.

Single requests against a CPU inference stack waste most of their time
in per-call overhead (IPC, Python dispatch, cold im2col indices); the
paper's "released model under heavy traffic" scenario only becomes
measurable when requests *coalesce* into batches.  :class:`DeadlineBatcher`
is the pure, clock-injected decision kernel the async server builds on:

* requests are admitted FIFO with an absolute **deadline**; a request
  whose deadline has already passed, or that would overflow
  ``capacity``, is refused at admission with :class:`ServeError`
  (structured back-pressure, never silent queue growth);
* every admitted request becomes *due* at
  ``min(enqueued_at + max_wait, deadline - dispatch_margin)`` -- it
  coalesces with later arrivals for at most ``max_wait`` seconds, but
  never so long that dispatch would land past its deadline;
* :meth:`pop_due` emits batches of at most ``max_batch`` requests in
  strict FIFO order whenever the queue holds a due request or a full
  batch; draining an empty (or not-yet-due) queue is a no-op.

The batcher never sleeps and never reads the wall clock unless asked:
callers pass ``now`` explicitly or inject ``clock`` (the async server
uses ``time.monotonic``; the property tests drive a simulated clock),
so the invariants above are testable without a single real sleep.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, List, Optional

from repro.errors import ServeError

__all__ = ["QueuedRequest", "DeadlineBatcher"]


@dataclass
class QueuedRequest:
    """One admitted request waiting for a batch slot.

    ``context`` is an opaque caller slot (the async server parks the
    response future there); the batcher never touches it.
    """

    request_id: str
    payload: Any
    enqueued_at: float
    deadline: float
    due_at: float
    seq: int = 0
    context: Any = field(default=None, repr=False)


class DeadlineBatcher:
    """FIFO queue that coalesces requests into deadline-safe batches.

    Args:
        max_batch: hard cap on requests per emitted batch.
        max_wait_s: longest a request may wait for co-batching once
            admitted (its *coalescing* budget, not its deadline).
        capacity: admission cap on queued requests; submits beyond it
            are refused with :class:`ServeError`.
        dispatch_margin_s: safety margin subtracted from each deadline
            when computing the due time, covering the dispatch hop
            between "popped" and "running".
        clock: monotonic time source used when ``now`` is not passed
            explicitly (injectable for deterministic tests).
    """

    def __init__(self, max_batch: int = 16, max_wait_s: float = 0.005,
                 capacity: int = 512, dispatch_margin_s: float = 0.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if max_batch < 1:
            raise ServeError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_s < 0:
            raise ServeError(f"max_wait_s must be >= 0, got {max_wait_s}")
        if capacity < 1:
            raise ServeError(f"capacity must be >= 1, got {capacity}")
        if dispatch_margin_s < 0:
            raise ServeError(
                f"dispatch_margin_s must be >= 0, got {dispatch_margin_s}")
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_s)
        self.capacity = int(capacity)
        self.dispatch_margin_s = float(dispatch_margin_s)
        self.clock = clock
        self._pending: Deque[QueuedRequest] = deque()
        self._seq = itertools.count()

    # ------------------------------------------------------------ admission
    def __len__(self) -> int:
        return len(self._pending)

    def submit(self, request_id: str, payload: Any,
               deadline: Optional[float] = None,
               now: Optional[float] = None,
               context: Any = None) -> QueuedRequest:
        """Admit one request; refuse (raise) rather than over-commit.

        ``deadline`` is absolute in the batcher's clock domain; ``None``
        means "no deadline" (the request still dispatches within
        ``max_wait_s``).
        """
        now = self.clock() if now is None else float(now)
        if len(self._pending) >= self.capacity:
            raise ServeError(
                f"queue full: {len(self._pending)}/{self.capacity} requests "
                f"pending (request {request_id!r} refused)")
        if deadline is not None and deadline <= now:
            raise ServeError(
                f"deadline already passed for request {request_id!r} "
                f"(deadline {deadline:.6f} <= now {now:.6f})")
        due = now + self.max_wait_s
        if deadline is not None:
            due = min(due, deadline - self.dispatch_margin_s)
        request = QueuedRequest(
            request_id=str(request_id), payload=payload, enqueued_at=now,
            deadline=float("inf") if deadline is None else float(deadline),
            due_at=due, seq=next(self._seq), context=context,
        )
        self._pending.append(request)
        return request

    # ------------------------------------------------------------- dispatch
    def next_due(self) -> Optional[float]:
        """Earliest due time over pending requests (None when empty).

        Full batches are ready regardless of due times; the server
        calls :meth:`pop_due` after every admission, so a filled batch
        never waits on this value.
        """
        if not self._pending:
            return None
        return min(r.due_at for r in self._pending)

    def _head_due(self, now: float) -> bool:
        head = list(itertools.islice(self._pending, self.max_batch))
        return any(r.due_at <= now for r in head)

    def pop_due(self, now: Optional[float] = None) -> List[List[QueuedRequest]]:
        """Emit every batch that is ready at ``now``.

        A batch is ready when the queue holds ``max_batch`` requests
        (coalescing cannot help the head any further) or any request in
        the head window is due.  Requests leave in admission order and
        a single call drains everything ready, so one wake-up never
        leaves a due request behind.  Empty/not-due queues are a no-op.
        """
        now = self.clock() if now is None else float(now)
        batches: List[List[QueuedRequest]] = []
        while self._pending and (len(self._pending) >= self.max_batch
                                 or self._head_due(now)):
            batch = [self._pending.popleft()
                     for _ in range(min(self.max_batch, len(self._pending)))]
            batches.append(batch)
        return batches

    def drain(self) -> List[QueuedRequest]:
        """Remove and return everything pending (server shutdown path)."""
        drained = list(self._pending)
        self._pending.clear()
        return drained
