"""Minimal stdlib HTTP/1.1 front end over :class:`ModelServer`.

Just enough protocol for a load generator or ``curl`` to exercise the
serving path across a real socket -- no framework, no dependency:

``POST /infer``
    JSON body: ``{"model": key?, "inputs": nested-list? |
    "input_seed": int?, "deadline_ms": float?, "request_id": str?}``.
    Replies with the structured response summary
    (:meth:`InferenceResponse.to_dict`): 200 on success, 4xx/5xx keyed
    off ``error_kind`` -- a refusal is ``429``, an unknown model
    ``404``, a malformed request ``400``, everything operational
    ``500``.  The HTTP status is redundant with the JSON; clients
    should trust the JSON.

``GET /healthz``
    ``{"ok": bool, ...server.stats()}`` -- 200 while shards are alive,
    503 once they are all gone.

``GET /models``
    The served keys with fingerprints and quantization metadata.

:func:`http_loadgen` is the cross-process twin of
:func:`repro.serve.loadgen.run_loadgen`: it replays the same trace
over urllib in executor threads, so one process can drive another
("``repro loadgen --url``" against "``repro serve``").
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.serve.loadgen import LoadReport, TraceEntry, summarize_responses
from repro.serve.server import InferenceResponse, ModelServer
from repro.telemetry.events import get_logger

__all__ = ["ServeHTTP", "http_loadgen"]

_STATUS_TEXT = {200: "OK", 400: "Bad Request", 404: "Not Found",
                429: "Too Many Requests", 500: "Internal Server Error",
                503: "Service Unavailable"}

_KIND_STATUS = {"": 200, "refused": 429, "unknown_model": 404,
                "bad_request": 400, "shutdown": 503}

_MAX_BODY = 16 * 1024 * 1024


class ServeHTTP:
    """One listening socket bound to one :class:`ModelServer`."""

    def __init__(self, server: ModelServer, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.server = server
        self.host = host
        self.port = port
        self._listener: Optional[asyncio.AbstractServer] = None
        self._log = get_logger()

    async def start(self) -> "ServeHTTP":
        self._listener = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._listener.sockets[0].getsockname()[1]
        self._log.info("serve.http.listen", host=self.host, port=self.port)
        return self

    async def close(self) -> None:
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
            self._listener = None

    async def __aenter__(self) -> "ServeHTTP":
        return await self.start()

    async def __aexit__(self, *exc: Any) -> bool:
        await self.close()
        return False

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------- protocol
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            status, body = await self._respond(reader)
        except Exception as exc:  # defensive: one bad socket != one crash
            status, body = 500, {"ok": False, "error": repr(exc),
                                 "error_kind": "exception"}
        payload = json.dumps(body).encode("utf-8")
        head = (f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Status')}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n").encode("ascii")
        try:
            writer.write(head + payload)
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()

    async def _respond(self,
                       reader: asyncio.StreamReader) -> Tuple[int, Dict]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) < 2:
            return 400, {"ok": False, "error": "malformed request line",
                         "error_kind": "bad_request"}
        method, target = parts[0].upper(), parts[1]
        length = 0
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    length = -1
                if length < 0:
                    return 400, {"ok": False,
                                 "error": "bad content-length",
                                 "error_kind": "bad_request"}
        if method == "GET" and target == "/healthz":
            stats = self.server.stats()
            ok = stats["running"] and stats["shards_alive"] > 0
            return (200 if ok else 503), {"ok": ok, **stats}
        if method == "GET" and target == "/models":
            return 200, {"ok": True, "models": self.server.models()}
        if method == "POST" and target == "/infer":
            if length > _MAX_BODY:
                return 400, {"ok": False, "error": "body too large",
                             "error_kind": "bad_request"}
            raw = await reader.readexactly(length) if length else b"{}"
            try:
                request = json.loads(raw.decode("utf-8"))
                if not isinstance(request, dict):
                    raise ValueError("body must be a JSON object")
            except (ValueError, UnicodeDecodeError) as exc:
                return 400, {"ok": False, "error": f"bad JSON body: {exc}",
                             "error_kind": "bad_request"}
            return await self._infer(request)
        return 404, {"ok": False, "error": f"no route {method} {target}",
                     "error_kind": "bad_request"}

    async def _infer(self, request: Dict[str, Any]) -> Tuple[int, Dict]:
        inputs = request.get("inputs")
        if inputs is not None:
            try:
                inputs = np.asarray(inputs, dtype=np.float32)
            except (ValueError, TypeError) as exc:
                return 400, {"ok": False,
                             "error": f"bad inputs: {exc}",
                             "error_kind": "bad_request"}
        response = await self.server.infer(
            inputs=inputs,
            model=request.get("model"),
            input_seed=request.get("input_seed"),
            deadline_ms=request.get("deadline_ms"),
            request_id=request.get("request_id"))
        status = _KIND_STATUS.get(response.error_kind, 500)
        return status, response.to_dict()


# ------------------------------------------------------------- HTTP loadgen
def _post_infer(url: str, body: Dict[str, Any],
                timeout_s: float) -> Optional[InferenceResponse]:
    data = json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        f"{url.rstrip('/')}/infer", data=data,
        headers={"Content-Type": "application/json"}, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=timeout_s) as reply:
            record = json.loads(reply.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        try:
            record = json.loads(exc.read().decode("utf-8"))
        except Exception:
            return None
    except (urllib.error.URLError, OSError, ValueError):
        return None
    return InferenceResponse(
        request_id=str(record.get("request_id", "")),
        ok=bool(record.get("ok", False)),
        model=str(record.get("model", "")),
        error=str(record.get("error", "")),
        error_kind=str(record.get("error_kind", "")),
        shard=int(record.get("shard", -1)),
        batch_size=int(record.get("batch_size", 0)),
        queue_ms=float(record.get("queue_ms", 0.0)),
        infer_ms=float(record.get("infer_ms", 0.0)),
        latency_ms=float(record.get("latency_ms", 0.0)),
        deadline_missed=bool(record.get("deadline_missed", False)),
        # argmax is derived from outputs locally; over HTTP we only get
        # the summary, so leave outputs None and count ok/latency.
    )


async def http_loadgen(url: str, trace: Sequence[TraceEntry],
                       time_scale: float = 1.0,
                       timeout_s: float = 30.0,
                       clock: Callable[[], float] = time.monotonic,
                       ) -> LoadReport:
    """Replay ``trace`` against a remote ``repro serve`` over HTTP.

    Open-loop like :func:`run_loadgen`; each request runs urllib in a
    *dedicated* executor thread (never the loop's default executor --
    an in-process server dispatches batches there, and sharing it
    would let the client starve the server it is waiting on) so
    arrivals keep their schedule.  Connection failures count as lost
    requests, never exceptions -- the generator survives a refusing
    (or absent) server.
    """
    loop = asyncio.get_event_loop()
    executor = concurrent.futures.ThreadPoolExecutor(
        max_workers=min(32, max(4, len(trace))),
        thread_name_prefix="loadgen-http")
    start = clock()

    async def _one(entry: TraceEntry) -> Optional[InferenceResponse]:
        delay = entry.arrival_s * time_scale - (clock() - start)
        if delay > 0:
            await asyncio.sleep(delay)
        body: Dict[str, Any] = {"input_seed": entry.input_seed,
                                "deadline_ms": entry.deadline_ms,
                                "request_id": f"load-{entry.index}"}
        if entry.model is not None:
            body["model"] = entry.model
        return await loop.run_in_executor(
            executor, _post_infer, url, body, timeout_s)

    try:
        tasks = [asyncio.ensure_future(_one(entry)) for entry in trace]
        responses = await asyncio.gather(*tasks)
        return summarize_responses(responses, clock() - start)
    finally:
        executor.shutdown(wait=False)
