"""Deterministic open-loop synthetic load for the serving stack.

A serving benchmark is only trustworthy if its traffic is (a)
**open-loop** -- requests arrive on their own schedule whether or not
earlier ones finished, so queueing actually builds -- and (b)
**replayable** -- the same seed produces byte-identical traces, so a
latency regression is a code change, not a traffic change.

:func:`generate_trace` draws heavy-tailed (Pareto) inter-arrival gaps
from a seeded generator and normalizes them so the *mean* rate equals
``rate_rps`` while bursts well above it still occur -- the shape of
real inference traffic, and exactly the regime where deadline batching
earns its keep.  Arrival times are rounded to nanoseconds and each
entry carries an ``input_seed``, so the full request stream (timing
*and* payloads) round-trips through JSONL byte-for-byte
(:func:`trace_to_jsonl` / :func:`load_trace`).

:func:`run_loadgen` replays a trace against an in-process
:class:`~repro.serve.server.ModelServer` (or any object with an async
``infer``), keeps the open-loop contract with one task per arrival,
and folds the structured responses into a :class:`LoadReport`
(p50/p99, throughput, refusals) ready for ``BENCH_serve.json``.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.errors import ServeError

__all__ = ["LoadGenConfig", "TraceEntry", "Trace", "LoadReport",
           "generate_trace",
           "trace_to_jsonl", "trace_from_jsonl", "load_trace", "save_trace",
           "run_loadgen"]


@dataclass
class LoadGenConfig:
    """Shape of one synthetic load run (everything the trace derives from)."""

    seed: int = 0
    n_requests: int = 100
    rate_rps: float = 200.0
    alpha: float = 1.5  # Pareto tail index; smaller = burstier
    deadline_ms: float = 1000.0
    model: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": int(self.seed), "n_requests": int(self.n_requests),
            "rate_rps": float(self.rate_rps), "alpha": float(self.alpha),
            "deadline_ms": float(self.deadline_ms), "model": self.model,
        }


@dataclass
class TraceEntry:
    """One scheduled request: when it arrives and what it carries."""

    index: int
    arrival_s: float  # offset from load start, seconds
    input_seed: int
    deadline_ms: float
    model: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "index": int(self.index), "arrival_s": self.arrival_s,
            "input_seed": int(self.input_seed),
            "deadline_ms": float(self.deadline_ms),
        }
        if self.model is not None:
            record["model"] = self.model
        return record


class Trace(List[TraceEntry]):
    """A request schedule plus the generator header it came from.

    Behaves exactly like ``list[TraceEntry]``; ``config`` carries the
    raw header dict so a loaded trace re-saves byte-identically even
    when the saver never knew the original :class:`LoadGenConfig`.
    """

    config: Optional[Dict[str, Any]] = None


def generate_trace(config: LoadGenConfig) -> Trace:
    """Seeded heavy-tailed open-loop arrival schedule.

    Gaps are ``(pareto(alpha) + 1) * scale`` with ``scale`` chosen so
    the mean gap is ``1 / rate_rps`` (the Pareto-plus-one mean is
    ``alpha / (alpha - 1)``); arrivals are cumulative sums rounded to
    9 decimals so the JSONL round trip is byte-exact.
    """
    if config.n_requests < 1:
        raise ServeError(f"n_requests must be >= 1, got {config.n_requests}")
    if config.rate_rps <= 0:
        raise ServeError(f"rate_rps must be > 0, got {config.rate_rps}")
    if config.alpha <= 1.0:
        raise ServeError(
            f"alpha must be > 1 for a finite mean gap, got {config.alpha}")
    rng = np.random.default_rng(int(config.seed))
    mean_gap = 1.0 / float(config.rate_rps)
    scale = mean_gap / (config.alpha / (config.alpha - 1.0))
    gaps = (rng.pareto(config.alpha, size=config.n_requests) + 1.0) * scale
    gaps[0] = 0.0  # first request fires at t=0
    arrivals = np.cumsum(gaps)
    seeds = rng.integers(0, 2**31 - 1, size=config.n_requests)
    trace = Trace(
        TraceEntry(index=i, arrival_s=round(float(arrivals[i]), 9),
                   input_seed=int(seeds[i]),
                   deadline_ms=float(config.deadline_ms),
                   model=config.model)
        for i in range(config.n_requests)
    )
    trace.config = config.to_dict()
    return trace


# ------------------------------------------------------------------ trace IO
def trace_to_jsonl(trace: Sequence[TraceEntry],
                   config: Optional[LoadGenConfig] = None) -> str:
    """Serialize a trace (header line + one line per request).

    ``config`` defaults to the trace's own carried header (see
    :class:`Trace`), so generate -> save and load -> save round trips
    are byte-identical without threading the config by hand.
    """
    header = config.to_dict() if config is not None \
        else getattr(trace, "config", None)
    lines = [json.dumps({"trace": "repro-loadgen-v1", "config": header},
                        sort_keys=True)]
    lines.extend(json.dumps(entry.to_dict(), sort_keys=True)
                 for entry in trace)
    return "\n".join(lines) + "\n"


def trace_from_jsonl(text: str) -> Trace:
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ServeError("empty loadgen trace")
    header = json.loads(lines[0])
    if header.get("trace") != "repro-loadgen-v1":
        raise ServeError(
            f"not a loadgen trace (header {header.get('trace')!r})")
    entries = Trace()
    entries.config = header.get("config")
    for line in lines[1:]:
        record = json.loads(line)
        entries.append(TraceEntry(
            index=int(record["index"]), arrival_s=float(record["arrival_s"]),
            input_seed=int(record["input_seed"]),
            deadline_ms=float(record["deadline_ms"]),
            model=record.get("model")))
    return entries


def save_trace(trace: Sequence[TraceEntry], path: str,
               config: Optional[LoadGenConfig] = None) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(trace_to_jsonl(trace, config))


def load_trace(path: str) -> Trace:
    with open(path, "r", encoding="utf-8") as handle:
        return trace_from_jsonl(handle.read())


# ------------------------------------------------------------------- running
@dataclass
class LoadReport:
    """What one load run did to the server, ready for the bench store."""

    sent: int = 0
    completed: int = 0
    errors: int = 0
    refused: int = 0
    deadline_missed: int = 0
    duration_s: float = 0.0
    p50_ms: float = 0.0
    p90_ms: float = 0.0
    p99_ms: float = 0.0
    max_ms: float = 0.0
    mean_batch: float = 0.0
    throughput_rps: float = 0.0
    error_kinds: Dict[str, int] = field(default_factory=dict)

    def metrics(self) -> Dict[str, float]:
        """Flat numeric dict for ``BenchStore.append``."""
        return {
            "throughput_rps": round(self.throughput_rps, 3),
            "latency_p50_ms": round(self.p50_ms, 3),
            "latency_p99_ms": round(self.p99_ms, 3),
            "mean_batch": round(self.mean_batch, 3),
            "completed_frac": round(self.completed / self.sent, 4)
            if self.sent else 0.0,
        }

    def to_table(self) -> str:
        rows = [
            ("sent", str(self.sent)),
            ("completed", str(self.completed)),
            ("refused", str(self.refused)),
            ("errors", str(self.errors)),
            ("deadline missed", str(self.deadline_missed)),
            ("duration", f"{self.duration_s:.3f} s"),
            ("throughput", f"{self.throughput_rps:.1f} req/s"),
            ("latency p50", f"{self.p50_ms:.2f} ms"),
            ("latency p90", f"{self.p90_ms:.2f} ms"),
            ("latency p99", f"{self.p99_ms:.2f} ms"),
            ("latency max", f"{self.max_ms:.2f} ms"),
            ("mean batch", f"{self.mean_batch:.2f}"),
        ]
        if self.error_kinds:
            kinds = ", ".join(f"{k}={n}" for k, n in
                              sorted(self.error_kinds.items()))
            rows.append(("error kinds", kinds))
        width = max(len(label) for label, _ in rows)
        return "\n".join(f"{label:<{width}}  {value}"
                         for label, value in rows)


def summarize_responses(responses: Iterable[Any],
                        duration_s: float) -> LoadReport:
    """Fold structured :class:`InferenceResponse`-likes into a report."""
    report = LoadReport(duration_s=float(duration_s))
    latencies: List[float] = []
    batches: List[float] = []
    for response in responses:
        report.sent += 1
        if response is None:
            report.errors += 1
            report.error_kinds["lost"] = \
                report.error_kinds.get("lost", 0) + 1
            continue
        if getattr(response, "deadline_missed", False):
            report.deadline_missed += 1
        if getattr(response, "ok", False):
            report.completed += 1
            latencies.append(float(response.latency_ms))
            batches.append(float(response.batch_size))
        else:
            kind = getattr(response, "error_kind", "") or "error"
            report.error_kinds[kind] = report.error_kinds.get(kind, 0) + 1
            if kind == "refused":
                report.refused += 1
            else:
                report.errors += 1
    if latencies:
        array = np.asarray(latencies)
        report.p50_ms = float(np.percentile(array, 50))
        report.p90_ms = float(np.percentile(array, 90))
        report.p99_ms = float(np.percentile(array, 99))
        report.max_ms = float(array.max())
    if batches:
        report.mean_batch = float(np.mean(batches))
    if duration_s > 0:
        report.throughput_rps = report.completed / duration_s
    return report


async def run_loadgen(server: Any, trace: Sequence[TraceEntry],
                      time_scale: float = 1.0,
                      clock: Callable[[], float] = time.monotonic,
                      sleep: Callable[[float], Any] = asyncio.sleep,
                      ) -> LoadReport:
    """Replay ``trace`` against ``server`` open-loop; return the report.

    Arrival times are honored relative to the run start regardless of
    how long earlier requests take (``time_scale`` compresses or
    stretches the schedule).  Refusals and errors are counted, never
    raised -- the generator survives a server that says no.
    """

    start = clock()

    async def _one(entry: TraceEntry) -> Any:
        delay = entry.arrival_s * time_scale - (clock() - start)
        if delay > 0:
            await sleep(delay)
        try:
            return await server.infer(
                model=entry.model, input_seed=entry.input_seed,
                deadline_ms=entry.deadline_ms,
                request_id=f"load-{entry.index}")
        except ServeError:
            return None

    tasks = [asyncio.ensure_future(_one(entry)) for entry in trace]
    responses = await asyncio.gather(*tasks)
    return summarize_responses(responses, clock() - start)
