"""Batched async serving of released (compressed) model artifacts.

The paper's attack surface is a *served* compressed model; this package
is that serving stack, end to end:

* :mod:`repro.serve.artifacts` -- released-artifact format
  (``weights.npz`` + fingerprinted ``artifact.json``) and the LRU
  :class:`ArtifactCache`;
* :mod:`repro.serve.batcher` -- :class:`DeadlineBatcher`, the pure
  deadline-coalescing kernel;
* :mod:`repro.serve.server` -- :class:`ModelServer`, the asyncio front
  end dispatching batches across a
  :class:`~repro.parallel.shards.ShardPool`;
* :mod:`repro.serve.loadgen` -- seeded heavy-tailed open-loop traffic
  with byte-replayable traces;
* :mod:`repro.serve.http` -- a stdlib HTTP/1.1 face for cross-process
  runs (``repro serve`` / ``repro loadgen``);
* :mod:`repro.serve.tracing` -- per-request span trees, SLO
  histograms, and the flight-recorder ring
  (:class:`RequestTracer`);
* :mod:`repro.serve.analyze` -- tail-latency attribution over traces
  and flight dumps (``repro analyze``).
"""

from repro.serve.analyze import (
    RequestRecord,
    analyze_requests,
    load_requests,
    render_analysis,
)
from repro.serve.artifacts import (
    ArtifactCache,
    ReleasedArtifact,
    artifact_fingerprint,
    load_artifact,
    save_artifact,
)
from repro.serve.batcher import DeadlineBatcher, QueuedRequest
from repro.serve.http import ServeHTTP, http_loadgen
from repro.serve.loadgen import (
    LoadGenConfig,
    LoadReport,
    Trace,
    TraceEntry,
    generate_trace,
    load_trace,
    run_loadgen,
    save_trace,
    trace_from_jsonl,
    trace_to_jsonl,
)
from repro.serve.server import InferenceResponse, ModelServer, ServeConfig
from repro.serve.tracing import FlightRecorder, RequestContext, RequestTracer

__all__ = [
    "RequestContext", "RequestTracer", "FlightRecorder",
    "RequestRecord", "load_requests", "analyze_requests", "render_analysis",
    "ArtifactCache", "ReleasedArtifact", "artifact_fingerprint",
    "load_artifact", "save_artifact",
    "DeadlineBatcher", "QueuedRequest",
    "ModelServer", "ServeConfig", "InferenceResponse",
    "LoadGenConfig", "LoadReport", "Trace",
    "TraceEntry", "generate_trace",
    "trace_to_jsonl", "trace_from_jsonl", "save_trace", "load_trace",
    "run_loadgen",
    "ServeHTTP", "http_loadgen",
]
