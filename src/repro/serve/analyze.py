"""Tail-latency attribution over traces and flight-recorder dumps.

The tracer (:mod:`repro.serve.tracing`) leaves two artifacts behind: a
Chrome trace with one ``serve.request`` span tree per request, and
flight-recorder JSONL dumps of the requests leading up to an alert or
crash.  ``repro analyze <path>`` reads either one back into uniform
:class:`RequestRecord` rows and answers the on-call questions:

* **where does the time go** -- per-stage latency percentiles
  (admission / queue / batch / infer), whose stage means sum back to
  the end-to-end mean because the stages tile each request exactly;
* **which requests are the tail** -- the top-K slowest with their
  stage breakdown, so a queue-dominated p99 reads differently from a
  compute-dominated one;
* **queueing or compute** -- the aggregate split of wall time spent
  waiting for dispatch vs. inside the shard handler;
* **which artifact is slow** -- per-model percentile rows.

Everything is stdlib + exact arithmetic on the recorded numbers; the
same loader backs the CLI and the tests.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.errors import ServeError
from repro.serve.tracing import FLIGHT_FORMAT, REQUEST_SPAN

__all__ = ["RequestRecord", "load_requests", "load_flight_dump",
           "load_chrome_trace", "analyze_requests", "render_analysis"]

#: Stage keys in pipeline order (the tiling stages, then the overlay).
STAGE_KEYS = ("admission_ms", "queue_ms", "batch_ms", "infer_ms")


@dataclass
class RequestRecord:
    """One analyzed request, whichever artifact it was read from."""

    request_id: str
    model: str = ""
    outcome: str = "ok"
    shard: int = -1
    batch_size: int = 0
    latency_ms: float = 0.0
    admission_ms: Optional[float] = None
    queue_ms: Optional[float] = None
    batch_ms: Optional[float] = None
    infer_ms: Optional[float] = None

    @property
    def ok(self) -> bool:
        return self.outcome == "ok"

    def stage(self, key: str) -> Optional[float]:
        return getattr(self, key)


# ---------------------------------------------------------------------------
# Loaders
# ---------------------------------------------------------------------------

def load_flight_dump(path: os.PathLike) -> List[RequestRecord]:
    """Read a flight-recorder JSONL dump (header line + request lines)."""
    records: List[RequestRecord] = []
    with open(path, "r", encoding="utf-8") as handle:
        header_line = handle.readline()
        try:
            header = json.loads(header_line)
        except ValueError as exc:
            raise ServeError(f"{os.fspath(path)}: not a flight dump: {exc}")
        if header.get("flight") != FLIGHT_FORMAT:
            raise ServeError(
                f"{os.fspath(path)}: unknown flight format "
                f"{header.get('flight')!r} (expected {FLIGHT_FORMAT!r})")
        for line_no, line in enumerate(handle, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except ValueError as exc:
                raise ServeError(
                    f"{os.fspath(path)}:{line_no}: bad record: {exc}")
            records.append(RequestRecord(
                request_id=str(data.get("request_id", "")),
                model=str(data.get("model", "")),
                outcome=str(data.get("outcome", "ok")),
                shard=int(data.get("shard", -1)),
                batch_size=int(data.get("batch_size", 0)),
                latency_ms=float(data.get("latency_ms", 0.0)),
                **{key: (float(data[key]) if key in data else None)
                   for key in STAGE_KEYS},
            ))
    return records


def load_chrome_trace(path: os.PathLike) -> List[RequestRecord]:
    """Rebuild request records from a ``--trace-out`` Chrome trace.

    Groups ``ph: "X"`` events by their ``args.request_id``: the
    ``serve.request`` root carries identity/outcome/latency, the
    ``serve.request.<stage>`` children carry the stage durations.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except ValueError as exc:
        raise ServeError(f"{os.fspath(path)}: not a chrome trace: {exc}")
    events = payload.get("traceEvents", [])
    by_request: Dict[str, RequestRecord] = {}
    order: List[str] = []
    for event in events:
        if event.get("ph") != "X":
            continue
        name = str(event.get("name", ""))
        if not name.startswith(REQUEST_SPAN):
            continue
        args = event.get("args", {}) or {}
        request_id = str(args.get("request_id", ""))
        if not request_id:
            continue
        record = by_request.get(request_id)
        if record is None:
            record = by_request[request_id] = RequestRecord(request_id)
            order.append(request_id)
        duration_ms = float(event.get("dur", 0.0)) / 1e3
        if name == REQUEST_SPAN:
            record.model = str(args.get("model", ""))
            record.outcome = str(args.get("outcome", "ok"))
            record.shard = int(args.get("shard", -1))
            record.batch_size = int(args.get("batch_size", 0))
            record.latency_ms = float(args.get("latency_ms", duration_ms))
        else:
            stage = name[len(REQUEST_SPAN) + 1:]  # admission/queue/...
            key = f"{stage}_ms"
            if key in STAGE_KEYS:
                setattr(record, key, duration_ms)
    return [by_request[request_id] for request_id in order]


def load_requests(path: os.PathLike) -> List[RequestRecord]:
    """Auto-detect flight dump vs Chrome trace by the first bytes."""
    with open(path, "r", encoding="utf-8") as handle:
        head = handle.read(512).lstrip()
    if not head:
        raise ServeError(f"{os.fspath(path)}: empty file")
    if f'"{FLIGHT_FORMAT}"' in head.splitlines()[0]:
        return load_flight_dump(path)
    return load_chrome_trace(path)


# ---------------------------------------------------------------------------
# Statistics
# ---------------------------------------------------------------------------

def _percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over the exact sample (no interpolation)."""
    if not values:
        return float("nan")
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def _stat_row(values: Sequence[float]) -> Dict[str, float]:
    if not values:
        return {"count": 0, "mean": float("nan"), "p50": float("nan"),
                "p90": float("nan"), "p99": float("nan"),
                "max": float("nan")}
    return {
        "count": len(values),
        "mean": sum(values) / len(values),
        "p50": _percentile(values, 0.50),
        "p90": _percentile(values, 0.90),
        "p99": _percentile(values, 0.99),
        "max": max(values),
    }


def analyze_requests(records: Sequence[RequestRecord],
                     top: int = 5) -> Dict[str, Any]:
    """The full attribution report as plain data (rendered separately).

    Keys: ``stages`` (per-stage stat rows, ``e2e`` last -- the tiling
    stages' means sum to the ``e2e`` mean up to refused requests that
    never queued), ``slowest`` (top-K by latency), ``split``
    (queue-wait vs compute vs other fractions of total wall time),
    ``models`` (per-artifact stat rows), ``outcomes`` (tally by
    outcome), and ``count``.
    """
    if not records:
        raise ServeError("no request records to analyze")
    top = max(0, int(top))

    stages: Dict[str, Dict[str, float]] = {}
    for key in STAGE_KEYS:
        values = [r.stage(key) for r in records if r.stage(key) is not None]
        stages[key] = _stat_row([float(v) for v in values])
    stages["e2e"] = _stat_row([r.latency_ms for r in records])

    slowest = sorted(records, key=lambda r: r.latency_ms, reverse=True)[:top]

    total_wall = sum(r.latency_ms for r in records)
    queue_wait = sum((r.admission_ms or 0.0) + (r.queue_ms or 0.0)
                     for r in records)
    compute = sum(r.infer_ms or 0.0 for r in records)
    other = max(0.0, total_wall - queue_wait - compute)
    split = {
        "total_ms": total_wall,
        "queue_wait_ms": queue_wait,
        "compute_ms": compute,
        "other_ms": other,
        "queue_wait_frac": queue_wait / total_wall if total_wall else 0.0,
        "compute_frac": compute / total_wall if total_wall else 0.0,
    }

    models: Dict[str, Dict[str, float]] = {}
    for model in sorted({r.model for r in records}):
        latencies = [r.latency_ms for r in records if r.model == model]
        models[model or "<unknown>"] = _stat_row(latencies)

    outcomes: Dict[str, int] = {}
    for record in records:
        outcomes[record.outcome] = outcomes.get(record.outcome, 0) + 1

    return {"count": len(records), "stages": stages, "slowest": slowest,
            "split": split, "models": models, "outcomes": outcomes}


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

def _fmt(value: float) -> str:
    if isinstance(value, float) and math.isnan(value):
        return "-"
    return f"{value:.3f}" if isinstance(value, float) else str(value)


def _table(headers: Sequence[str],
           rows: Sequence[Sequence[Any]]) -> List[str]:
    cells = [[str(h) for h in headers]] + \
        [[_fmt(c) if isinstance(c, float) else str(c) for c in row]
         for row in rows]
    widths = [max(len(row[i]) for row in cells)
              for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(width) if i == 0
                               else cell.rjust(width)
                               for i, (cell, width)
                               in enumerate(zip(row, widths))))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return lines


def render_analysis(report: Mapping[str, Any], source: str = "") -> str:
    """Human-readable report text for ``repro analyze``."""
    lines: List[str] = []
    title = f"request analysis: {report['count']} requests"
    if source:
        title += f"  ({source})"
    lines.append(title)
    outcomes = ", ".join(f"{name}={count}" for name, count
                         in sorted(report["outcomes"].items()))
    lines.append(f"outcomes: {outcomes}")
    lines.append("")

    lines.append("latency by stage (ms):")
    stage_rows = []
    for key, row in report["stages"].items():
        label = key[:-3] if key.endswith("_ms") else key
        stage_rows.append([label, int(row["count"]), row["mean"],
                           row["p50"], row["p90"], row["p99"], row["max"]])
    lines.extend(_table(
        ["stage", "count", "mean", "p50", "p90", "p99", "max"], stage_rows))
    lines.append("")

    split = report["split"]
    lines.append(
        f"queue-wait vs compute: {split['queue_wait_frac']:.1%} waiting, "
        f"{split['compute_frac']:.1%} computing "
        f"(of {split['total_ms']:.1f} ms total request wall time)")
    lines.append("")

    if report["slowest"]:
        lines.append(f"top {len(report['slowest'])} slowest requests (ms):")
        slow_rows = []
        for record in report["slowest"]:
            slow_rows.append([
                record.request_id, record.outcome, record.latency_ms,
                record.admission_ms if record.admission_ms is not None
                else float("nan"),
                record.queue_ms if record.queue_ms is not None
                else float("nan"),
                record.infer_ms if record.infer_ms is not None
                else float("nan"),
                record.batch_size,
            ])
        lines.extend(_table(
            ["request", "outcome", "latency", "admission", "queue",
             "infer", "batch"], slow_rows))
        lines.append("")

    lines.append("latency by artifact (ms):")
    model_rows = [[model, int(row["count"]), row["mean"], row["p50"],
                   row["p99"]] for model, row in report["models"].items()]
    lines.extend(_table(["artifact", "count", "mean", "p50", "p99"],
                        model_rows))
    return "\n".join(lines) + "\n"
