"""Released-model artifacts: the on-disk unit the serving layer loads.

The paper's threat model starts where training ends: a compressed model
is *released* and strangers query it.  An artifact directory is that
released unit -- the weights plus enough metadata to rebuild the exact
module and to prove what it is:

``weights.npz``
    The state dict (:func:`repro.nn.save_state` format), quantized or
    float.

``artifact.json``
    Builder name + kwargs (resolved against
    :mod:`repro.models.registry`), the input shape served, optional
    quantization metadata (bits/method), the owning
    :class:`~repro.telemetry.events.RunManifest`, and the artifact
    **fingerprint** -- a stable hash over the manifest-style config
    fingerprint *and* a digest of the weight bytes, so two artifacts
    with the same architecture but different weights never collide.

:class:`ArtifactCache` keeps loaded artifacts in a bounded LRU keyed by
that fingerprint; an evicted artifact reloads transparently on the next
request (``serve.cache_*`` counters make hit rates visible on the live
``/metrics`` exporter).  Corrupt or tampered artifacts fail loudly with
:class:`ServeError` -- a serving stack must never run weights it cannot
verify.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple, Union

import numpy as np

from repro.errors import ServeError
from repro.nn.module import Module
from repro.telemetry.events import RunManifest, config_fingerprint
from repro.telemetry.metrics import default_registry

PathLike = Union[str, os.PathLike]

ARTIFACT_FORMAT = "repro-artifact-v1"
WEIGHTS_FILE = "weights.npz"
META_FILE = "artifact.json"

__all__ = ["ReleasedArtifact", "save_artifact", "load_artifact",
           "artifact_fingerprint", "ArtifactCache"]


def _weights_digest(state: Mapping[str, np.ndarray]) -> str:
    """sha256 over (name, dtype, shape, bytes) of every entry, sorted."""
    digest = hashlib.sha256()
    for name in sorted(state):
        array = np.ascontiguousarray(state[name])
        digest.update(name.encode("utf-8"))
        digest.update(str(array.dtype).encode("utf-8"))
        digest.update(str(array.shape).encode("utf-8"))
        digest.update(array.tobytes())
    return digest.hexdigest()


def artifact_fingerprint(model_name: str, model_kwargs: Mapping[str, Any],
                         state: Mapping[str, np.ndarray]) -> str:
    """Identity of one released artifact: config x weights."""
    return config_fingerprint({
        "model": model_name,
        "model_kwargs": dict(model_kwargs),
        "weights_sha256": _weights_digest(state),
    })


@dataclass
class ReleasedArtifact:
    """Metadata half of one released artifact (weights live in the npz)."""

    path: str
    model_name: str
    model_kwargs: Dict[str, Any]
    input_shape: Tuple[int, ...]
    fingerprint: str
    quantization: Optional[Dict[str, Any]] = None
    manifest: Dict[str, Any] = field(default_factory=dict)

    @property
    def run_id(self) -> str:
        return str(self.manifest.get("run_id", ""))


def save_artifact(model: Module, path: PathLike, model_name: str,
                  model_kwargs: Optional[Mapping[str, Any]] = None,
                  input_shape: Optional[Tuple[int, ...]] = None,
                  quantization: Optional[Mapping[str, Any]] = None,
                  seed: Optional[int] = None,
                  **extra: Any) -> ReleasedArtifact:
    """Write ``model`` as a released artifact directory at ``path``.

    ``model_name`` must be resolvable via
    :func:`repro.models.registry.build_model` with ``model_kwargs`` so
    a loader can rebuild the architecture without the producing code.
    ``input_shape`` is the CHW shape of one serving input (recorded so
    load generators can synthesize traffic without out-of-band
    knowledge).
    """
    from repro.models.registry import available_models

    if model_name not in available_models():
        raise ServeError(
            f"model {model_name!r} is not in the registry "
            f"({', '.join(available_models())}); artifacts must be "
            f"rebuildable by name")
    model_kwargs = dict(model_kwargs or {})
    state = model.state_dict()
    fingerprint = artifact_fingerprint(model_name, model_kwargs, state)
    manifest = RunManifest.create(
        seed=seed,
        config={"model": model_name, "model_kwargs": model_kwargs,
                "quantization": dict(quantization) if quantization else None},
        telemetry={},  # artifact identity, not a metrics snapshot
        artifact_fingerprint=fingerprint,
        **extra,
    )
    os.makedirs(path, exist_ok=True)
    np.savez(os.path.join(os.fspath(path), WEIGHTS_FILE), **state)
    meta = {
        "format": ARTIFACT_FORMAT,
        "model": model_name,
        "model_kwargs": model_kwargs,
        "input_shape": list(input_shape) if input_shape is not None else None,
        "fingerprint": fingerprint,
        "quantization": dict(quantization) if quantization else None,
        "manifest": manifest.to_dict(),
    }
    with open(os.path.join(os.fspath(path), META_FILE), "w",
              encoding="utf-8") as handle:
        json.dump(meta, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return ReleasedArtifact(
        path=os.fspath(path), model_name=model_name,
        model_kwargs=model_kwargs,
        input_shape=tuple(input_shape) if input_shape is not None else (),
        fingerprint=fingerprint,
        quantization=dict(quantization) if quantization else None,
        manifest=manifest.to_dict(),
    )


def load_artifact(path: PathLike,
                  verify: bool = True) -> Tuple[Module, ReleasedArtifact]:
    """Rebuild the module from an artifact directory.

    Raises :class:`ServeError` for anything short of a healthy
    artifact: missing files, unparseable metadata, unknown builder, a
    weights archive that does not load, or (with ``verify``) weights
    whose digest no longer matches the recorded fingerprint.
    """
    from repro.models.registry import build_model

    root = os.fspath(path)
    meta_path = os.path.join(root, META_FILE)
    weights_path = os.path.join(root, WEIGHTS_FILE)
    try:
        with open(meta_path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
    except (OSError, ValueError) as exc:
        raise ServeError(f"cannot read artifact metadata {meta_path}: {exc}")
    if meta.get("format") != ARTIFACT_FORMAT:
        raise ServeError(
            f"{meta_path}: unknown artifact format {meta.get('format')!r} "
            f"(expected {ARTIFACT_FORMAT!r})")
    for key in ("model", "fingerprint"):
        if key not in meta:
            raise ServeError(f"{meta_path}: missing required field {key!r}")
    try:
        with np.load(weights_path) as archive:
            state = {key: archive[key] for key in archive.files}
    except Exception as exc:
        raise ServeError(f"cannot load artifact weights {weights_path}: "
                         f"{exc!r}")
    model_kwargs = dict(meta.get("model_kwargs") or {})
    if verify:
        expected = meta["fingerprint"]
        actual = artifact_fingerprint(meta["model"], model_kwargs, state)
        if actual != expected:
            raise ServeError(
                f"{root}: weights digest mismatch (recorded {expected}, "
                f"recomputed {actual}); artifact is corrupt or tampered")
    try:
        model = build_model(meta["model"], **model_kwargs)
        model.load_state_dict(state)
    except Exception as exc:
        raise ServeError(f"cannot rebuild model {meta['model']!r} from "
                         f"{root}: {exc!r}")
    model.eval()
    shape = meta.get("input_shape")
    artifact = ReleasedArtifact(
        path=root, model_name=meta["model"], model_kwargs=model_kwargs,
        input_shape=tuple(shape) if shape else (),
        fingerprint=meta["fingerprint"],
        quantization=meta.get("quantization"),
        manifest=dict(meta.get("manifest") or {}),
    )
    return model, artifact


class ArtifactCache:
    """Bounded LRU of loaded artifacts, keyed by artifact fingerprint.

    ``get(path)`` loads (or returns the cached) ``(model, artifact)``
    pair; the least-recently-used entry is evicted past ``capacity``
    and transparently reloaded from disk on its next request.  Counters
    ``serve.cache_hits`` / ``serve.cache_misses`` /
    ``serve.cache_evictions`` land in the default registry, and the
    same tallies are kept per-instance (:attr:`hits` / :attr:`misses`
    / :attr:`evictions`, summarized by :meth:`stats`) so a cache living
    inside a forked shard still reports accurately -- shard replies
    ship the counter deltas back, but the instance numbers are the
    ground truth the owner can always read directly.
    """

    def __init__(self, capacity: int = 2) -> None:
        if capacity < 1:
            raise ServeError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[str, Tuple[Module, ReleasedArtifact]]" = \
            OrderedDict()
        self._by_path: Dict[str, str] = {}  # abspath -> fingerprint

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, float]:
        """Hit/miss/eviction tallies plus the derived hit rate."""
        lookups = self.hits + self.misses
        return {
            "hits": float(self.hits),
            "misses": float(self.misses),
            "evictions": float(self.evictions),
            "lookups": float(lookups),
            "hit_rate": self.hits / lookups if lookups else 0.0,
        }

    def fingerprints(self) -> Tuple[str, ...]:
        """Cached fingerprints, least- to most-recently used."""
        return tuple(self._entries)

    def get(self, path: PathLike) -> Tuple[Module, ReleasedArtifact]:
        registry = default_registry()
        abspath = os.path.abspath(os.fspath(path))
        key = self._by_path.get(abspath)
        if key is not None and key in self._entries:
            self.hits += 1
            registry.counter("serve.cache_hits").inc()
            self._entries.move_to_end(key)
            return self._entries[key]
        self.misses += 1
        registry.counter("serve.cache_misses").inc()
        model, artifact = load_artifact(abspath)
        self._by_path[abspath] = artifact.fingerprint
        self._entries[artifact.fingerprint] = (model, artifact)
        self._entries.move_to_end(artifact.fingerprint)
        while len(self._entries) > self.capacity:
            evicted, _ = self._entries.popitem(last=False)
            self.evictions += 1
            registry.counter("serve.cache_evictions").inc()
            self._by_path = {p: f for p, f in self._by_path.items()
                             if f != evicted}
        return self._entries[artifact.fingerprint]
