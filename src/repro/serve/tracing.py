"""Per-request tracing, SLO accounting, and the flight recorder.

PR 7 made the serving path observable in *aggregate* (throughput
counters, latency histograms).  This module makes individual requests
observable: every admitted request carries a :class:`RequestContext`
from admission through :class:`~repro.serve.batcher.DeadlineBatcher`
coalescing, :class:`~repro.parallel.shards.ShardPool` dispatch, and the
compiled-graph replay, and on completion the :class:`RequestTracer`

* emits one **span tree** per request into the active PR-6
  :class:`~repro.telemetry.trace.TraceRecorder` -- a ``serve.request``
  parent with contiguous ``admission`` / ``queue`` / ``batch`` children
  (plus an ``infer`` grandchild for the shard round-trip), each request
  on its own Chrome-trace lane so overlapping requests stay readable;
* observes per-stage latency into **SLO histograms**
  (``serve.slo.{admission,queue,infer,latency}_ms``,
  :class:`~repro.telemetry.slo.SloHistogram`) whose bucket vectors
  merge exactly across shard workers and whose ``latency_ms`` target
  feeds the ``latency_slo`` burn-rate alert rule;
* appends a compact record to the bounded in-memory **flight
  recorder**, a ring of the last N requests (id, artifact, shape,
  per-stage timings, outcome) that :meth:`RequestTracer.dump_flight`
  writes to JSONL when an alert fires or a shard crashes -- the
  post-mortem ``repro analyze`` reads.

Everything here is clock-injected: the tracer converts the server's
(possibly fake) clock into the recorder's timebase with a one-time
offset captured at attachment, so property tests can drive arrival
patterns deterministically and still assert span monotonicity.
"""

from __future__ import annotations

import heapq
import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.telemetry.metrics import MetricsRegistry, default_registry
from repro.telemetry.trace import TraceRecorder

__all__ = ["RequestContext", "FlightRecorder", "RequestTracer",
           "FLIGHT_FORMAT", "LANE_TID_BASE", "REQUEST_SPAN",
           "STAGE_SPANS"]

#: Header tag of a flight-recorder JSONL dump.
FLIGHT_FORMAT = "repro-flight-v1"

#: Synthetic Chrome-trace tid for request lane 0; real thread idents on
#: Linux are pointers (far larger), so these never collide.
LANE_TID_BASE = 1000

REQUEST_SPAN = "serve.request"
STAGE_SPANS = ("serve.request.admission", "serve.request.queue",
               "serve.request.batch", "serve.request.infer")


@dataclass
class RequestContext:
    """One request's identity and stage stamps, minted at admission.

    Timestamps are in the server's clock domain (``t_*`` fields,
    seconds); a stage that never happened stays ``None`` (a refused
    request has no dispatch stamp).  The context rides the batcher's
    opaque ``context`` slot next to the response future, so it crosses
    the coalescing queue without the batcher knowing about tracing.
    """

    request_id: str
    model: str
    trace_id: str = ""
    lane: int = -1
    input_shape: Tuple[int, ...] = ()
    t_admit: float = 0.0
    t_submit: Optional[float] = None
    t_dispatch: Optional[float] = None
    t_done: Optional[float] = None
    batch_size: int = 0
    shard: int = -1
    ok: bool = False
    error_kind: str = ""
    infer_s: float = 0.0

    # ------------------------------------------------------------ derived ms
    def stage_ms(self) -> Dict[str, float]:
        """Per-stage durations in milliseconds (only stages that ran).

        ``admission`` + ``queue`` + ``batch`` tile ``[t_admit, t_done]``
        exactly, so they sum to ``latency_ms`` by construction; a
        request that failed before a stage simply lacks that key.
        """
        stages: Dict[str, float] = {}
        if self.t_done is None:
            return stages
        if self.t_submit is not None:
            stages["admission_ms"] = (self.t_submit - self.t_admit) * 1e3
            end_queue = self.t_dispatch if self.t_dispatch is not None \
                else self.t_done
            stages["queue_ms"] = (end_queue - self.t_submit) * 1e3
        if self.t_dispatch is not None:
            stages["batch_ms"] = (self.t_done - self.t_dispatch) * 1e3
            stages["infer_ms"] = self.infer_s * 1e3
        stages["latency_ms"] = (self.t_done - self.t_admit) * 1e3
        return stages

    def to_record(self) -> Dict[str, Any]:
        """Flight-recorder line: JSON-ready, one request per line."""
        record: Dict[str, Any] = {
            "request_id": self.request_id,
            "model": self.model,
            "input_shape": list(self.input_shape),
            "ok": self.ok,
            "outcome": "ok" if self.ok else (self.error_kind or "error"),
            "shard": self.shard,
            "batch_size": self.batch_size,
            "t_admit": self.t_admit,
        }
        for key, value in self.stage_ms().items():
            record[key] = round(value, 4)
        return record


class FlightRecorder:
    """Bounded ring of the last N finished-request records.

    Cheap enough to run always (a deque append per request); the value
    is at dump time -- when an alert fires or a shard dies, the ring
    holds exactly the requests leading up to the event.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            from repro.errors import ServeError
            raise ServeError(f"flight capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._ring: deque = deque(maxlen=self.capacity)
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._ring)

    def record(self, record: Dict[str, Any]) -> None:
        with self._lock:
            self._ring.append(record)

    def records(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._ring)

    def dump(self, path: os.PathLike, reason: str = "manual",
             **extra: Any) -> int:
        """Write header + one JSON line per request; returns line count."""
        records = self.records()
        header = {"flight": FLIGHT_FORMAT, "reason": reason,
                  "capacity": self.capacity, "records": len(records)}
        header.update(extra)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        return len(records)


class RequestTracer:
    """Stage observer for the serving path: spans + SLOs + flight ring.

    Args:
        recorder: the span sink; ``None`` (no ``--trace-out``) skips
            span emission but keeps SLO histograms and the flight ring.
        clock: the *server's* monotonic clock (injectable).  Stage
            stamps are taken with it; at construction the tracer
            measures the offset between this clock and the recorder's
            ``perf_counter`` origin, so emitted spans land on the
            recorder timeline even under a simulated clock.
        slo_ms: end-to-end latency target; responses above it count as
            breaches on ``serve.slo.latency_ms`` (the burn-rate rule's
            numerator).
        flight_capacity: ring size of the flight recorder.
        flight_dir: where :meth:`dump_flight` writes JSONL dumps; with
            ``None`` dumps are skipped (the ring still fills and stays
            readable in-process).
        registry: metrics sink, the process default when omitted.
    """

    def __init__(self, recorder: Optional[TraceRecorder] = None,
                 clock: Callable[[], float] = time.monotonic,
                 slo_ms: float = 250.0,
                 flight_capacity: int = 256,
                 flight_dir: Optional[os.PathLike] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.recorder = recorder
        self.clock = clock
        self.slo_ms = float(slo_ms)
        self.flight = FlightRecorder(flight_capacity)
        self.flight_dir = os.fspath(flight_dir) if flight_dir is not None \
            else None
        self.registry = registry if registry is not None \
            else default_registry()
        self._offset = 0.0
        if recorder is not None:
            # recorder timestamps are perf_counter() - recorder._origin;
            # server stamps are clock().  One offset converts between
            # the domains; captured once so a fake clock stays affine.
            self._offset = (time.perf_counter() - recorder._origin) \
                - clock()
        self._lock = threading.Lock()
        self._free_lanes: List[int] = []
        self._next_lane = 0
        self._labeled: set = set()
        self._dumped_reasons: set = set()
        self._dump_seq = 0
        # SLO histograms are created eagerly so a zero-traffic snapshot
        # still shows the serving SLO surface (and its target); the
        # references are cached because finish() is on every request's
        # path and the registry accessor takes a lock per lookup
        self._slo_latency = self.registry.slo("serve.slo.latency_ms",
                                              slo=self.slo_ms)
        self._slo_stages = {
            f"{stage}_ms": self.registry.slo(f"serve.slo.{stage}_ms")
            for stage in ("admission", "queue", "infer")
        }

    # ----------------------------------------------------------------- lanes
    def _acquire_lane(self) -> int:
        with self._lock:
            if self._free_lanes:
                return heapq.heappop(self._free_lanes)
            lane = self._next_lane
            self._next_lane += 1
            return lane

    def _release_lane(self, lane: int) -> None:
        if lane < 0:
            return
        with self._lock:
            heapq.heappush(self._free_lanes, lane)

    # ----------------------------------------------------------- stage hooks
    def admit(self, request_id: str, model: str,
              input_shape: Tuple[int, ...] = ()) -> RequestContext:
        """Mint the per-request context at the admission boundary."""
        recorder = self.recorder
        ctx = RequestContext(
            request_id=str(request_id), model=str(model),
            trace_id=recorder.trace_id if recorder is not None else "",
            lane=self._acquire_lane() if recorder is not None else -1,
            input_shape=tuple(int(d) for d in input_shape),
            t_admit=self.clock(),
        )
        return ctx

    def mark_submitted(self, ctx: Optional[RequestContext]) -> None:
        """The request entered the batcher queue."""
        if ctx is not None:
            ctx.t_submit = self.clock()

    def mark_dispatched(self, ctx: Optional[RequestContext],
                        batch_size: int = 0) -> None:
        """The request left the queue inside a dispatched batch."""
        if ctx is not None:
            ctx.t_dispatch = self.clock()
            ctx.batch_size = int(batch_size)

    def finish(self, ctx: Optional[RequestContext], ok: bool,
               error_kind: str = "", shard: int = -1,
               batch_size: Optional[int] = None,
               infer_s: float = 0.0) -> None:
        """Close the request: spans, SLO observations, flight record."""
        if ctx is None or ctx.t_done is not None:
            return
        ctx.t_done = self.clock()
        ctx.ok = bool(ok)
        ctx.error_kind = str(error_kind)
        ctx.shard = int(shard)
        if batch_size is not None:
            ctx.batch_size = int(batch_size)
        ctx.infer_s = float(infer_s)
        stages = ctx.stage_ms()
        for key, histogram in self._slo_stages.items():
            if key in stages:
                histogram.observe(stages[key])
        self._slo_latency.observe(stages["latency_ms"])
        self.flight.record(ctx.to_record())
        self._emit_spans(ctx, stages)
        self._release_lane(ctx.lane)

    # ----------------------------------------------------------------- spans
    def _to_recorder_time(self, t: float) -> float:
        return t + self._offset

    def _emit_spans(self, ctx: RequestContext,
                    stages: Dict[str, float]) -> None:
        recorder = self.recorder
        if recorder is None or ctx.t_done is None:
            return
        tid = LANE_TID_BASE + max(0, ctx.lane)
        if tid not in self._labeled:
            self._labeled.add(tid)
            recorder.label_thread(tid, f"request lane {max(0, ctx.lane)}")

        def emit(name: str, start: float, end: float, depth: int,
                 parent_id: int, **attrs: Any) -> int:
            span_id = recorder.next_span_id()
            recorder.add(
                name, self._to_recorder_time(start),
                max(0.0, end - start), depth, attrs,
                span_id=span_id, parent_id=parent_id, thread_id=tid)
            return span_id

        root = emit(
            REQUEST_SPAN, ctx.t_admit, ctx.t_done, 0, 0,
            request_id=ctx.request_id, model=ctx.model,
            outcome="ok" if ctx.ok else (ctx.error_kind or "error"),
            shard=ctx.shard, batch_size=ctx.batch_size,
            latency_ms=round(stages.get("latency_ms", 0.0), 4))
        if ctx.t_submit is not None:
            emit("serve.request.admission", ctx.t_admit, ctx.t_submit,
                 1, root, request_id=ctx.request_id)
            end_queue = ctx.t_dispatch if ctx.t_dispatch is not None \
                else ctx.t_done
            emit("serve.request.queue", ctx.t_submit, end_queue,
                 1, root, request_id=ctx.request_id)
        else:
            # failed at admission: the whole request was admission
            emit("serve.request.admission", ctx.t_admit, ctx.t_done,
                 1, root, request_id=ctx.request_id)
        if ctx.t_dispatch is not None:
            batch = emit("serve.request.batch", ctx.t_dispatch, ctx.t_done,
                         1, root, request_id=ctx.request_id,
                         batch_size=ctx.batch_size)
            infer_start = max(ctx.t_dispatch, ctx.t_done - ctx.infer_s)
            emit("serve.request.infer", infer_start, ctx.t_done,
                 2, batch, request_id=ctx.request_id, shard=ctx.shard)

    # ------------------------------------------------------ flight dump path
    def dump_flight(self, reason: str,
                    once_per_reason: bool = True) -> Optional[str]:
        """Dump the flight ring to ``flight_dir`` (JSONL); returns path.

        ``once_per_reason`` latches each reason so a sustained alert
        storm produces one post-mortem, not thousands; returns ``None``
        when latched, unconfigured (no ``flight_dir``), or the ring is
        empty.
        """
        if self.flight_dir is None or not len(self.flight):
            return None
        with self._lock:
            if once_per_reason and reason in self._dumped_reasons:
                return None
            self._dumped_reasons.add(reason)
            self._dump_seq += 1
            seq = self._dump_seq
        safe = "".join(c if c.isalnum() or c in "-_" else "-"
                       for c in reason) or "dump"
        path = os.path.join(self.flight_dir, f"flight-{seq:03d}-{safe}.jsonl")
        try:
            os.makedirs(self.flight_dir, exist_ok=True)
            self.flight.dump(path, reason=reason, slo_ms=self.slo_ms)
        except OSError:
            return None  # a full disk must not take the serving path down
        self.registry.counter("serve.flight_dumps").inc()
        return path
