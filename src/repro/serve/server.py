"""Batched async model serving over released artifacts.

:class:`ModelServer` is the request path the paper's threat model
implies but the repo never had: a *released* (usually quantized) model
artifact, loaded behind a front end, answering untrusted traffic.  The
pieces, one per layer of the existing stack:

* admission + coalescing: one :class:`~repro.serve.batcher
  .DeadlineBatcher` per served model key -- requests coalesce for at
  most ``max_wait_ms`` and never dispatch past their deadline;
* execution: a :class:`~repro.parallel.shards.ShardPool` of persistent
  worker processes, each holding an :class:`~repro.serve.artifacts
  .ArtifactCache` and running inference through the PR-3 ``fast``
  backend (fused conv+bias+relu / batchnorm inference paths);
* telemetry: per-request ``serve.queue_ms`` / ``serve.infer_ms`` /
  ``serve.latency_ms`` histograms, batch-size distribution, cache and
  shard counters -- all in the default registry, hence live on the
  PR-6 ``/metrics`` exporter;
* alerting: an optional :class:`~repro.monitor.alerts.AlertEngine`
  (see :func:`repro.monitor.alerts.serving_rules`) evaluated after
  every dispatched batch, so a p99 breach or shard death fires while
  traffic is still flowing.

Operational failures are **structured responses, never exceptions**:
queue overflow refuses with ``error_kind="refused"``, a shard crash
that survives its retry budget returns ``error_kind="crash"``, an
unknown model key ``error_kind="unknown_model"``.  A load generator
(or a real client) can always distinguish "the server said no" from
"the server broke".
"""

from __future__ import annotations

import asyncio
import functools
import concurrent.futures
import itertools
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.errors import ServeError
from repro.parallel.shards import ShardPool
from repro.serve.artifacts import META_FILE, ArtifactCache
from repro.serve.batcher import DeadlineBatcher, QueuedRequest
from repro.serve.tracing import RequestContext, RequestTracer
from repro.telemetry.metrics import default_registry
from repro.telemetry.trace import get_recorder, span

__all__ = ["ServeConfig", "InferenceResponse", "ModelServer"]


@dataclass
class ServeConfig:
    """Knobs of one :class:`ModelServer` instance."""

    max_batch: int = 16
    max_wait_ms: float = 4.0
    queue_capacity: int = 512
    default_deadline_ms: float = 1000.0
    shards: int = 1
    retries: int = 1
    backend: str = "fast"
    cache_capacity: int = 2
    request_timeout_s: float = 30.0
    start_method: Optional[str] = None  # ShardPool default (fork or serial)
    compile: bool = True  # replay per-(artifact, shape) compiled forward
    #   graphs in the shards (repro.graph.infer); capture verifies
    #   bitwise against eager, any failure stays eager per shape
    trace_requests: bool = True  # per-request observability: stage spans
    #   (when a recorder is active), serve.slo.* histograms, and the
    #   flight-recorder ring (repro.serve.tracing)
    slo_ms: float = 250.0  # end-to-end latency target; responses above
    #   it count as serve.slo.latency_ms breaches (latency_slo rule)
    flight_capacity: int = 256  # flight-recorder ring size (requests)
    flight_dir: Optional[str] = None  # where alert/crash-triggered
    #   flight dumps land as JSONL; None disables dumping to disk


@dataclass
class InferenceResponse:
    """One request's structured outcome (success or failure)."""

    request_id: str
    ok: bool
    model: str = ""
    fingerprint: str = ""
    outputs: Optional[np.ndarray] = field(default=None, repr=False)
    error: str = ""
    error_kind: str = ""  # "" | refused | unknown_model | bad_request |
    #                          exception | crash | timeout | shutdown
    shard: int = -1
    batch_size: int = 0
    queue_ms: float = 0.0
    infer_ms: float = 0.0
    latency_ms: float = 0.0
    deadline_missed: bool = False

    @property
    def argmax(self) -> Optional[List[int]]:
        if self.outputs is None:
            return None
        return [int(i) for i in np.asarray(self.outputs).argmax(axis=1)]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready summary (logits omitted unless small)."""
        record: Dict[str, Any] = {
            "request_id": self.request_id, "ok": self.ok,
            "model": self.model, "fingerprint": self.fingerprint,
            "shard": self.shard, "batch_size": self.batch_size,
            "queue_ms": round(self.queue_ms, 3),
            "infer_ms": round(self.infer_ms, 3),
            "latency_ms": round(self.latency_ms, 3),
            "deadline_missed": self.deadline_missed,
        }
        if self.ok:
            record["argmax"] = self.argmax
        else:
            record["error"] = self.error
            record["error_kind"] = self.error_kind
        return record


#: Per-shard cap on cached compiled forward programs; one entry per
#: (artifact, input shape/dtype, backend) signature, so coalesced
#: batches of varying size each get their own schedule.
_INFER_PROGRAM_CAPACITY = 16


def _make_shard_handler(cache_capacity: int,
                        backend: str) -> Callable[[Any], Any]:
    """Build the per-shard request handler (runs inside the shard).

    Module-level so :class:`ShardPool` can ship it under any start
    method; each shard owns its own :class:`ArtifactCache`, so model
    state is loaded at most ``cache_capacity`` times per shard, not per
    request.

    When the payload allows it, the first request per (artifact, input
    signature, backend) is traced at the kernel level into an
    :class:`~repro.graph.infer.InferProgram` -- capture verifies the
    replay bitwise against eager on two inputs, so compiled responses
    are exactly the eager responses.  Anything uncapturable is cached
    as "stay eager" for that signature and served the plain way.
    """
    import collections

    from repro import backend as _backend
    from repro.autograd import Tensor, no_grad
    from repro.errors import GraphError

    cache = ArtifactCache(cache_capacity)
    programs: "collections.OrderedDict" = collections.OrderedDict()

    def handle(payload: Mapping[str, Any]) -> np.ndarray:
        model, _ = cache.get(payload["artifact"])
        inputs = np.ascontiguousarray(payload["inputs"])
        backend_name = payload.get("backend", backend)

        def eager() -> np.ndarray:
            with _backend.use_backend(backend_name), no_grad():
                return np.asarray(model(Tensor(inputs)).data)

        if not payload.get("compile", False):
            return eager()
        key = (payload["artifact"], inputs.shape, str(inputs.dtype),
               backend_name)
        registry = default_registry()
        program = programs.get(key, False)
        if program is False:
            def fn(x: np.ndarray) -> np.ndarray:
                with _backend.use_backend(backend_name), no_grad():
                    return np.asarray(model(Tensor(x)).data)

            from repro.graph.infer import capture_infer
            try:
                program = capture_infer(fn, inputs)
                registry.counter("serve.infer_captures").inc()
            except GraphError:
                program = None  # remembered: this signature stays eager
                registry.counter("serve.infer_capture_failures").inc()
            programs[key] = program
            if len(programs) > _INFER_PROGRAM_CAPACITY:
                programs.popitem(last=False)
            registry.gauge("serve.infer_programs").set(
                float(sum(1 for p in programs.values() if p is not None)))
        else:
            programs.move_to_end(key)
        if program is None:
            return eager()
        try:
            outputs = program.run(inputs)
        except GraphError:
            return eager()
        registry.counter("serve.infer_replays").inc()
        return outputs

    return handle


def _read_artifact_meta(path: str) -> Dict[str, Any]:
    meta_path = os.path.join(path, META_FILE)
    try:
        with open(meta_path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError) as exc:
        raise ServeError(f"cannot read artifact metadata {meta_path}: {exc}")


class ModelServer:
    """Asyncio front end over released model artifacts.

    Args:
        artifacts: model key -> artifact directory.  The first key is
            the default model for requests that name none.
        config: serving knobs (:class:`ServeConfig`).
        alerts: optional :class:`~repro.monitor.alerts.AlertEngine`
            evaluated against the metrics registry after every batch.
        clock: monotonic time source (injectable for tests).

    Usage::

        async with ModelServer({"released": "artifacts/q4"}) as server:
            response = await server.infer(input_seed=7)
    """

    def __init__(self, artifacts: Mapping[str, os.PathLike],
                 config: Optional[ServeConfig] = None,
                 alerts: Any = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if not artifacts:
            raise ServeError("ModelServer needs at least one artifact")
        self.config = config or ServeConfig()
        self.alerts = alerts
        self.clock = clock
        self._artifacts: Dict[str, str] = {
            str(key): os.path.abspath(os.fspath(path))
            for key, path in artifacts.items()
        }
        self.default_model = next(iter(self._artifacts))
        # Read metadata eagerly: serving must fail at startup, not on
        # the first request, when an artifact is broken.
        self._meta: Dict[str, Dict[str, Any]] = {
            key: _read_artifact_meta(path)
            for key, path in self._artifacts.items()
        }
        self._batchers: Dict[str, DeadlineBatcher] = {
            key: DeadlineBatcher(
                max_batch=self.config.max_batch,
                max_wait_s=self.config.max_wait_ms / 1e3,
                capacity=self.config.queue_capacity,
                clock=clock,
            )
            for key in self._artifacts
        }
        self._ids = itertools.count()
        self._tracer: Optional[RequestTracer] = None
        self._pool: Optional[ShardPool] = None
        self._executor: Optional[concurrent.futures.ThreadPoolExecutor] = None
        self._loop_task: Optional[asyncio.Task] = None
        self._inflight: set = set()
        self._wake: Optional[asyncio.Event] = None
        self._running = False

    # ------------------------------------------------------------ lifecycle
    async def start(self) -> "ModelServer":
        if self._running:
            return self
        if self.config.trace_requests:
            # the recorder active *now* is the span sink for the whole
            # server lifetime (the CLI installs it before commands run)
            self._tracer = RequestTracer(
                recorder=get_recorder(), clock=self.clock,
                slo_ms=self.config.slo_ms,
                flight_capacity=self.config.flight_capacity,
                flight_dir=self.config.flight_dir)
        self._pool = ShardPool(
            functools.partial(_make_shard_handler, self.config.cache_capacity,
                              self.config.backend),
            shards=self.config.shards, retries=self.config.retries,
            start_method=self.config.start_method,
        )
        # Dedicated executor for the blocking shard round-trips: sharing
        # the loop's default executor with other blocking work (e.g. an
        # HTTP client driving this very server) can starve dispatch and
        # deadlock the whole request path.
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=max(2, 2 * self.config.shards),
            thread_name_prefix="serve-dispatch")
        self._wake = asyncio.Event()
        self._running = True
        self._loop_task = asyncio.ensure_future(self._dispatch_loop())
        return self

    async def close(self) -> None:
        if not self._running:
            return
        self._running = False
        self._wake.set()
        if self._loop_task is not None:
            await self._loop_task
        # refuse everything still queued, structured
        for key, batcher in self._batchers.items():
            for request in batcher.drain():
                self._finish_error(request, key, "server shutting down",
                                   "shutdown")
        if self._inflight:
            await asyncio.gather(*list(self._inflight),
                                 return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    async def __aenter__(self) -> "ModelServer":
        return await self.start()

    async def __aexit__(self, *exc: Any) -> bool:
        await self.close()
        return False

    # -------------------------------------------------------------- queries
    @property
    def shard_pool(self) -> ShardPool:
        if self._pool is None:
            raise ServeError("server is not started")
        return self._pool

    @property
    def tracer(self) -> Optional[RequestTracer]:
        """The per-request tracer (None before start or when disabled)."""
        return self._tracer

    def flight_records(self) -> List[Dict[str, Any]]:
        """The flight recorder's current ring (oldest first)."""
        if self._tracer is None:
            return []
        return self._tracer.flight.records()

    def models(self) -> Dict[str, Dict[str, Any]]:
        """Served keys with fingerprint/quantization metadata."""
        return {
            key: {
                "fingerprint": meta.get("fingerprint", ""),
                "model": meta.get("model", ""),
                "quantization": meta.get("quantization"),
                "input_shape": meta.get("input_shape"),
            }
            for key, meta in self._meta.items()
        }

    def input_shape(self, model: Optional[str] = None) -> Tuple[int, ...]:
        meta = self._meta[model or self.default_model]
        shape = meta.get("input_shape")
        if not shape:
            raise ServeError(
                f"artifact for {model or self.default_model!r} records no "
                f"input_shape; pass explicit inputs")
        return tuple(int(d) for d in shape)

    def stats(self) -> Dict[str, Any]:
        """Queue depths + shard liveness for /healthz."""
        alive = self._pool.alive() if self._pool is not None else []
        return {
            "running": self._running,
            "models": sorted(self._artifacts),
            "queued": {key: len(b) for key, b in self._batchers.items()},
            "shards_alive": int(sum(alive)),
            "shards": len(alive),
        }

    # ------------------------------------------------------------ admission
    def synthesize_input(self, seed: int,
                         model: Optional[str] = None) -> np.ndarray:
        """Deterministic single input drawn from the artifact's shape.

        The synthetic-load contract: a request carrying only
        ``input_seed`` produces the same tensor on any host, so traces
        stay replayable byte-for-byte without shipping arrays around.
        """
        shape = (1,) + self.input_shape(model)
        rng = np.random.default_rng(int(seed))
        return rng.standard_normal(shape).astype(np.float32)

    async def infer(self, inputs: Optional[np.ndarray] = None,
                    model: Optional[str] = None,
                    input_seed: Optional[int] = None,
                    deadline_ms: Optional[float] = None,
                    request_id: Optional[str] = None) -> InferenceResponse:
        """Submit one request and await its structured response."""
        registry = default_registry()
        registry.counter("serve.requests").inc()
        key = model or self.default_model
        rid = request_id if request_id is not None else f"r{next(self._ids)}"
        tracer = self._tracer
        ctx = tracer.admit(rid, key) if tracer is not None else None
        if not self._running:
            return self._error_response(rid, key, "server is not running",
                                        "shutdown", ctx=ctx)
        if key not in self._artifacts:
            registry.counter("serve.errors").inc()
            return self._error_response(
                rid, key, f"unknown model {key!r} "
                          f"(served: {', '.join(sorted(self._artifacts))})",
                "unknown_model", ctx=ctx)
        try:
            if inputs is None:
                if input_seed is None:
                    raise ServeError("request needs inputs or input_seed")
                inputs = self.synthesize_input(input_seed, key)
            else:
                inputs = self._normalize_inputs(np.asarray(inputs), key)
        except ServeError as exc:
            registry.counter("serve.errors").inc()
            return self._error_response(rid, key, str(exc), "bad_request",
                                        ctx=ctx)
        if ctx is not None:
            ctx.input_shape = tuple(inputs.shape)
        now = self.clock()
        deadline_ms = (self.config.default_deadline_ms
                       if deadline_ms is None else float(deadline_ms))
        future: asyncio.Future = asyncio.get_event_loop().create_future()
        try:
            self._batchers[key].submit(
                rid, inputs, deadline=now + deadline_ms / 1e3, now=now,
                context=(future, ctx))
        except ServeError as exc:
            registry.counter("serve.refused").inc()
            return self._error_response(rid, key, str(exc), "refused",
                                        ctx=ctx)
        if tracer is not None:
            tracer.mark_submitted(ctx)
        registry.gauge("serve.queue_depth").set(
            float(sum(len(b) for b in self._batchers.values())))
        self._wake.set()
        return await future

    def _normalize_inputs(self, inputs: np.ndarray, key: str) -> np.ndarray:
        """Validate explicit inputs against the artifact's recorded shape.

        Requests for the same model coalesce into one
        ``np.concatenate``, so rows with mismatched trailing dims must
        be refused here, at admission, not discovered mid-batch.  An
        artifact saved without ``input_shape`` accepts any already
        batched array (leading axis = batch).
        """
        shape = self._meta[key].get("input_shape")
        if not shape:
            if inputs.ndim < 1:
                raise ServeError("inputs must have a leading batch axis")
            return inputs
        expected = tuple(int(d) for d in shape)
        if inputs.ndim == len(expected):
            inputs = inputs[None]
        if (inputs.ndim != len(expected) + 1
                or tuple(inputs.shape[1:]) != expected):
            raise ServeError(
                f"inputs shape {tuple(inputs.shape)} does not match "
                f"artifact input_shape {expected}")
        return inputs

    def _error_response(self, rid: str, key: str, error: str, kind: str,
                        ctx: Optional[RequestContext] = None,
                        ) -> InferenceResponse:
        if self._tracer is not None and ctx is not None:
            self._tracer.finish(ctx, ok=False, error_kind=kind)
        return InferenceResponse(
            request_id=rid, ok=False, model=key,
            fingerprint=self._meta.get(key, {}).get("fingerprint", ""),
            error=error, error_kind=kind)

    # ------------------------------------------------------------- dispatch
    async def _dispatch_loop(self) -> None:
        while self._running:
            self._wake.clear()
            now = self.clock()
            for key, batcher in self._batchers.items():
                for batch in batcher.pop_due(now):
                    task = asyncio.ensure_future(self._run_batch(key, batch))
                    self._inflight.add(task)
                    task.add_done_callback(self._inflight.discard)
            dues = [batcher.next_due() for batcher in self._batchers.values()]
            dues = [due for due in dues if due is not None]
            timeout = None
            if dues:
                timeout = max(0.0, min(dues) - self.clock())
            try:
                await asyncio.wait_for(self._wake.wait(), timeout=timeout)
            except asyncio.TimeoutError:
                pass

    async def _run_batch(self, key: str,
                         batch: List[QueuedRequest]) -> None:
        # Any escape here would strand the batch's futures forever (the
        # task is ensure_future'd, infer() awaits with no timeout), so
        # the whole body runs under a guard that resolves every request
        # with a structured error instead.
        try:
            await self._run_batch_inner(key, batch)
        except Exception as exc:
            registry = default_registry()
            registry.counter("serve.errors").inc(float(len(batch)))
            for request in batch:
                self._finish_error(request, key,
                                   f"batch dispatch failed: {exc!r}",
                                   "exception", batch_size=len(batch))

    async def _run_batch_inner(self, key: str,
                               batch: List[QueuedRequest]) -> None:
        registry = default_registry()
        dispatched_at = self.clock()
        tracer = self._tracer
        if tracer is not None:
            for request in batch:
                tracer.mark_dispatched(self._request_ctx(request),
                                       batch_size=len(batch))
        registry.gauge("serve.batch_occupancy").set(
            len(batch) / float(self.config.max_batch))
        registry.gauge("serve.coalesce_wait_ms").set(
            (dispatched_at - batch[0].enqueued_at) * 1e3)
        sizes = [len(r.payload) for r in batch]
        stacked = np.concatenate([r.payload for r in batch], axis=0) \
            if len(batch) > 1 else batch[0].payload
        payload = {"artifact": self._artifacts[key], "inputs": stacked,
                   "backend": self.config.backend,
                   "compile": self.config.compile}
        loop = asyncio.get_event_loop()
        with span("serve.batch", model=key, requests=len(batch),
                  rows=int(sum(sizes))):
            result = await loop.run_in_executor(
                self._executor, self._pool.request, payload, None,
                self.config.request_timeout_s)
        infer_ms = (self.clock() - dispatched_at) * 1e3
        registry.histogram("serve.batch_size").observe(float(len(batch)))
        registry.histogram("serve.infer_ms").observe(infer_ms)
        if result.ok:
            outputs = np.asarray(result.value)
            offsets = np.cumsum([0] + sizes)
            for request, start, stop in zip(batch, offsets[:-1], offsets[1:]):
                self._finish_ok(request, key, outputs[start:stop],
                                dispatched_at, infer_ms, len(batch),
                                result.shard)
        else:
            registry.counter("serve.errors").inc(float(len(batch)))
            if result.error_kind == "timeout":
                registry.counter("serve.timeouts").inc(float(len(batch)))
            for request in batch:
                self._finish_error(request, key, result.error,
                                   result.error_kind or "exception",
                                   shard=result.shard, batch_size=len(batch),
                                   infer_s=result.duration_s)
            if tracer is not None and result.error_kind == "crash":
                tracer.dump_flight("shard_crash")
        if self.alerts is not None:
            try:
                fired = self.alerts.observe_registry(registry, epoch=None)
                if fired and tracer is not None:
                    tracer.dump_flight(f"alert_{fired[0].rule}")
            except Exception:
                pass  # alerting must never take the serving path down

    # ------------------------------------------------------------ responses
    def _finish_ok(self, request: QueuedRequest, key: str,
                   outputs: np.ndarray, dispatched_at: float,
                   infer_ms: float, batch_size: int, shard: int) -> None:
        registry = default_registry()
        now = self.clock()
        queue_ms = (dispatched_at - request.enqueued_at) * 1e3
        latency_ms = (now - request.enqueued_at) * 1e3
        missed = now > request.deadline
        registry.counter("serve.responses").inc()
        registry.histogram("serve.queue_ms").observe(queue_ms)
        registry.histogram("serve.latency_ms").observe(latency_ms)
        if missed:
            registry.counter("serve.deadline_missed").inc()
        if self._tracer is not None:
            self._tracer.finish(self._request_ctx(request), ok=True,
                                shard=shard, batch_size=batch_size,
                                infer_s=infer_ms / 1e3)
        self._set_future(request, InferenceResponse(
            request_id=request.request_id, ok=True, model=key,
            fingerprint=self._meta[key].get("fingerprint", ""),
            outputs=outputs, shard=shard, batch_size=batch_size,
            queue_ms=queue_ms, infer_ms=infer_ms, latency_ms=latency_ms,
            deadline_missed=missed))

    def _finish_error(self, request: QueuedRequest, key: str, error: str,
                      kind: str, shard: int = -1,
                      batch_size: int = 0, infer_s: float = 0.0) -> None:
        latency_ms = (self.clock() - request.enqueued_at) * 1e3
        if self._tracer is not None:
            self._tracer.finish(self._request_ctx(request), ok=False,
                                error_kind=kind, shard=shard,
                                batch_size=batch_size, infer_s=infer_s)
        self._set_future(request, InferenceResponse(
            request_id=request.request_id, ok=False, model=key,
            fingerprint=self._meta.get(key, {}).get("fingerprint", ""),
            error=error, error_kind=kind, shard=shard,
            batch_size=batch_size, latency_ms=latency_ms,
            deadline_missed=self.clock() > request.deadline))

    @staticmethod
    def _request_ctx(request: QueuedRequest) -> Optional[RequestContext]:
        """The RequestContext riding the batcher's opaque context slot."""
        context = request.context
        if isinstance(context, tuple) and len(context) == 2:
            return context[1]
        return None

    @staticmethod
    def _set_future(request: QueuedRequest,
                    response: InferenceResponse) -> None:
        future = request.context
        if isinstance(future, tuple):
            future = future[0]
        if future is not None and not future.done():
            future.set_result(response)
