"""Autograd op-level and backend kernel-level profiler.

Hooks two dispatch seams:

* the op dispatch in :mod:`repro.autograd.function` (forward, via
  ``Function.apply``) and :mod:`repro.autograd.tensor` (backward, via
  the graph walk in ``Tensor.backward``), attributing wall time, call
  counts and tensor bytes moved to each op class (``Conv2d``,
  ``MatMul``, ``BatchNormOp``, ...);
* the kernel dispatch in :mod:`repro.backend.registry`, attributing
  time to each named kernel per backend (``fast/conv2d_backward``,
  ``reference/matmul``, ...).  Nested kernel calls are credited to the
  outermost kernel, so kernel totals never double-count.

Each hook is a single module-global checked per dispatch, so
un-profiled runs pay one is-None test per op/kernel.

Usage::

    from repro.telemetry import profile

    with profile() as prof:
        trainer.train_epoch()
    print(prof.table(top_k=10))
    print(prof.kernel_table(top_k=10))
    print(f"op coverage: {prof.coverage():.0%} of wall time")
    print(f"kernel coverage: {prof.kernel_coverage():.0%} of wall time")
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

from repro.autograd import function as _function
from repro.backend import registry as _registry


@dataclass
class OpStat:
    """Accumulated cost of one op class across a profiled region."""

    name: str
    forward_calls: int = 0
    backward_calls: int = 0
    forward_time: float = 0.0
    backward_time: float = 0.0
    bytes_moved: int = 0

    @property
    def calls(self) -> int:
        return self.forward_calls + self.backward_calls

    @property
    def total_time(self) -> float:
        return self.forward_time + self.backward_time

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "forward_calls": self.forward_calls,
            "backward_calls": self.backward_calls,
            "forward_time": self.forward_time,
            "backward_time": self.backward_time,
            "total_time": self.total_time,
            "bytes_moved": self.bytes_moved,
        }


@dataclass
class KernelStat:
    """Accumulated cost of one backend kernel across a profiled region."""

    backend: str
    kernel: str
    calls: int = 0
    total_time: float = 0.0
    bytes_moved: int = 0

    @property
    def name(self) -> str:
        return f"{self.backend}/{self.kernel}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "backend": self.backend,
            "kernel": self.kernel,
            "calls": self.calls,
            "total_time": self.total_time,
            "bytes_moved": self.bytes_moved,
        }


class OpProfile:
    """Per-op and per-kernel statistics collected by one :func:`profile` region."""

    def __init__(self) -> None:
        self.stats: Dict[str, OpStat] = {}
        self.kernel_stats: Dict[str, KernelStat] = {}
        self.wall_time: float = 0.0

    # Hook signature expected by repro.autograd.function.set_op_hook.
    def _record(self, name: str, phase: str, seconds: float, nbytes: int) -> None:
        stat = self.stats.get(name)
        if stat is None:
            stat = self.stats[name] = OpStat(name)
        if phase == "forward":
            stat.forward_calls += 1
            stat.forward_time += seconds
        else:
            stat.backward_calls += 1
            stat.backward_time += seconds
        stat.bytes_moved += nbytes

    # Hook signature expected by repro.backend.registry.set_kernel_hook.
    def _record_kernel(
        self, backend: str, kernel: str, seconds: float, nbytes: int
    ) -> None:
        key = f"{backend}/{kernel}"
        stat = self.kernel_stats.get(key)
        if stat is None:
            stat = self.kernel_stats[key] = KernelStat(backend, kernel)
        stat.calls += 1
        stat.total_time += seconds
        stat.bytes_moved += nbytes

    # ------------------------------------------------------------- queries
    def __contains__(self, name: str) -> bool:
        return name in self.stats

    @property
    def total_op_time(self) -> float:
        return sum(s.total_time for s in self.stats.values())

    @property
    def total_calls(self) -> int:
        return sum(s.calls for s in self.stats.values())

    def coverage(self, wall_time: Optional[float] = None) -> float:
        """Fraction of wall time attributed to autograd ops."""
        wall = self.wall_time if wall_time is None else wall_time
        if wall <= 0.0:
            return float("nan")
        return self.total_op_time / wall

    def top(self, k: int = 10) -> List[OpStat]:
        """The ``k`` most expensive ops by total (fwd+bwd) time."""
        ranked = sorted(self.stats.values(),
                        key=lambda s: s.total_time, reverse=True)
        return ranked[:k]

    def merge_kernels(self, kernels: Dict[str, Dict[str, Any]]) -> None:
        """Fold another process's kernel stats into this profile.

        ``kernels`` maps ``"backend/kernel"`` to dicts with ``calls`` /
        ``total_time`` / ``bytes_moved`` (the wire format shipped by
        ``repro.parallel`` workers, or another profile's
        ``snapshot()["kernels"]``).  Used so the kernel table covers
        work done in worker processes, not just the parent.
        """
        for key, stat in kernels.items():
            backend, _, kernel = key.partition("/")
            mine = self.kernel_stats.get(key)
            if mine is None:
                mine = self.kernel_stats[key] = KernelStat(
                    stat.get("backend", backend), stat.get("kernel", kernel))
            mine.calls += int(stat.get("calls", 0))
            mine.total_time += float(stat.get("total_time", 0.0))
            mine.bytes_moved += int(stat.get("bytes_moved", 0))

    # ------------------------------------------------------ kernel queries
    @property
    def total_kernel_time(self) -> float:
        return sum(s.total_time for s in self.kernel_stats.values())

    def kernel_coverage(self, wall_time: Optional[float] = None) -> float:
        """Fraction of wall time attributed to named backend kernels."""
        wall = self.wall_time if wall_time is None else wall_time
        if wall <= 0.0:
            return float("nan")
        return self.total_kernel_time / wall

    def top_kernels(self, k: int = 10) -> List[KernelStat]:
        ranked = sorted(self.kernel_stats.values(),
                        key=lambda s: s.total_time, reverse=True)
        return ranked[:k]

    def snapshot(self) -> Dict[str, Any]:
        return {
            "wall_time": self.wall_time,
            "total_op_time": self.total_op_time,
            "ops": {name: stat.to_dict()
                    for name, stat in sorted(self.stats.items())},
            "kernels": {name: stat.to_dict()
                        for name, stat in sorted(self.kernel_stats.items())},
        }

    def table(self, top_k: int = 10, title: str = "autograd ops") -> str:
        """Top-K table: call counts, fwd/bwd ms, time share, MB moved."""
        from repro.telemetry.tables import format_table

        total = self.total_op_time
        rows = []
        for stat in self.top(top_k):
            share = 100.0 * stat.total_time / total if total > 0 else 0.0
            rows.append([
                stat.name,
                stat.forward_calls,
                stat.backward_calls,
                stat.forward_time * 1e3,
                stat.backward_time * 1e3,
                stat.total_time * 1e3,
                share,
                stat.bytes_moved / 1e6,
            ])
        return format_table(
            ["op", "fwd calls", "bwd calls", "fwd ms", "bwd ms",
             "total ms", "share %", "MB moved"],
            rows, title=title,
        )

    def kernel_table(self, top_k: int = 10, title: str = "backend kernels") -> str:
        """Top-K kernel table: backend, calls, ms, time share, MB moved."""
        from repro.telemetry.tables import format_table

        total = self.total_kernel_time
        rows = []
        for stat in self.top_kernels(top_k):
            share = 100.0 * stat.total_time / total if total > 0 else 0.0
            rows.append([
                stat.kernel,
                stat.backend,
                stat.calls,
                stat.total_time * 1e3,
                share,
                stat.bytes_moved / 1e6,
            ])
        return format_table(
            ["kernel", "backend", "calls", "total ms", "share %", "MB moved"],
            rows, title=title,
        )


# The OpProfile whose hooks are currently installed (None outside any
# profile() region).  Cross-process mergers -- the repro.parallel pool
# shipping worker kernel stats back -- need the object, not just the
# hook callables, so profile() tracks it here.
_active_profile: Optional[OpProfile] = None


def active_profile() -> Optional[OpProfile]:
    """The profile collecting inside the innermost :func:`profile` region."""
    return _active_profile


@contextlib.contextmanager
def profile(profile_obj: Optional[OpProfile] = None) -> Iterator[OpProfile]:
    """Profile autograd ops and backend kernels inside the ``with`` block.

    Installs the op hook and the kernel hook on entry and restores the
    previous hooks on exit; the yielded :class:`OpProfile` accumulates
    per-op and per-kernel statistics and the region's wall time (so
    ``coverage()``/``kernel_coverage()`` work out of the box).
    Re-entering with the same ``profile_obj`` accumulates.
    """
    global _active_profile
    prof = profile_obj if profile_obj is not None else OpProfile()
    previous = _function.set_op_hook(prof._record)
    previous_kernel = _registry.set_kernel_hook(prof._record_kernel)
    previous_profile, _active_profile = _active_profile, prof
    start = time.perf_counter()
    try:
        yield prof
    finally:
        prof.wall_time += time.perf_counter() - start
        _function.set_op_hook(previous)
        _registry.set_kernel_hook(previous_kernel)
        _active_profile = previous_profile
