"""Plain-text table rendering shared by reports, profiler and CLI.

Historically lived in :mod:`repro.pipeline.reporting`; moved here so
telemetry (profiler tables, kernel benchmarks) can render tables
without importing the pipeline layer.  ``pipeline.reporting`` still
re-exports everything for existing callers.
"""

from __future__ import annotations

from typing import Any, List, Mapping, Optional, Sequence, Union

Cell = Union[str, int, float]


def _format_cell(cell: Cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Cell]], title: str = ""
) -> str:
    """Render an aligned ASCII table.

    Tolerates ragged input: rows longer than the header row grow extra
    unnamed columns, shorter rows are padded with blanks, and an empty
    row list renders a header-only table.
    """
    header_cells = [str(h) for h in headers]
    rendered: List[List[str]] = [[_format_cell(c) for c in row] for row in rows]
    columns = max([len(header_cells)] + [len(row) for row in rendered], default=0)
    header_cells += [""] * (columns - len(header_cells))
    rendered = [row + [""] * (columns - len(row)) for row in rendered]
    widths = [len(h) for h in header_cells]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def _line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    out: List[str] = []
    if title:
        out.append(title)
    if columns == 0:
        out.append("(empty table)")
        return "\n".join(out)
    out.append(_line(header_cells))
    out.append("-+-".join("-" * width for width in widths))
    out.extend(_line(row) for row in rendered)
    return "\n".join(out)


def format_records(
    records: Sequence[Mapping[str, Any]],
    title: str = "",
    columns: Optional[Sequence[str]] = None,
) -> str:
    """Render dict records as a table over the union of their keys.

    Heterogeneous records are fine: the column set is the ordered union
    of every record's keys (unless ``columns`` pins it) and missing
    values render blank.  An empty record list yields a header-only (or
    empty) table rather than raising.
    """
    if columns is None:
        ordered: List[str] = []
        for record in records:
            for key in record:
                if key not in ordered:
                    ordered.append(key)
        columns = ordered
    rows = [[record.get(col, "") for col in columns] for record in records]
    return format_table(list(columns), rows, title=title)


def percent(value: float) -> str:
    """0.8831 -> '88.31%'."""
    return f"{100.0 * value:.2f}%"
