"""Live metrics export: Prometheus text endpoint + JSON health heartbeat.

A long sweep or training run is otherwise a black box until its JSONL
files are read back; :class:`MetricsExporter` opens a tiny pull-based
window into the live process, the same shape production training stacks
use.  A background ``http.server`` thread serves two routes:

``GET /metrics``
    The default :class:`~repro.telemetry.metrics.MetricsRegistry` in
    Prometheus text exposition format (counters, gauges, and summaries
    derived from histograms/timers), every name prefixed ``repro_``.

``GET /health``
    A JSON heartbeat: run id, uptime, and whatever the process has
    published through :func:`update_health` -- current epoch, last probe
    tick, pipeline stage, worker liveness -- merged with the pool's
    liveness gauges from the registry.

Start it from the CLI with ``repro ... --serve-metrics PORT`` (the bound
endpoint is recorded in the RunManifest) or programmatically::

    exporter = serve_metrics(port=0)        # 0 = ephemeral port
    print(exporter.url)                     # http://127.0.0.1:PORT
    ...
    stop_exporter()

The server binds to ``127.0.0.1`` by default: this is an operator
diagnostic, not a public service.
"""

from __future__ import annotations

import http.server
import json
import math
import re
import threading
import time
from typing import Any, Callable, Dict, Optional

from repro.errors import ConfigError
from repro.telemetry.metrics import MetricsRegistry, default_registry

# --------------------------------------------------------------------------
# Health heartbeat: a process-wide mutable scoreboard.  Pipeline stages
# call update_health(...) as they go; /health serves the merged view.
# --------------------------------------------------------------------------

_health: Dict[str, Any] = {}
_health_lock = threading.Lock()


def update_health(**fields: Any) -> None:
    """Publish fields into the process-wide health heartbeat.

    Cheap (a dict update under a lock), safe to call whether or not an
    exporter is running -- instrumented code calls it unconditionally.
    """
    with _health_lock:
        _health.update(fields)


def health_snapshot() -> Dict[str, Any]:
    with _health_lock:
        return dict(_health)


def reset_health() -> None:
    with _health_lock:
        _health.clear()


# --------------------------------------------------------------------------
# Prometheus text exposition
# --------------------------------------------------------------------------

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    """``trainer.images_per_s`` -> ``repro_trainer_images_per_s``."""
    return "repro_" + _NAME_RE.sub("_", name)


def _prom_value(value: Any) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def prometheus_text(registry: Optional[MetricsRegistry] = None) -> str:
    """Render a registry in the Prometheus text exposition format.

    Counters and gauges map directly; histograms and EWMA timers become
    summaries (quantile series plus ``_sum``/``_count``), with the
    timer's EWMA additionally exposed as a ``_ewma`` gauge since it is
    the value the alert rules watch.  SLO histograms
    (:class:`~repro.telemetry.slo.SloHistogram`) render as *native*
    Prometheus histograms -- cumulative ``_bucket{le="..."}`` series
    plus ``_sum``/``_count`` -- so ``histogram_quantile()`` works on
    them server-side, and their breach tally as a ``_breaches``
    counter.
    """
    registry = registry if registry is not None else default_registry()
    typed = registry.typed_snapshot()
    lines = []
    for name, value in typed["counters"].items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_prom_value(value)}")
    for name, value in typed["gauges"].items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_prom_value(value)}")
    for name, snap in typed["histograms"].items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} summary")
        for q in ("p50", "p90", "p99"):
            if q in snap:
                quantile = f"0.{q[1:]}"
                lines.append(f'{prom}{{quantile="{quantile}"}} '
                             f"{_prom_value(snap[q])}")
        lines.append(f"{prom}_sum {_prom_value(snap.get('sum', 0.0))}")
        lines.append(f"{prom}_count {_prom_value(snap.get('count', 0))}")
    for name, snap in typed["timers"].items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} summary")
        lines.append(f"{prom}_sum {_prom_value(snap.get('sum', 0.0))}")
        lines.append(f"{prom}_count {_prom_value(snap.get('count', 0))}")
        lines.append(f"# TYPE {prom}_ewma gauge")
        lines.append(f"{prom}_ewma {_prom_value(snap.get('ewma', float('nan')))}")
        if "last" in snap:
            lines.append(f"# TYPE {prom}_last gauge")
            lines.append(f"{prom}_last {_prom_value(snap['last'])}")
    for name, snap in typed.get("slo", {}).items():
        from repro.telemetry.slo import bucket_edges
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        edges = bucket_edges(
            lo=float(snap.get("lo", 0.01)), hi=float(snap.get("hi", 1e5)),
            buckets_per_decade=int(snap.get("buckets_per_decade", 10)))
        counts = snap.get("counts") or []
        cumulative = 0
        for edge, count in zip(edges, counts):
            cumulative += int(count)
            lines.append(f'{prom}_bucket{{le="{edge:g}"}} {cumulative}')
        lines.append(f'{prom}_bucket{{le="+Inf"}} '
                     f"{int(snap.get('count', 0))}")
        lines.append(f"{prom}_sum {_prom_value(snap.get('sum', 0.0))}")
        lines.append(f"{prom}_count {_prom_value(snap.get('count', 0))}")
        lines.append(f"# TYPE {prom}_breaches counter")
        lines.append(f"{prom}_breaches "
                     f"{_prom_value(snap.get('breaches', 0.0))}")
    return "\n".join(lines) + "\n"


# --------------------------------------------------------------------------
# The HTTP server
# --------------------------------------------------------------------------

class _Handler(http.server.BaseHTTPRequestHandler):
    server_version = "repro-exporter"

    def log_message(self, *args: Any) -> None:  # silence request logging
        pass

    def _respond(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        exporter: "MetricsExporter" = self.server.exporter  # type: ignore[attr-defined]
        try:
            if self.path in ("/metrics", "/metrics/"):
                self._respond(200, "text/plain; version=0.0.4",
                              prometheus_text(exporter.registry))
            elif self.path in ("/health", "/health/"):
                self._respond(200, "application/json",
                              json.dumps(exporter.health(), sort_keys=True))
            else:
                self._respond(404, "text/plain", "not found\n")
        except Exception as exc:
            try:
                self._respond(500, "text/plain", f"exporter error: {exc!r}\n")
            except Exception:
                pass


class _Server(http.server.ThreadingHTTPServer):
    daemon_threads = True
    exporter: "MetricsExporter"


class MetricsExporter:
    """Background HTTP server exposing /metrics and /health.

    Args:
        port: TCP port to bind; 0 picks an ephemeral port (read the
            bound one back from :attr:`port` / :attr:`url`).
        host: bind address, loopback by default.
        registry: metrics source, the default registry when omitted.
        clock: time source for ``started_at`` / ``uptime_s`` (default
            ``time.time``; tests inject a fake clock so uptime
            assertions are exact rather than sleep-based).
    """

    def __init__(self, port: int = 0, host: str = "127.0.0.1",
                 registry: Optional[MetricsRegistry] = None,
                 clock: Callable[[], float] = time.time) -> None:
        if not (0 <= int(port) <= 65535):
            raise ConfigError(f"port must be in [0, 65535], got {port}")
        self.registry = registry if registry is not None else default_registry()
        self.clock = clock
        self.started_at = clock()
        self._server = _Server((host, int(port)), _Handler)
        self._server.exporter = self
        self._thread: Optional[threading.Thread] = None

    # -------------------------------------------------------------- address
    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "MetricsExporter":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        kwargs={"poll_interval": 0.1},
                                        daemon=True, name="repro-exporter")
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._server.shutdown()
        self._thread.join(timeout=2.0)
        self._server.server_close()
        self._thread = None

    def __enter__(self) -> "MetricsExporter":
        return self.start()

    def __exit__(self, *exc: Any) -> bool:
        self.stop()
        return False

    # --------------------------------------------------------------- health
    def health(self) -> Dict[str, Any]:
        """The /health payload: run identity + published heartbeat +
        worker liveness derived from the pool's registry metrics."""
        from repro.telemetry.events import get_logger

        flat = self.registry.flat_snapshot()
        payload: Dict[str, Any] = {
            "status": "ok",
            "run_id": get_logger().run_id,
            "uptime_s": round(self.clock() - self.started_at, 3),
            "workers_alive": int(flat.get("pool.workers_alive", 0.0)),
            "worker_crashes": int(flat.get("pool.worker_crashes", 0.0)),
            "alerts_total": int(flat.get("alerts.total", 0.0)),
        }
        payload.update(health_snapshot())
        return payload


# --------------------------------------------------------------------------
# Module-level singleton, mirroring trace.set_recorder's shape
# --------------------------------------------------------------------------

_active: Optional[MetricsExporter] = None


def active_exporter() -> Optional[MetricsExporter]:
    return _active


def serve_metrics(port: int = 0, host: str = "127.0.0.1",
                  registry: Optional[MetricsRegistry] = None,
                  clock: Callable[[], float] = time.time) -> MetricsExporter:
    """Start (or return the already-running) process-wide exporter."""
    global _active
    if _active is not None:
        return _active
    _active = MetricsExporter(port=port, host=host, registry=registry,
                              clock=clock).start()
    return _active


def stop_exporter() -> None:
    """Stop and discard the process-wide exporter, if any."""
    global _active
    if _active is not None:
        _active.stop()
        _active = None
