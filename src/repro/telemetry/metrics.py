"""Process-local metrics registry: counters, gauges, histograms, timers.

The registry is the numeric half of the observability layer (spans and
events are the other half, see :mod:`repro.telemetry.trace` and
:mod:`repro.telemetry.events`).  Everything here is zero-dependency and
cheap enough to leave permanently wired into hot paths: a counter
increment is one attribute add, a histogram observation one deque
append.

A process-global default registry (:func:`default_registry`) collects
the library's built-in instrumentation (``trainer.*``, ``attack.*``,
``quant.*`` metric names); user code may create private
:class:`MetricsRegistry` instances for isolated experiments.
``snapshot()`` returns plain JSON-ready data so results can be stored
next to experiment records without this library.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.telemetry.slo import SloHistogram


class Counter:
    """Monotonically increasing count (batches seen, ops dispatched)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount

    def snapshot(self) -> float:
        return self.value

    def reset(self) -> None:
        self.value = 0.0


class Gauge:
    """Last-written value (current loss, images/sec of the last epoch)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = float("nan")

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> float:
        return self.value

    def reset(self) -> None:
        self.value = float("nan")


class Histogram:
    """Streaming distribution with count/sum/min/max and quantiles.

    Keeps the most recent ``window`` observations for quantile queries;
    count/sum/min/max cover the full stream.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_window")

    def __init__(self, name: str, window: int = 4096) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._window: deque = deque(maxlen=window)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._window.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def quantile(self, q: float) -> float:
        """Empirical quantile over the retained window (nearest rank).

        When every sample arrived via :meth:`merge_snapshot` (worker
        ship-back) the window is empty; the stream mean is the only
        available point estimate, so quantiles degrade to it rather
        than to NaN, keeping snapshots JSON-roundtrip safe.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"quantile must be in [0, 1], got {q}")
        if not self._window:
            return self.mean if self.count else float("nan")
        ordered = sorted(self._window)
        rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
        return ordered[rank]

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else float("nan"),
            "max": self.max if self.count else float("nan"),
            "p50": self.quantile(0.5),
            "p90": self.quantile(0.9),
            "p99": self.quantile(0.99),
        }

    def merge_snapshot(self, other: Mapping[str, float]) -> None:
        """Fold another histogram's snapshot into this one.

        count/sum/min/max merge exactly; the quantile window stays
        process-local (quantiles describe only locally observed values).
        """
        count = int(other.get("count", 0))
        if count <= 0:
            return
        self.count += count
        self.total += float(other.get("sum", 0.0))
        for key, fold in (("min", min), ("max", max)):
            value = float(other.get(key, float("nan")))
            if not math.isnan(value):
                setattr(self, key, fold(getattr(self, key), value))

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._window.clear()


class EwmaTimer:
    """Duration tracker with an exponentially weighted moving average.

    ``update(seconds)`` records one duration; :meth:`time` is a context
    manager measuring a ``with`` block.  The EWMA smooths per-call noise
    while still following drift (alpha 0.2 by default: ~5-call memory).
    """

    __slots__ = ("name", "alpha", "count", "total", "last", "ewma")

    def __init__(self, name: str, alpha: float = 0.2) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigError(f"timer alpha must be in (0, 1], got {alpha}")
        self.name = name
        self.alpha = alpha
        self.count = 0
        self.total = 0.0
        self.last = float("nan")
        self.ewma = float("nan")

    def update(self, seconds: float) -> None:
        seconds = float(seconds)
        self.count += 1
        self.total += seconds
        self.last = seconds
        if self.count == 1:
            self.ewma = seconds
        else:
            self.ewma = self.alpha * seconds + (1.0 - self.alpha) * self.ewma

    class _Timing:
        __slots__ = ("timer", "start")

        def __init__(self, timer: "EwmaTimer") -> None:
            self.timer = timer
            self.start = 0.0

        def __enter__(self) -> "EwmaTimer._Timing":
            self.start = time.perf_counter()
            return self

        def __exit__(self, *exc: Any) -> None:
            self.timer.update(time.perf_counter() - self.start)

    def time(self) -> "EwmaTimer._Timing":
        return EwmaTimer._Timing(self)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "last": self.last,
            "ewma": self.ewma,
        }

    def merge_snapshot(self, other: Mapping[str, float]) -> None:
        """Fold another timer's snapshot into this one.

        count/sum merge exactly; ``last`` takes the other's value when
        present and the EWMA stays process-local (it is an
        order-dependent smoothing, not a mergeable statistic).
        """
        count = int(other.get("count", 0))
        if count <= 0:
            return
        self.count += count
        self.total += float(other.get("sum", 0.0))
        last = float(other.get("last", float("nan")))
        if not math.isnan(last):
            self.last = last
        if math.isnan(self.ewma):
            self.ewma = float(other.get("ewma", float("nan")))

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.last = float("nan")
        self.ewma = float("nan")


class MetricsRegistry:
    """Named metrics with get-or-create accessors and a plain snapshot."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, kind: type, *args: Any) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = kind(name, *args)
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise ConfigError(
                    f"metric {name!r} is a {type(metric).__name__}, "
                    f"not a {kind.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str, window: int = 4096) -> Histogram:
        return self._get_or_create(name, Histogram, window)

    def timer(self, name: str, alpha: float = 0.2) -> EwmaTimer:
        return self._get_or_create(name, EwmaTimer, alpha)

    def slo(self, name: str, lo: float = 0.01, hi: float = 1e5,
            buckets_per_decade: int = 10,
            slo: Optional[float] = None) -> SloHistogram:
        """Fixed-bucket :class:`~repro.telemetry.slo.SloHistogram`.

        Unlike :meth:`histogram`, its quantiles merge exactly across
        processes (bucket vectors add); the constructor arguments only
        apply on first creation, as with every accessor here.
        """
        return self._get_or_create(name, SloHistogram, lo, hi,
                                   buckets_per_decade, slo)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> Dict[str, Any]:
        """All metrics as JSON-ready data (scalars or flat dicts)."""
        with self._lock:
            return {name: metric.snapshot()
                    for name, metric in sorted(self._metrics.items())}

    def typed_snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Snapshot keyed by metric kind, suitable for cross-process merge.

        The plain :meth:`snapshot` loses the counter/gauge distinction
        (both are bare scalars); this variant groups values as
        ``{"counters": {...}, "gauges": {...}, "histograms": {...},
        "timers": {...}}`` so :meth:`merge_typed` can apply the right
        fold per kind.  Used by ``repro.parallel`` workers to ship their
        process-local metrics back to the parent.
        """
        kinds = {Counter: "counters", Gauge: "gauges",
                 Histogram: "histograms", EwmaTimer: "timers",
                 SloHistogram: "slo"}
        typed: Dict[str, Dict[str, Any]] = {
            "counters": {}, "gauges": {}, "histograms": {}, "timers": {},
            "slo": {}}
        with self._lock:
            for name, metric in sorted(self._metrics.items()):
                typed[kinds[type(metric)]][name] = metric.snapshot()
        return typed

    def merge_typed(self, typed: Mapping[str, Mapping[str, Any]]) -> None:
        """Merge a :meth:`typed_snapshot` from another process.

        Counters add, gauges take the incoming value (NaN skipped,
        meaning the gauge was never set over there), histograms and
        timers fold count/sum/min/max via their ``merge_snapshot``;
        order-dependent pieces (quantile windows, EWMA) stay local.
        """
        for name, value in typed.get("counters", {}).items():
            if float(value) != 0.0:
                self.counter(name).inc(float(value))
        for name, value in typed.get("gauges", {}).items():
            if not (isinstance(value, float) and math.isnan(value)):
                self.gauge(name).set(value)
        # zero-count snapshots are skipped *before* the accessor call:
        # merging would be a no-op, but the accessor would still create
        # an empty metric here whose NaN fields pollute later snapshots
        for name, value in typed.get("histograms", {}).items():
            if int(value.get("count", 0)) > 0:
                self.histogram(name).merge_snapshot(value)
        for name, value in typed.get("timers", {}).items():
            if int(value.get("count", 0)) > 0:
                self.timer(name).merge_snapshot(value)
        for name, value in typed.get("slo", {}).items():
            if int(value.get("count", 0)) > 0:
                self.slo(
                    name,
                    lo=float(value.get("lo", 0.01)),
                    hi=float(value.get("hi", 1e5)),
                    buckets_per_decade=int(value.get("buckets_per_decade", 10)),
                    slo=value.get("slo"),
                ).merge_snapshot(value)

    def flat_snapshot(self) -> Dict[str, float]:
        """Snapshot with compound metrics flattened to dotted scalar keys.

        Non-scalar fields (an SLO histogram's bucket vector) are
        skipped: flat snapshots feed alert rules and the health
        endpoint, which expect every value to be a number.
        """
        flat: Dict[str, float] = {}
        for name, value in self.snapshot().items():
            if isinstance(value, dict):
                for field, scalar in value.items():
                    if isinstance(scalar, (int, float)):
                        flat[f"{name}.{field}"] = scalar
            else:
                flat[name] = value
        return flat

    def reset(self) -> None:
        """Zero every metric (names stay registered)."""
        with self._lock:
            for metric in self._metrics.values():
                metric.reset()

    def clear(self) -> None:
        """Drop every metric entirely."""
        with self._lock:
            self._metrics.clear()

    def render_table(self, title: str = "metrics") -> str:
        """Aligned plain-text table of the current snapshot."""
        from repro.pipeline.reporting import format_table

        rows: List[Sequence[Any]] = []
        for name, value in self.snapshot().items():
            if isinstance(value, dict):
                detail = "  ".join(
                    f"{k}={_compact(v)}" for k, v in value.items()
                    if k in ("count", "mean", "p50", "p90", "ewma", "sum")
                    and not (isinstance(v, float) and math.isnan(v))
                )
                rows.append([name, detail])
            else:
                rows.append([name, _compact(value)])
        return format_table(["metric", "value"], rows, title=title)


def _compact(value: Any) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if value != 0 and abs(value) < 1e-3:
            return f"{value:.2e}"
        return f"{value:.4g}"
    return str(value)


_default_registry = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-global registry used by the library's instrumentation."""
    return _default_registry
