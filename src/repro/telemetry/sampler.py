"""Wall-clock sampling profiler built on ``sys._current_frames``.

The PR-1 op profiler (:mod:`repro.telemetry.profiler`) attributes time
*within* instrumented autograd ops and backend kernels; everything it
does not wrap -- data loading, numpy glue, monitor probes -- is
invisible to it.  :class:`StackSampler` fills that gap from the other
direction: a daemon thread wakes ``hz`` times per second, snapshots the
Python stack of the watched threads, and tallies complete stacks.  The
result answers "where did wall-clock time actually go", independent of
any instrumentation, and :func:`compare_with_profile` cross-checks the
two attributions against each other.

Usage::

    with StackSampler(hz=97) as sampler:
        run_quantized_correlation_attack(...)
    print(sampler.table())
    sampler.to_collapsed("profile.folded")   # flamegraph.pl input

The sampler is statistical: per-sample overhead is one stack walk, so
even a few hundred hz adds well under a percent to realistic epochs.
A prime default rate avoids lockstep with periodic work.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigError

Stack = Tuple[str, ...]


def _frame_label(frame) -> str:
    """``module:function`` for one frame, e.g. ``repro.nn.conv:forward``."""
    module = frame.f_globals.get("__name__", "?")
    return f"{module}:{frame.f_code.co_name}"


class StackSampler:
    """Background-thread stack sampler for the current process.

    Args:
        hz: samples per second (default 97; prime, see module docstring).
        max_depth: innermost frames kept per stack (deeper is truncated).
        threads: ``"main"`` samples only the main thread (the default --
            the training loop lives there and sampling our own sampler
            thread would only add noise); ``"all"`` samples every thread
            except the sampler's own.
        clock: time source for ``started_at`` / ``wall_time`` (default
            ``time.perf_counter``).  Tests inject a fake clock and
            drive :meth:`sample_once` directly, so timing assertions
            need no real sleeps.
    """

    def __init__(self, hz: float = 97.0, max_depth: int = 64,
                 threads: str = "main",
                 clock: Callable[[], float] = time.perf_counter) -> None:
        if hz <= 0:
            raise ConfigError(f"hz must be positive, got {hz}")
        if threads not in ("main", "all"):
            raise ConfigError(f"threads must be 'main' or 'all', got {threads!r}")
        self.hz = float(hz)
        self.max_depth = int(max_depth)
        self.threads = threads
        self.clock = clock
        self.samples: Dict[Stack, int] = {}
        self.sample_count = 0
        self.started_at: Optional[float] = None
        self.stopped_at: Optional[float] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "StackSampler":
        if self._thread is not None:
            raise ConfigError("sampler already started")
        self.started_at = self.clock()
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name="repro-sampler")
        self._thread.start()
        return self

    def stop(self) -> "StackSampler":
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join(timeout=2.0)
        self._thread = None
        self.stopped_at = self.clock()
        return self

    def __enter__(self) -> "StackSampler":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    @property
    def wall_time(self) -> float:
        if self.started_at is None:
            return 0.0
        end = self.stopped_at if self.stopped_at is not None else self.clock()
        return end - self.started_at

    # ------------------------------------------------------------- sampling
    def _loop(self) -> None:
        interval = 1.0 / self.hz
        own_id = threading.get_ident()
        while not self._stop.wait(interval):
            self.sample_once(exclude_thread=own_id)

    def sample_once(self, exclude_thread: Optional[int] = None) -> int:
        """Take one stack snapshot of the watched threads, synchronously.

        This is the sampling step the background thread runs every
        ``1/hz`` seconds, exposed so tests (and one-shot callers) can
        drive sampling deterministically -- construct with a tiny
        ``hz`` so the thread never fires, then call this per simulated
        tick.  Returns the number of stacks tallied.
        """
        main_id = threading.main_thread().ident
        tallied = 0
        frames = sys._current_frames()
        for thread_id, frame in frames.items():
            if exclude_thread is not None and thread_id == exclude_thread:
                continue
            if self.threads == "main" and thread_id != main_id:
                continue
            self._tally(frame)
            tallied += 1
        return tallied

    def _tally(self, frame) -> None:
        stack: List[str] = []
        while frame is not None and len(stack) < self.max_depth:
            stack.append(_frame_label(frame))
            frame = frame.f_back
        # root-first order, the collapsed-stack convention
        key: Stack = tuple(reversed(stack))
        self.samples[key] = self.samples.get(key, 0) + 1
        self.sample_count += 1

    # -------------------------------------------------------------- queries
    def leaf_shares(self) -> Dict[str, float]:
        """Fraction of samples whose *innermost* frame is each label
        (exclusive / self time)."""
        total = self.sample_count
        if not total:
            return {}
        shares: Dict[str, float] = {}
        for stack, count in self.samples.items():
            leaf = stack[-1]
            shares[leaf] = shares.get(leaf, 0.0) + count / total
        return shares

    def total_shares(self) -> Dict[str, float]:
        """Fraction of samples in which each label appears anywhere on
        the stack (inclusive time; recursion counted once)."""
        total = self.sample_count
        if not total:
            return {}
        shares: Dict[str, float] = {}
        for stack, count in self.samples.items():
            for label in set(stack):
                shares[label] = shares.get(label, 0.0) + count / total
        return shares

    def share(self, substring: str) -> float:
        """Fraction of samples whose stack mentions ``substring`` anywhere
        (e.g. ``"repro.autograd"`` for total autograd-attributed time)."""
        total = self.sample_count
        if not total:
            return 0.0
        hits = sum(count for stack, count in self.samples.items()
                   if any(substring in label for label in stack))
        return hits / total

    # --------------------------------------------------------------- export
    def collapsed(self) -> str:
        """Collapsed-stack text: ``root;child;leaf count`` per line, the
        input format of flamegraph.pl and speedscope."""
        lines = [f"{';'.join(stack)} {count}"
                 for stack, count in sorted(self.samples.items())]
        return "\n".join(lines)

    def to_collapsed(self, path: os.PathLike) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.collapsed())
            handle.write("\n")

    def table(self, top_k: int = 10, title: str = "sampled hotspots") -> str:
        """Human-readable top-k self-time table."""
        shares = sorted(self.leaf_shares().items(),
                        key=lambda item: item[1], reverse=True)[:top_k]
        width = max([len(label) for label, _ in shares] + [len(title)])
        lines = [f"{title}  ({self.sample_count} samples @ {self.hz:g} Hz)",
                 f"{'frame'.ljust(width)}  self%"]
        for label, share in shares:
            lines.append(f"{label.ljust(width)}  {100.0 * share:5.1f}")
        return "\n".join(lines)


def compare_with_profile(sampler: StackSampler, profile,
                         namespaces: Tuple[str, ...] = (
                             "repro.autograd", "repro.nn", "repro.backend",
                         )) -> Dict[str, float]:
    """Cross-check the sampler against the op profiler's attribution.

    Returns both instruments' estimates of "fraction of wall time in
    instrumented compute": the op profiler's ``coverage()`` (measured
    timers around ops) and the sampler's share of stacks touching the
    compute namespaces.  The two are independent measurements of the
    same quantity; a large gap means one of them is blind to something
    (e.g. uninstrumented kernels, or a sample rate too low for the
    region's length).
    """
    total = sampler.sample_count
    if total and namespaces:
        hits = sum(
            count for stack, count in sampler.samples.items()
            if any(ns in label for label in stack for ns in namespaces))
        sampled = hits / total
    else:
        sampled = 0.0
    profiled = profile.coverage(sampler.wall_time or None)
    return {
        "sampled_compute_share": sampled,
        "profiled_op_coverage": profiled,
        "gap": abs(sampled - profiled),
    }
