"""Span-based wall-time tracing with JSONL and Chrome-trace export.

A *span* is one named, timed region of execution; spans nest, forming
the run's call-tree skeleton (epoch > batch, attack > quantize >
cluster).  Instrumented library code wraps its stages in
``with span("attack.training"):`` unconditionally -- when no
:class:`TraceRecorder` is installed the context manager is a shared
no-op object, so the disabled fast path costs one global read and two
trivial method calls.

Enable tracing with :func:`recording`::

    with recording() as recorder:
        run_quantized_correlation_attack(...)
    recorder.to_chrome_trace("trace.json")   # open in chrome://tracing
    recorder.to_jsonl("trace.jsonl")
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass
class SpanRecord:
    """One finished span: [start, start+duration) seconds from the epoch."""

    name: str
    start: float
    duration: float
    depth: int
    thread_id: int
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.duration

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "depth": self.depth,
            "thread_id": self.thread_id,
            "attrs": self.attrs,
        }


class TraceRecorder:
    """Collects finished spans; timestamps are relative to construction."""

    def __init__(self) -> None:
        self.spans: List[SpanRecord] = []
        self._origin = time.perf_counter()
        self._lock = threading.Lock()
        self._depth = threading.local()

    # -------------------------------------------------------------- record
    def _current_depth(self) -> int:
        return getattr(self._depth, "value", 0)

    def _push(self) -> int:
        depth = self._current_depth()
        self._depth.value = depth + 1
        return depth

    def _pop(self) -> None:
        self._depth.value = self._current_depth() - 1

    def add(self, name: str, start: float, duration: float, depth: int,
            attrs: Dict[str, Any]) -> None:
        record = SpanRecord(
            name=name, start=start, duration=duration, depth=depth,
            thread_id=threading.get_ident(), attrs=attrs,
        )
        with self._lock:
            self.spans.append(record)

    # ------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self.spans)

    def by_name(self, name: str) -> List[SpanRecord]:
        return [s for s in self.spans if s.name == name]

    def total_time(self, name: str) -> float:
        """Summed wall time of every span with ``name``."""
        return sum(s.duration for s in self.by_name(name))

    def roots(self) -> List[SpanRecord]:
        return [s for s in self.spans if s.depth == 0]

    # -------------------------------------------------------------- export
    def to_jsonl(self, path: os.PathLike) -> None:
        """One JSON object per line, in completion order."""
        with open(path, "w", encoding="utf-8") as handle:
            for record in self.spans:
                handle.write(json.dumps(record.to_dict(), sort_keys=True))
                handle.write("\n")

    def chrome_trace(self) -> Dict[str, Any]:
        """The Chrome trace-event JSON object (``ph: "X"`` complete events)."""
        pid = os.getpid()
        events = [
            {
                "name": record.name,
                "cat": "repro",
                "ph": "X",
                "ts": record.start * 1e6,
                "dur": record.duration * 1e6,
                "pid": pid,
                "tid": record.thread_id,
                "args": {str(k): v for k, v in record.attrs.items()},
            }
            for record in self.spans
        ]
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def to_chrome_trace(self, path: os.PathLike) -> None:
        """Write a file loadable by chrome://tracing / Perfetto."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle, indent=1)
            handle.write("\n")


# ---------------------------------------------------------------------------
# The active recorder and the span() entry point
# ---------------------------------------------------------------------------

_active: Optional[TraceRecorder] = None


class _NoopSpan:
    """Shared do-nothing context manager: the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> bool:
        return False


_NOOP = _NoopSpan()


class _LiveSpan:
    __slots__ = ("recorder", "name", "attrs", "start", "depth")

    def __init__(self, recorder: TraceRecorder, name: str,
                 attrs: Dict[str, Any]) -> None:
        self.recorder = recorder
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_LiveSpan":
        self.depth = self.recorder._push()
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> bool:
        end = time.perf_counter()
        recorder = self.recorder
        recorder._pop()
        recorder.add(self.name, self.start - recorder._origin,
                     end - self.start, self.depth, self.attrs)
        return False


def span(name: str, **attrs: Any):
    """Context manager timing a named region under the active recorder.

    With no recorder installed this returns a shared no-op object, so
    it is safe (and intended) to leave in hot paths.
    """
    recorder = _active
    if recorder is None:
        return _NOOP
    return _LiveSpan(recorder, name, attrs)


def get_recorder() -> Optional[TraceRecorder]:
    return _active


def set_recorder(recorder: Optional[TraceRecorder]) -> Optional[TraceRecorder]:
    """Install (or with None, remove) the active recorder; returns the old one."""
    global _active
    previous = _active
    _active = recorder
    return previous


@contextlib.contextmanager
def recording(recorder: Optional[TraceRecorder] = None) -> Iterator[TraceRecorder]:
    """Activate a recorder for the duration of the ``with`` block."""
    recorder = recorder if recorder is not None else TraceRecorder()
    previous = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)


@contextlib.contextmanager
def timed_stage(name: str, registry=None, **attrs: Any) -> Iterator[None]:
    """Span + EWMA timer in one: the standard stage instrumentation.

    Emits a span named ``name`` (when tracing is active) and always
    updates the ``<name>_s`` timer in ``registry`` (the default metrics
    registry when omitted).
    """
    from repro.telemetry.metrics import default_registry

    registry = registry if registry is not None else default_registry()
    start = time.perf_counter()
    with span(name, **attrs):
        yield
    registry.timer(name + "_s").update(time.perf_counter() - start)
