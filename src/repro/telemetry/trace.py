"""Span-based wall-time tracing with JSONL and Chrome-trace export.

A *span* is one named, timed region of execution; spans nest, forming
the run's call-tree skeleton (epoch > batch, attack > quantize >
cluster).  Instrumented library code wraps its stages in
``with span("attack.training"):`` unconditionally -- when no
:class:`TraceRecorder` is installed the context manager is a shared
no-op object, so the disabled fast path costs one global read and two
trivial method calls.

Enable tracing with :func:`recording`::

    with recording() as recorder:
        run_quantized_correlation_attack(...)
    recorder.to_chrome_trace("trace.json")   # open in chrome://tracing
    recorder.to_jsonl("trace.jsonl")

Tracing is *distributed*: a recorder carries a trace id and exposes
:meth:`TraceRecorder.context`, a small picklable :class:`TraceContext`
that ``repro.parallel`` ships into worker processes.  The worker builds
an aligned recorder with :func:`worker_recorder` (its timestamps land
on the parent's timeline via a wall-clock handshake), records spans as
usual, and ships them back for :meth:`TraceRecorder.merge_spans`; the
merged Chrome trace then shows one lane per worker process (stable
pids, ``process_name`` metadata) under the parent's sweep span.
"""

from __future__ import annotations

import contextlib
import itertools
import json
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Set


@dataclass
class SpanRecord:
    """One finished span: [start, start+duration) seconds from the epoch.

    ``span_id`` / ``parent_id`` give the span a stable identity inside
    its process (0 = no parent); ``pid`` is the recording process, so a
    merged multi-process trace keeps worker spans on distinct lanes.
    """

    name: str
    start: float
    duration: float
    depth: int
    thread_id: int
    attrs: Dict[str, Any] = field(default_factory=dict)
    span_id: int = 0
    parent_id: int = 0
    pid: int = 0

    @property
    def end(self) -> float:
        return self.start + self.duration

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "depth": self.depth,
            "thread_id": self.thread_id,
            "attrs": self.attrs,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": self.pid,
        }


@dataclass
class TraceContext:
    """Picklable trace handoff shipped into worker processes.

    ``origin_wall`` is the wall-clock instant of the parent recorder's
    time origin; a worker aligns its own monotonic clock against it so
    shipped-back spans land directly on the parent timeline (wall-clock
    agreement on one machine is ~ms, far below span granularity).
    ``parent_span_id`` is the span open at capture time -- worker root
    spans are re-parented onto it when merged.
    """

    trace_id: str
    origin_wall: float
    parent_span_id: int = 0


def new_trace_id() -> str:
    """A short unique id shared by every span of one distributed trace."""
    return uuid.uuid4().hex[:16]


class TraceRecorder:
    """Collects finished spans; timestamps are relative to construction."""

    def __init__(self, trace_id: Optional[str] = None) -> None:
        self.spans: List[SpanRecord] = []
        self.trace_id = trace_id if trace_id is not None else new_trace_id()
        self._origin = time.perf_counter()
        self._origin_wall = time.time()
        self._lock = threading.Lock()
        self._depth = threading.local()
        self._ids = itertools.count(1)
        # spans merged from other processes label their pid lane here
        self._process_labels: Dict[int, str] = {os.getpid(): "repro main"}
        # (pid, tid) -> display name for synthetic lanes (request lanes)
        self._thread_labels: Dict[Any, str] = {}
        # worker-side recorders re-parent their root spans onto the
        # parent process's span that was open at context capture
        self._root_parent_id = 0

    # -------------------------------------------------------------- record
    def _stack(self) -> List[int]:
        stack = getattr(self._depth, "stack", None)
        if stack is None:
            stack = self._depth.stack = []
        return stack

    def _current_depth(self) -> int:
        return len(self._stack())

    def _push(self):
        """Open a span: returns ``(depth, span_id, parent_id)``."""
        stack = self._stack()
        depth = len(stack)
        span_id = next(self._ids)
        parent_id = stack[-1] if stack else self._root_parent_id
        stack.append(span_id)
        return depth, span_id, parent_id

    def _pop(self) -> None:
        stack = self._stack()
        if stack:
            stack.pop()

    def add(self, name: str, start: float, duration: float, depth: int,
            attrs: Dict[str, Any], span_id: int = 0,
            parent_id: int = 0, thread_id: Optional[int] = None) -> None:
        record = SpanRecord(
            name=name, start=start, duration=duration, depth=depth,
            thread_id=(threading.get_ident() if thread_id is None
                       else int(thread_id)),
            attrs=attrs,
            span_id=span_id, parent_id=parent_id, pid=os.getpid(),
        )
        with self._lock:
            self.spans.append(record)

    def label_thread(self, thread_id: int, label: str,
                     pid: Optional[int] = None) -> None:
        """Name one tid lane in the Chrome trace (``thread_name`` meta).

        Synthetic lanes -- per-request lanes from
        :mod:`repro.serve.tracing` -- pick tids outside the range of
        real thread idents and label them here so the trace viewer
        shows "request lane 3" instead of a bare number.
        """
        with self._lock:
            self._thread_labels[(pid or os.getpid(), int(thread_id))] = label

    def next_span_id(self) -> int:
        """Allocate a span id for externally-assembled spans.

        :class:`~repro.serve.tracing.RequestTracer` builds its spans
        from explicit timestamps rather than ``with span(...)`` blocks
        (the stages cross async/executor boundaries), but still needs
        ids from the recorder's sequence so parent links cannot collide
        with live spans.
        """
        return next(self._ids)

    # ------------------------------------------------- distributed tracing
    def context(self) -> TraceContext:
        """Capture a :class:`TraceContext` for handing to a worker.

        The parent span id is the innermost span currently open on the
        calling thread (0 when none).
        """
        stack = self._stack()
        return TraceContext(
            trace_id=self.trace_id,
            origin_wall=self._origin_wall,
            parent_span_id=stack[-1] if stack else 0,
        )

    def drain_dicts(self) -> List[Dict[str, Any]]:
        """Pop every recorded span as plain dicts (the worker wire format)."""
        with self._lock:
            spans, self.spans = self.spans, []
        return [record.to_dict() for record in spans]

    def merge_spans(self, spans: Sequence[Mapping[str, Any]],
                    label: Optional[str] = None) -> None:
        """Fold spans shipped back from another process into this trace.

        ``spans`` are :meth:`SpanRecord.to_dict` dicts whose timestamps
        were already aligned to this recorder's timeline by
        :func:`worker_recorder`.  Each foreign pid gets a stable lane
        label (``label`` or ``worker pid=N``) used by the Chrome-trace
        ``process_name`` metadata.
        """
        merged: List[SpanRecord] = []
        for data in spans:
            pid = int(data.get("pid", 0))
            merged.append(SpanRecord(
                name=str(data["name"]),
                start=float(data["start"]),
                duration=float(data["duration"]),
                depth=int(data.get("depth", 0)),
                thread_id=int(data.get("thread_id", 0)),
                attrs=dict(data.get("attrs", {})),
                span_id=int(data.get("span_id", 0)),
                parent_id=int(data.get("parent_id", 0)),
                pid=pid,
            ))
        with self._lock:
            self.spans.extend(merged)
            for record in merged:
                if record.pid and record.pid not in self._process_labels:
                    self._process_labels[record.pid] = (
                        label if label is not None
                        else f"worker pid={record.pid}")

    # ------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self.spans)

    def by_name(self, name: str) -> List[SpanRecord]:
        return [s for s in self.spans if s.name == name]

    def total_time(self, name: str) -> float:
        """Summed wall time of every span with ``name``."""
        return sum(s.duration for s in self.by_name(name))

    def roots(self) -> List[SpanRecord]:
        return [s for s in self.spans if s.depth == 0]

    # -------------------------------------------------------------- export
    def to_jsonl(self, path: os.PathLike) -> None:
        """One JSON object per line, in completion order."""
        with open(path, "w", encoding="utf-8") as handle:
            for record in self.spans:
                handle.write(json.dumps(record.to_dict(), sort_keys=True))
                handle.write("\n")

    def chrome_trace(self) -> Dict[str, Any]:
        """The Chrome trace-event JSON object (``ph: "X"`` complete events).

        Metadata events (``ph: "M"``) name each process lane and pin a
        stable sort order -- the parent process first, then workers by
        pid -- so a merged multi-process trace renders each worker on
        its own non-interleaved lane in ``chrome://tracing``.
        """
        own_pid = os.getpid()
        events: List[Dict[str, Any]] = []
        lanes: Dict[int, Set[int]] = {}
        for record in self.spans:
            pid = record.pid or own_pid
            lanes.setdefault(pid, set()).add(record.thread_id)
            events.append({
                "name": record.name,
                "cat": "repro",
                "ph": "X",
                "ts": record.start * 1e6,
                "dur": record.duration * 1e6,
                "pid": pid,
                "tid": record.thread_id,
                "args": {str(k): v for k, v in record.attrs.items()},
            })
        meta: List[Dict[str, Any]] = []
        order = sorted(lanes, key=lambda p: (p != own_pid, p))
        for sort_index, pid in enumerate(order):
            label = self._process_labels.get(
                pid, "repro main" if pid == own_pid else f"worker pid={pid}")
            meta.append({"name": "process_name", "ph": "M", "pid": pid,
                         "tid": 0, "args": {"name": label}})
            meta.append({"name": "process_sort_index", "ph": "M", "pid": pid,
                         "tid": 0, "args": {"sort_index": sort_index}})
            for tid in sorted(lanes[pid]):
                name = self._thread_labels.get((pid, tid), f"thread {tid}")
                meta.append({"name": "thread_name", "ph": "M", "pid": pid,
                             "tid": tid, "args": {"name": name}})
        return {"traceEvents": meta + events, "displayTimeUnit": "ms",
                "otherData": {"trace_id": self.trace_id}}

    def to_chrome_trace(self, path: os.PathLike) -> None:
        """Write a file loadable by chrome://tracing / Perfetto."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle, indent=1)
            handle.write("\n")


# ---------------------------------------------------------------------------
# The active recorder and the span() entry point
# ---------------------------------------------------------------------------

_active: Optional[TraceRecorder] = None


class _NoopSpan:
    """Shared do-nothing context manager: the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> bool:
        return False


_NOOP = _NoopSpan()


class _LiveSpan:
    __slots__ = ("recorder", "name", "attrs", "start", "depth",
                 "span_id", "parent_id")

    def __init__(self, recorder: TraceRecorder, name: str,
                 attrs: Dict[str, Any]) -> None:
        self.recorder = recorder
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_LiveSpan":
        self.depth, self.span_id, self.parent_id = self.recorder._push()
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> bool:
        end = time.perf_counter()
        recorder = self.recorder
        recorder._pop()
        recorder.add(self.name, self.start - recorder._origin,
                     end - self.start, self.depth, self.attrs,
                     span_id=self.span_id, parent_id=self.parent_id)
        return False


def span(name: str, **attrs: Any):
    """Context manager timing a named region under the active recorder.

    With no recorder installed this returns a shared no-op object, so
    it is safe (and intended) to leave in hot paths.
    """
    recorder = _active
    if recorder is None:
        return _NOOP
    return _LiveSpan(recorder, name, attrs)


def get_recorder() -> Optional[TraceRecorder]:
    return _active


def set_recorder(recorder: Optional[TraceRecorder]) -> Optional[TraceRecorder]:
    """Install (or with None, remove) the active recorder; returns the old one."""
    global _active
    previous = _active
    _active = recorder
    return previous


@contextlib.contextmanager
def recording(recorder: Optional[TraceRecorder] = None) -> Iterator[TraceRecorder]:
    """Activate a recorder for the duration of the ``with`` block."""
    recorder = recorder if recorder is not None else TraceRecorder()
    previous = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)


def current_trace_context() -> Optional[TraceContext]:
    """The active recorder's :class:`TraceContext`, or None when disabled.

    This is what task dispatchers (``repro.parallel``) capture and ship
    to worker processes alongside the task payload.
    """
    recorder = _active
    if recorder is None:
        return None
    return recorder.context()


def worker_recorder(ctx: TraceContext) -> TraceRecorder:
    """Build a recorder inside a worker, aligned to the parent timeline.

    The worker's monotonic origin is back-dated by the wall-clock gap
    since the parent's origin, so span ``start`` values are directly
    comparable with (and mergeable into) the parent recorder.  Root
    spans recorded here are parented onto ``ctx.parent_span_id``; span
    ids are offset into a per-pid block so they cannot collide with the
    parent's or a sibling worker's ids after the merge.
    """
    recorder = TraceRecorder(trace_id=ctx.trace_id)
    recorder._origin = time.perf_counter() - (time.time() - ctx.origin_wall)
    recorder._origin_wall = ctx.origin_wall
    recorder._root_parent_id = ctx.parent_span_id
    recorder._ids = itertools.count(os.getpid() * 1_000_000 + 1)
    return recorder


@contextlib.contextmanager
def timed_stage(name: str, registry=None, **attrs: Any) -> Iterator[None]:
    """Span + EWMA timer in one: the standard stage instrumentation.

    Emits a span named ``name`` (when tracing is active) and always
    updates the ``<name>_s`` timer in ``registry`` (the default metrics
    registry when omitted).
    """
    from repro.telemetry.metrics import default_registry

    registry = registry if registry is not None else default_registry()
    start = time.perf_counter()
    with span(name, **attrs):
        yield
    registry.timer(name + "_s").update(time.perf_counter() - start)
