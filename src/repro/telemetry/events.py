"""Structured run logging: leveled JSONL events and the RunManifest.

Events are one JSON object per line -- machine-parsable, diffable, and
greppable -- tagged with a run id so interleaved runs can be separated.
The :class:`RunManifest` is the durable summary written next to result
files by :mod:`repro.pipeline.results_io`: run id, seed, a config
fingerprint, and the final telemetry snapshot, which together make a
result reproducible and a regression attributable.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import sys
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, TextIO, Union

from repro.errors import ConfigError

LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warning": 30, "error": 40}


def _level_value(level: Union[str, int]) -> int:
    if isinstance(level, int):
        return level
    try:
        return LEVELS[level.lower()]
    except KeyError:
        raise ConfigError(
            f"unknown log level {level!r}; expected one of {sorted(LEVELS)}"
        ) from None


def new_run_id() -> str:
    """A short unique id tagging every event/manifest of one run."""
    return uuid.uuid4().hex[:12]


def _canonical(value: Any) -> Any:
    """Reduce configs to canonical JSON-ready data for fingerprinting."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _canonical(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, (int, float)):
        return value
    if hasattr(value, "item") and getattr(value, "ndim", None) == 0:
        return value.item()  # numpy scalar
    return repr(value)


def config_fingerprint(*configs: Any) -> str:
    """Stable 16-hex-digit hash of one or more config objects.

    Dataclasses, dicts, sequences and scalars hash structurally; any
    other object hashes by ``repr``.  Two runs with equal fingerprints
    ran the same configuration.
    """
    canon = [_canonical(c) for c in configs]
    payload = json.dumps(canon if len(canon) != 1 else canon[0],
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class EventLogger:
    """Leveled JSONL event sink.

    Events go to ``path`` (append) and/or ``stream``; the most recent
    ``buffer`` events are also retained in memory (``records``) for
    tests and interactive inspection.  Below-threshold events are
    dropped before any formatting work happens.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        stream: Optional[TextIO] = None,
        level: Union[str, int] = "info",
        run_id: Optional[str] = None,
        buffer: int = 1000,
    ) -> None:
        self.level = _level_value(level)
        self.run_id = run_id if run_id is not None else new_run_id()
        self.records: deque = deque(maxlen=buffer)
        self._stream = stream
        self._handle: Optional[TextIO] = None
        if path is not None:
            self._handle = open(path, "a", encoding="utf-8")

    def set_level(self, level: Union[str, int]) -> None:
        self.level = _level_value(level)

    def is_enabled(self, level: Union[str, int]) -> bool:
        return _level_value(level) >= self.level

    def log(self, level: Union[str, int], event: str, **fields: Any) -> None:
        value = _level_value(level)
        if value < self.level:
            return
        name = level if isinstance(level, str) else str(level)
        record = {"ts": time.time(), "level": name, "run_id": self.run_id,
                  "event": event}
        record.update(fields)
        self.records.append(record)
        line = json.dumps(record, sort_keys=True, default=repr)
        if self._handle is not None:
            self._handle.write(line + "\n")
            self._handle.flush()
        if self._stream is not None:
            self._stream.write(line + "\n")

    def debug(self, event: str, **fields: Any) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log("error", event, **fields)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "EventLogger":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


# The library-wide logger.  Quiet by default (warnings only, in memory);
# the CLI raises verbosity with --log-level / routes it to a file.
_default_logger: Optional[EventLogger] = None


def get_logger() -> EventLogger:
    global _default_logger
    if _default_logger is None:
        _default_logger = EventLogger(level="warning")
    return _default_logger


def configure_logging(
    path: Optional[str] = None,
    stream: Optional[TextIO] = None,
    level: Union[str, int] = "info",
    run_id: Optional[str] = None,
) -> EventLogger:
    """Replace the library-wide logger (closing the previous one)."""
    global _default_logger
    if _default_logger is not None:
        _default_logger.close()
    _default_logger = EventLogger(path=path, stream=stream, level=level,
                                  run_id=run_id)
    return _default_logger


@dataclass
class RunManifest:
    """Who/what/how of one experiment run, written beside its results."""

    run_id: str
    seed: Optional[int] = None
    config_hash: Optional[str] = None
    created_at: float = 0.0
    backend: Optional[str] = None
    workers: Optional[int] = None
    timeseries: Optional[str] = None
    telemetry: Dict[str, Any] = field(default_factory=dict)
    extra: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def create(
        cls,
        seed: Optional[int] = None,
        config: Any = None,
        telemetry: Optional[Dict[str, Any]] = None,
        run_id: Optional[str] = None,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        timeseries: Optional[str] = None,
        **extra: Any,
    ) -> "RunManifest":
        """Build a manifest for the current process state.

        ``config`` may be any fingerprintable object (dataclass, dict,
        tuple of configs); ``telemetry`` defaults to the default
        registry's snapshot.  ``backend`` defaults to the active kernel
        backend's name, so every manifest records which dispatch layer
        produced its numbers; ``workers`` is the experiment's worker
        count (``None`` = serial) and ``timeseries`` the path of the
        run's monitor timeseries, when one was recorded.
        """
        if telemetry is None:
            from repro.telemetry.metrics import default_registry
            telemetry = default_registry().snapshot()
        if backend is None:
            try:
                from repro import backend as _backend
                backend = _backend.active().name
            except Exception:
                backend = None
        if "metrics_endpoint" not in extra:
            try:
                from repro.telemetry.export import active_exporter
                exporter = active_exporter()
                if exporter is not None:
                    extra["metrics_endpoint"] = exporter.url
            except Exception:
                pass
        if "graph" not in extra:
            # graph-compiler activity: captures/replays/fallbacks plus
            # the backend's compile-related capability flags, so a
            # manifest records whether its numbers came from compiled
            # replays and under which kernel capabilities
            try:
                from repro import backend as _backend_mod
                from repro import graph as _graph
                active_b = _backend_mod.active()
                extra["graph"] = {
                    "compile_default": _graph.compile_default(),
                    "stats": _graph.stats(),
                    "capabilities": {
                        flag: bool(getattr(active_b, flag, False))
                        for flag in ("graph_compiler", "fusion", "tiling")
                    },
                }
            except Exception:
                pass
        return cls(
            run_id=run_id if run_id is not None else get_logger().run_id,
            seed=None if seed is None else int(seed),
            config_hash=None if config is None else config_fingerprint(config),
            created_at=time.time(),
            backend=backend,
            workers=None if workers is None else int(workers),
            timeseries=None if timeseries is None else str(timeseries),
            telemetry=dict(telemetry),
            extra=dict(extra),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "run_id": self.run_id,
            "seed": self.seed,
            "config_hash": self.config_hash,
            "created_at": self.created_at,
            "backend": self.backend,
            "workers": self.workers,
            "timeseries": self.timeseries,
            "telemetry": self.telemetry,
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunManifest":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(f"manifest has unknown fields {sorted(unknown)}")
        if "run_id" not in data:
            raise ConfigError("manifest is missing 'run_id'")
        return cls(**data)
