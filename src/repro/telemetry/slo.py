"""Fixed-bucket SLO histograms: mergeable latency distributions.

The PR-6 :class:`~repro.telemetry.metrics.Histogram` answers "what did
latency look like *here*" with a sliding sample window -- good for a
single process, but its quantiles are not mergeable: two windows from
two shard workers cannot be combined without resampling bias.  SLO
accounting needs the opposite trade: **fixed log-spaced buckets** whose
counts add exactly across processes, so a fleet-wide p99 is computed
the same way Prometheus computes ``histogram_quantile`` -- from one
summed bucket vector.

:class:`SloHistogram` keeps

* a bucket-count vector over log-spaced upper bounds (default
  ``lo=0.01`` to ``hi=1e5`` at 10 buckets/decade: microseconds to
  ~100 s when the unit is milliseconds, 71 buckets),
* exact ``count`` / ``sum`` / ``min`` / ``max`` over the full stream,
* an optional SLO target: observations above it bump ``breaches``,
  which is what the ``latency_slo`` burn-rate alert rule watches.

Quantiles interpolate at the geometric midpoint of the answering
bucket and are clamped to the observed ``[min, max]``, so the error is
bounded by the bucket ratio (~12% at 10 buckets/decade) and exact at
the extremes.  ``merge_snapshot`` adds bucket vectors elementwise when
the bucket layouts match -- cross-process quantiles stay *exact* under
merge, unlike the windowed histogram -- and degrades to
count/sum/min/max folding otherwise.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import ConfigError

__all__ = ["SloHistogram", "bucket_edges"]


def bucket_edges(lo: float = 0.01, hi: float = 1e5,
                 buckets_per_decade: int = 10) -> Tuple[float, ...]:
    """Log-spaced bucket upper bounds from ``lo`` to at least ``hi``.

    ``edges[i] = lo * 10**(i / buckets_per_decade)``; the last edge is
    the first one >= ``hi``.  Rounded to 9 significant digits so two
    processes computing the layout independently agree bit-for-bit
    (layout equality is what gates the exact merge path).
    """
    if lo <= 0 or hi <= lo:
        raise ConfigError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
    if buckets_per_decade < 1:
        raise ConfigError(
            f"buckets_per_decade must be >= 1, got {buckets_per_decade}")
    edges: List[float] = []
    i = 0
    while True:
        edge = float(f"{lo * 10.0 ** (i / buckets_per_decade):.9g}")
        edges.append(edge)
        if edge >= hi:
            break
        i += 1
    return tuple(edges)


class SloHistogram:
    """Mergeable fixed-bucket latency histogram with SLO breach counting.

    Args:
        name: metric name (``serve.slo.latency_ms``).
        lo: smallest bucket upper bound (values below land in bucket 0).
        hi: largest finite bucket bound (values above land in overflow).
        buckets_per_decade: bucket density; 10 bounds quantile error at
            ``10**0.1 - 1`` (~26% worst case, ~12% typical).
        slo: optional target in the same unit as observations; values
            strictly above it count as breaches.
    """

    __slots__ = ("name", "lo", "hi", "buckets_per_decade", "slo",
                 "edges", "counts", "count", "total", "min", "max",
                 "breaches")

    def __init__(self, name: str, lo: float = 0.01, hi: float = 1e5,
                 buckets_per_decade: int = 10,
                 slo: Optional[float] = None) -> None:
        self.name = name
        self.lo = float(lo)
        self.hi = float(hi)
        self.buckets_per_decade = int(buckets_per_decade)
        self.slo = float(slo) if slo is not None else None
        self.edges = bucket_edges(self.lo, self.hi, self.buckets_per_decade)
        # counts[i] <= edges[i]; counts[-1] is the overflow bucket
        self.counts = [0] * (len(self.edges) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.breaches = 0

    # --------------------------------------------------------------- observe
    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.counts[bisect_left(self.edges, value)] += 1
        if self.slo is not None and value > self.slo:
            self.breaches += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    # -------------------------------------------------------------- quantile
    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile, clamped to observed [min, max]."""
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return float("nan")
        rank = max(1, math.ceil(q * self.count))
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank:
                break
        else:  # pragma: no cover - counts always sum to self.count
            index = len(self.counts) - 1
        if index >= len(self.edges):  # overflow bucket
            estimate = self.max
        else:
            upper = self.edges[index]
            lower = self.edges[index - 1] if index else \
                upper / (10.0 ** (1.0 / self.buckets_per_decade))
            estimate = math.sqrt(lower * upper)
        return min(self.max, max(self.min, estimate))

    def percentiles(self) -> Dict[str, float]:
        return {"p50": self.quantile(0.5), "p90": self.quantile(0.9),
                "p99": self.quantile(0.99), "p999": self.quantile(0.999)}

    # -------------------------------------------------------------- snapshot
    def snapshot(self) -> Dict[str, Any]:
        snap: Dict[str, Any] = {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else float("nan"),
            "max": self.max if self.count else float("nan"),
            "breaches": float(self.breaches),
            "lo": self.lo,
            "hi": self.hi,
            "buckets_per_decade": self.buckets_per_decade,
            "counts": list(self.counts),
        }
        snap.update(self.percentiles())
        if self.slo is not None:
            snap["slo"] = self.slo
        return snap

    def merge_snapshot(self, other: Mapping[str, Any]) -> None:
        """Fold another SloHistogram's snapshot into this one.

        With an identical bucket layout the bucket vectors add
        elementwise, so merged quantiles are exactly what a single
        process observing both streams would report.  A mismatched
        layout degrades to count/sum/min/max/breaches folding (the
        merged quantiles then describe only locally bucketed values).
        """
        count = int(other.get("count", 0))
        if count <= 0:
            return
        counts = other.get("counts")
        same_layout = (
            isinstance(counts, (list, tuple))
            and len(counts) == len(self.counts)
            and float(other.get("lo", -1.0)) == self.lo
            and float(other.get("hi", -1.0)) == self.hi
            and int(other.get("buckets_per_decade", -1))
            == self.buckets_per_decade)
        if same_layout:
            for index, bucket_count in enumerate(counts):
                self.counts[index] += int(bucket_count)
        self.count += count
        self.total += float(other.get("sum", 0.0))
        self.breaches += int(float(other.get("breaches", 0.0)))
        for key, fold in (("min", min), ("max", max)):
            value = float(other.get(key, float("nan")))
            if not math.isnan(value):
                setattr(self, key, fold(getattr(self, key), value))

    def reset(self) -> None:
        self.counts = [0] * (len(self.edges) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.breaches = 0
