"""Observability layer: metrics, tracing, structured logging, profiling.

Four pieces, designed to stay permanently wired into the library's hot
paths at near-zero disabled cost:

* :mod:`repro.telemetry.metrics` -- counters / gauges / histograms /
  EWMA timers in a process-global :func:`default_registry`.
* :mod:`repro.telemetry.trace` -- nested wall-time spans via
  ``with span(name):``, exported as JSONL or Chrome trace format.
* :mod:`repro.telemetry.events` -- leveled JSONL event log plus the
  :class:`RunManifest` written next to experiment results.
* :mod:`repro.telemetry.profiler` -- per-op forward/backward timing of
  the autograd dispatch (``with profile() as prof:``).

Quick look at everything after a run::

    from repro.telemetry import default_registry
    print(default_registry().render_table())
"""

from repro.telemetry.metrics import (
    Counter,
    EwmaTimer,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from repro.telemetry.slo import SloHistogram, bucket_edges
from repro.telemetry.trace import (
    SpanRecord,
    TraceContext,
    TraceRecorder,
    current_trace_context,
    get_recorder,
    recording,
    set_recorder,
    span,
    timed_stage,
    worker_recorder,
)
from repro.telemetry.sampler import StackSampler, compare_with_profile
from repro.telemetry.export import (
    MetricsExporter,
    active_exporter,
    health_snapshot,
    prometheus_text,
    serve_metrics,
    stop_exporter,
    update_health,
)
from repro.telemetry.events import (
    EventLogger,
    RunManifest,
    config_fingerprint,
    configure_logging,
    get_logger,
    new_run_id,
)
from repro.telemetry.profiler import (
    KernelStat,
    OpProfile,
    OpStat,
    active_profile,
    profile,
)
from repro.telemetry.tables import format_records, format_table, percent

__all__ = [
    "Counter", "Gauge", "Histogram", "EwmaTimer", "MetricsRegistry",
    "default_registry", "SloHistogram", "bucket_edges",
    "SpanRecord", "TraceContext", "TraceRecorder", "span", "recording",
    "get_recorder", "set_recorder", "timed_stage", "current_trace_context",
    "worker_recorder",
    "StackSampler", "compare_with_profile",
    "MetricsExporter", "active_exporter", "health_snapshot",
    "prometheus_text", "serve_metrics", "stop_exporter", "update_health",
    "EventLogger", "RunManifest", "config_fingerprint", "configure_logging",
    "get_logger", "new_run_id",
    "KernelStat", "OpProfile", "OpStat", "active_profile", "profile",
    "format_records", "format_table", "percent",
]
