"""Fast backend: cached indices, slice-accumulation col2im, fused kernels.

Overrides the hot kernels of :mod:`repro.backend.reference` with
implementations that avoid repeated work, and falls back to reference
for everything else.  All outputs must stay ``allclose`` (rtol <=
1e-6) to reference on every registered kernel -- the equivalence suite
(:mod:`repro.backend.equivalence`) enforces this on randomized shapes.

What makes it fast:

* **Shape-keyed index caches.**  ``im2col_indices`` builds the same
  gather arrays for every (shape, kernel, stride, padding) combination;
  a bounded LRU keyed on those parameters makes repeat calls (every
  batch of every epoch) free.
* **Slice-accumulation col2im.**  Reference ``col2im`` uses
  ``np.add.at``, an order of magnitude slower than one vectorized
  strided ``+=`` per kernel tap into a batch-last accumulator that
  matches cols' memory order (see :func:`col2im`).
* **Fused conv+bias+relu inference** (``conv2d_infer``) adds the bias
  in-place on the matmul output and applies relu with ``out=``,
  skipping two full-tensor allocations per call.
* **Scratch-buffer pools.**  Padded inputs, matmul outputs, and the
  flattened-gradient intermediates of ``conv2d_backward`` are recycled
  through a small (shape, dtype)-keyed pool, avoiding repeated
  multi-megabyte mmap/page-fault cycles.  Pools hold *internal*
  scratch only -- anything a kernel returns or that an op saves for
  backward (e.g. the ``cols`` patch matrix) is always freshly
  allocated, because pooled memory is reused on the next call and
  would corrupt saved state.
* **Gradient skipping.**  ``conv2d_backward(need_input_grad=False)``
  omits the input-gradient matmul and scatter entirely for graph
  leaves (the data batch feeding the first layer never needs one).
* **One-pass batchnorm statistics** (``E[x^2] - mean^2``), an
  inference batchnorm with precomputed scale/shift, and a fused
  batch-norm training step (forward and analytic backward as single
  kernels instead of ~20 composed elementwise graph ops).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.backend import reference
from repro.backend.registry import Backend

BACKEND = Backend("fast", fallback=reference.BACKEND)

_CACHE_SIZE = 64


class _LRU(OrderedDict):
    """Bounded mapping with true LRU order and an eviction counter.

    Hits refresh recency (``touch``), so steady-state workloads that
    cycle through more shapes than ``capacity`` evict the coldest key,
    not merely the oldest insertion.  Evictions are counted locally and
    mirrored to the ``backend.im2col_cache_evictions`` telemetry
    counter; the current size is published on the
    ``backend.im2col_cache_size`` gauge.
    """

    def __init__(self, capacity: int = _CACHE_SIZE) -> None:
        super().__init__()
        self.capacity = int(capacity)
        self.evictions = 0

    def _evict_to_capacity(self) -> None:
        evicted = 0
        while len(self) > self.capacity:
            self.popitem(last=False)
            evicted += 1
        if evicted:
            self.evictions += evicted
            _cache_telemetry(evicted, len(self))

    def put(self, key, value):
        self[key] = value
        self._evict_to_capacity()

    def touch(self, key) -> None:
        self.move_to_end(key)

    def resize(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = int(capacity)
        self._evict_to_capacity()


def _cache_telemetry(evicted: int, size: int) -> None:
    try:
        from repro.telemetry.metrics import default_registry
    except Exception:  # pragma: no cover - telemetry is optional here
        return
    registry = default_registry()
    registry.counter("backend.im2col_cache_evictions").inc(evicted)
    registry.gauge("backend.im2col_cache_size").set(size)


_indices_cache: "_LRU" = _LRU()


def set_index_cache_capacity(capacity: int) -> int:
    """Resize the im2col index cache; returns the previous capacity."""
    previous = _indices_cache.capacity
    _indices_cache.resize(capacity)
    return previous


def index_cache_stats() -> Dict[str, int]:
    """Size, capacity, and cumulative eviction count of the index cache."""
    return {
        "size": len(_indices_cache),
        "capacity": _indices_cache.capacity,
        "evictions": _indices_cache.evictions,
    }


def cached_im2col_indices(
    shape: Tuple[int, int, int, int], kh: int, kw: int, stride: int, padding: int
):
    """Reference ``im2col_indices`` memoized on everything but batch size."""
    _, channels, height, width = shape
    key = (channels, height, width, kh, kw, stride, padding)
    hit = _indices_cache.get(key)
    if hit is None:
        k, i, j, out_h, out_w = reference.im2col_indices(
            shape, kh, kw, stride, padding
        )
        hit = (k, i, j, out_h, out_w)
        _indices_cache.put(key, hit)
    else:
        _indices_cache.touch(key)
    return hit


def clear_caches() -> None:
    """Drop all cached index arrays and pooled buffers (tests, memory)."""
    _indices_cache.clear()
    _pool.clear()


# ---------------------------------------------------------------------------
# Scratch-buffer pool (internal scratch ONLY -- never for returned arrays)
# ---------------------------------------------------------------------------


class BufferPool:
    """Recycles fixed-shape scratch arrays keyed by (shape, dtype).

    ``take`` hands out an uninitialized (or stale) buffer; ``give``
    returns it for reuse.  Callers must never ``give`` an array that
    escapes the kernel -- pooled memory is overwritten by the next
    ``take`` of the same shape.
    """

    def __init__(self, max_per_key: int = 4) -> None:
        self.max_per_key = max_per_key
        self._free: Dict[Tuple[Tuple[int, ...], np.dtype], List[np.ndarray]] = {}

    def take(self, shape: Tuple[int, ...], dtype) -> np.ndarray:
        key = (tuple(shape), np.dtype(dtype))
        stack = self._free.get(key)
        if stack:
            return stack.pop()
        return np.empty(shape, dtype=dtype)

    def give(self, array: np.ndarray) -> None:
        key = (array.shape, array.dtype)
        stack = self._free.setdefault(key, [])
        if len(stack) < self.max_per_key:
            stack.append(array)

    def clear(self) -> None:
        self._free.clear()


_pool = BufferPool()


def _pad_input(x: np.ndarray, padding: int) -> Tuple[np.ndarray, bool]:
    """Zero-padded copy of x from the pool; (array, pooled) pair."""
    if padding <= 0:
        return x, False
    batch, channels, height, width = x.shape
    buf = _pool.take(
        (batch, channels, height + 2 * padding, width + 2 * padding), x.dtype
    )
    buf.fill(0.0)
    buf[:, :, padding:-padding, padding:-padding] = x
    return buf, True


# ---------------------------------------------------------------------------
# im2col / col2im
# ---------------------------------------------------------------------------


@BACKEND.register()
def im2col(x: np.ndarray, kh: int, kw: int, stride: int, padding: int) -> np.ndarray:
    k, i, j, _, _ = cached_im2col_indices(x.shape, kh, kw, stride, padding)
    x_padded, pooled = _pad_input(x, padding)
    cols = x_padded[:, k, i, j]
    if pooled:
        _pool.give(x_padded)
    return cols.transpose(1, 2, 0).reshape(kh * kw * x.shape[1], -1)


@BACKEND.register()
def col2im(
    cols: np.ndarray,
    shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Strided slice-accumulation; same dtype/contiguity contract as reference.

    One vectorized ``+=`` per kernel tap (kh*kw of them) into a
    channels-first/batch-last accumulator whose memory order matches
    cols' own ``(C, kh, kw, L, batch)`` layout, so every add is a
    locality-friendly strided pass.  This touches each cols element
    exactly once with no index arrays at all -- faster than both
    ``np.add.at`` (reference) and a bincount scatter, which must stream
    an equally large int64 index array through memory.
    """
    batch, channels, height, width = shape
    p = padding
    padded_h, padded_w = height + 2 * p, width + 2 * p
    _, _, _, out_h, out_w = cached_im2col_indices(shape, kh, kw, stride, padding)
    patches = cols.reshape(channels, kh, kw, out_h, out_w, batch)
    # accumulate in (C, H, W, batch) so slice adds match cols' memory
    # order; the dtype follows cols (the float32 contract holds by
    # construction -- no float64 round trip)
    padded = np.zeros((channels, padded_h, padded_w, batch), dtype=cols.dtype)
    s = stride
    for tap_r in range(kh):
        for tap_c in range(kw):
            padded[:, tap_r:tap_r + s * out_h:s, tap_c:tap_c + s * out_w:s, :] += (
                patches[:, tap_r, tap_c]
            )
    core = padded if p == 0 else padded[:, p:padded_h - p, p:padded_w - p, :]
    return np.ascontiguousarray(core.transpose(3, 0, 1, 2))


# ---------------------------------------------------------------------------
# Convolution
# ---------------------------------------------------------------------------


@BACKEND.register()
def conv2d_forward(
    x: np.ndarray, weight: np.ndarray, stride: int, padding: int
) -> Tuple[np.ndarray, np.ndarray]:
    out_channels, _, kh, kw = weight.shape
    k, i, j, out_h, out_w = cached_im2col_indices(x.shape, kh, kw, stride, padding)
    x_padded, pooled = _pad_input(x, padding)
    # cols is handed to the caller -- it must own fresh memory, so it
    # is never drawn from the pool (the conv op discards it and
    # re-gathers in backward; see Conv2dFn)
    cols = x_padded[:, k, i, j].transpose(1, 2, 0).reshape(kh * kw * x.shape[1], -1)
    if pooled:
        _pool.give(x_padded)
    scratch = _pool.take((out_channels, cols.shape[1]), cols.dtype)
    np.matmul(weight.reshape(out_channels, -1), cols, out=scratch)
    out = np.ascontiguousarray(
        scratch.reshape(out_channels, out_h, out_w, x.shape[0]).transpose(3, 0, 1, 2)
    )
    _pool.give(scratch)
    return out, cols


@BACKEND.register()
def conv2d_backward(
    grad: np.ndarray,
    cols: np.ndarray,
    weight: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    stride: int,
    padding: int,
    need_input_grad: bool = True,
) -> Tuple[Optional[np.ndarray], np.ndarray]:
    """Weight/input gradients; ``need_input_grad=False`` skips the input half.

    The skip saves the grad_cols matmul and the col2im scatter for graph
    leaves that do not require grad (e.g. the data batch feeding the
    first conv layer).  Large intermediates live in pooled scratch.
    """
    out_channels, _, kh, kw = weight.shape
    batch, out_h, out_w = grad.shape[0], grad.shape[2], grad.shape[3]
    grad_flat = _pool.take((out_channels, batch * out_h * out_w), grad.dtype)
    np.copyto(
        grad_flat.reshape(out_channels, out_h, out_w, batch),
        grad.transpose(1, 2, 3, 0),
    )
    grad_weight = (grad_flat @ cols.T).reshape(weight.shape)
    grad_x = None
    if need_input_grad:
        grad_cols = _pool.take(cols.shape, grad.dtype)
        np.matmul(weight.reshape(out_channels, -1).T, grad_flat, out=grad_cols)
        grad_x = col2im(grad_cols, x_shape, kh, kw, stride, padding)
        _pool.give(grad_cols)
    _pool.give(grad_flat)
    return grad_x, grad_weight


@BACKEND.register()
def conv2d_infer(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray],
    stride: int,
    padding: int,
    relu: bool = False,
) -> np.ndarray:
    """Fused conv+bias+relu: epilogue applied in place on the matmul output."""
    out_channels, _, kh, kw = weight.shape
    k, i, j, out_h, out_w = cached_im2col_indices(x.shape, kh, kw, stride, padding)
    x_padded, pooled = _pad_input(x, padding)
    cols = x_padded[:, k, i, j].transpose(1, 2, 0).reshape(kh * kw * x.shape[1], -1)
    if pooled:
        _pool.give(x_padded)
    scratch = _pool.take((out_channels, cols.shape[1]), cols.dtype)
    out = np.matmul(weight.reshape(out_channels, -1), cols, out=scratch)
    if bias is not None:
        out += bias.reshape(-1, 1)
    if relu:
        np.maximum(out, 0.0, out=out)
    result = np.ascontiguousarray(
        out.reshape(out_channels, out_h, out_w, x.shape[0]).transpose(3, 0, 1, 2)
    )
    _pool.give(scratch)
    return result


# ---------------------------------------------------------------------------
# Pooling
# ---------------------------------------------------------------------------


@BACKEND.register()
def maxpool2d_forward(
    x: np.ndarray, kernel: int, stride: int
) -> Tuple[np.ndarray, np.ndarray]:
    batch, channels, _, _ = x.shape
    reshaped = x.reshape(batch * channels, 1, *x.shape[2:])
    k, i, j, out_h, out_w = cached_im2col_indices(
        reshaped.shape, kernel, kernel, stride, 0
    )
    cols = reshaped[:, k, i, j].transpose(1, 2, 0).reshape(kernel * kernel, -1)
    argmax = np.argmax(cols, axis=0)
    out = cols[argmax, np.arange(cols.shape[1])]
    out = np.ascontiguousarray(
        out.reshape(out_h, out_w, batch * channels).transpose(2, 0, 1)
    ).reshape(batch, channels, out_h, out_w)
    return out, argmax


@BACKEND.register()
def maxpool2d_infer(x: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    batch, channels, _, _ = x.shape
    reshaped = x.reshape(batch * channels, 1, *x.shape[2:])
    k, i, j, out_h, out_w = cached_im2col_indices(
        reshaped.shape, kernel, kernel, stride, 0
    )
    cols = reshaped[:, k, i, j].transpose(1, 2, 0).reshape(kernel * kernel, -1)
    out = cols.max(axis=0)
    return np.ascontiguousarray(
        out.reshape(out_h, out_w, batch * channels).transpose(2, 0, 1)
    ).reshape(batch, channels, out_h, out_w)


@BACKEND.register()
def maxpool2d_backward(
    grad: np.ndarray,
    argmax: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
) -> np.ndarray:
    batch, channels, height, width = x_shape
    reshaped_shape = (batch * channels, 1, height, width)
    grad_flat = grad.reshape(batch * channels, -1).transpose(1, 0).reshape(-1)
    grad_cols = np.zeros((kernel * kernel, grad_flat.size), dtype=grad.dtype)
    grad_cols[argmax, np.arange(grad_cols.shape[1])] = grad_flat
    grad_reshaped = col2im(grad_cols, reshaped_shape, kernel, kernel, stride, 0)
    return grad_reshaped.reshape(x_shape)


@BACKEND.register()
def avgpool2d_backward(
    grad: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
) -> np.ndarray:
    batch, channels, height, width = x_shape
    reshaped_shape = (batch * channels, 1, height, width)
    grad_flat = grad.reshape(batch * channels, -1).transpose(1, 0).reshape(-1)
    grad_cols = np.broadcast_to(
        grad_flat / (kernel * kernel), (kernel * kernel, grad_flat.size)
    ).copy()
    grad_reshaped = col2im(grad_cols, reshaped_shape, kernel, kernel, stride, 0)
    return grad_reshaped.reshape(x_shape)


@BACKEND.register()
def avgpool2d_forward(x: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    batch, channels, _, _ = x.shape
    reshaped = x.reshape(batch * channels, 1, *x.shape[2:])
    k, i, j, out_h, out_w = cached_im2col_indices(
        reshaped.shape, kernel, kernel, stride, 0
    )
    cols = reshaped[:, k, i, j].transpose(1, 2, 0).reshape(kernel * kernel, -1)
    out = cols.mean(axis=0)
    return np.ascontiguousarray(
        out.reshape(out_h, out_w, batch * channels).transpose(2, 0, 1)
    ).reshape(batch, channels, out_h, out_w)


# ---------------------------------------------------------------------------
# Gradient-buffer reuse
# ---------------------------------------------------------------------------


@BACKEND.register()
def broadcast_copy(a: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Pool-backed broadcast: the Sum/Mean backward's full-size gradient.

    These buffers are exactly what ``Tensor.backward`` recycles through
    :data:`recycle_buffer` once consumed, so drawing them from the pool
    closes the reuse loop -- one allocation per (shape, dtype) instead
    of one per op per batch.
    """
    out = _pool.take(tuple(shape), a.dtype)
    np.copyto(out, a)
    return out


# Hook read by ``Tensor.backward``: dead gradient buffers (owned,
# contiguous, provably unaliased) are handed back to the scratch pool
# instead of waiting for the garbage collector.  A plain attribute, not
# a registered kernel -- it has no numeric contract to check.
BACKEND.recycle_buffer = _pool.give


# ---------------------------------------------------------------------------
# Batch normalization
# ---------------------------------------------------------------------------


@BACKEND.register()
def batchnorm_stats(
    x: np.ndarray, axes: Tuple[int, ...]
) -> Tuple[np.ndarray, np.ndarray]:
    """One-pass mean/variance: E[x^2] - mean^2, clamped at zero."""
    mean = x.mean(axis=axes, keepdims=True)
    sq_mean = np.multiply(x, x).mean(axis=axes, keepdims=True)
    var = np.maximum(sq_mean - mean * mean, 0.0)
    return mean, var


@BACKEND.register()
def batchnorm_infer(
    x: np.ndarray,
    mean: np.ndarray,
    var: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    eps: float,
) -> np.ndarray:
    """Precomputed scale/shift: one multiply-add over x instead of four ops."""
    scale = gamma / np.sqrt(var + eps)
    shift = beta - mean * scale
    return x * scale + shift


@BACKEND.register()
def batchnorm_train_forward(
    x: np.ndarray,
    mean: np.ndarray,
    var: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    eps: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reference formula with in-place epilogues (two fewer temporaries).

    ``xhat`` and ``out`` escape the kernel (one is saved for backward,
    the other returned), so both own fresh memory -- only the
    intermediate products are folded in place.
    """
    inv_std = 1.0 / np.sqrt(var + eps)
    xhat = x - mean
    xhat *= inv_std
    out = xhat * gamma
    out += beta
    return out, xhat, inv_std


@BACKEND.register()
def batchnorm_train_backward(
    grad: np.ndarray,
    xhat: np.ndarray,
    inv_std: np.ndarray,
    gamma: np.ndarray,
    axes: Tuple[int, ...],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Analytic backward (see reference) with a reused full-size scratch."""
    count = 1
    for axis in axes:
        count *= grad.shape[axis]
    grad_beta = grad.sum(axis=axes, keepdims=True)
    scaled = grad * xhat
    grad_gamma = scaled.sum(axis=axes, keepdims=True)
    # `scaled` already served its purpose; reuse it for the xhat term
    np.multiply(xhat, grad_gamma / count, out=scaled)
    grad_x = grad - grad_beta / count
    grad_x -= scaled
    grad_x *= gamma * inv_std
    return grad_x, grad_gamma, grad_beta


# Capability flag read by the batch-norm layers: when the active
# backend advertises it, training-mode batch norm dispatches through
# the fused batchnorm_train_forward/backward kernels above instead of
# composing ~20 elementwise graph ops.  Reference deliberately does not
# set it -- its training path must stay the bit-identical composed
# graph (backends inheriting from fast inherit the flag via fallback).
BACKEND.fused_batchnorm = True
