"""Backend-equivalence harness: every kernel vs the reference oracle.

Every kernel name registered on any backend has a *case generator*
here that produces randomized-but-valid inputs.  ``check_kernel`` runs
one kernel on two backends with identical inputs and compares outputs:
float arrays must agree to ``allclose`` (default rtol 1e-6), integer
arrays (argmax, cluster indices) must match exactly.

This is the contract that lets the fast backend exist at all -- any
new backend (or new kernel on an existing backend) is expected to pass
``check_all`` against reference before it ships.  The test suite
(tests/backend/test_equivalence.py) drives this module over many seeds
and shapes.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

import numpy as np

from repro.backend.registry import Backend, get_backend

RTOL = 1e-6
ATOL = 1e-9

CaseGen = Callable[[np.random.Generator], Tuple[tuple, dict]]

# Kernel name -> generator of (args, kwargs).  Shapes are randomized
# within ranges small enough to run hundreds of cases per second but
# varied enough to cover stride/padding/kernel interactions.
CASES: Dict[str, CaseGen] = {}


def case(name: str) -> Callable[[CaseGen], CaseGen]:
    def decorate(fn: CaseGen) -> CaseGen:
        CASES[name] = fn
        return fn
    return decorate


def _conv_geometry(rng: np.random.Generator):
    """A random valid NCHW/OIHW conv configuration."""
    batch = int(rng.integers(1, 4))
    channels = int(rng.integers(1, 4))
    kernel = int(rng.integers(1, 4))
    stride = int(rng.integers(1, 3))
    padding = int(rng.integers(0, 3))
    min_size = max(kernel - 2 * padding, 1)
    height = min_size + int(rng.integers(0, 6))
    width = min_size + int(rng.integers(0, 6))
    return batch, channels, height, width, kernel, stride, padding


def _pool_geometry(rng: np.random.Generator):
    """Pooling geometry including the stride != kernel case."""
    batch = int(rng.integers(1, 4))
    channels = int(rng.integers(1, 4))
    kernel = int(rng.integers(1, 4))
    stride = int(rng.integers(1, 4))
    height = kernel + int(rng.integers(0, 6))
    width = kernel + int(rng.integers(0, 6))
    return batch, channels, height, width, kernel, stride


@case("im2col")
def _case_im2col(rng):
    b, c, h, w, k, s, p = _conv_geometry(rng)
    x = rng.normal(size=(b, c, h, w))
    return (x, k, k, s, p), {}


@case("col2im")
def _case_col2im(rng):
    b, c, h, w, k, s, p = _conv_geometry(rng)
    from repro.backend.reference import im2col_indices

    _, _, _, out_h, out_w = im2col_indices((b, c, h, w), k, k, s, p)
    cols = rng.normal(size=(c * k * k, b * out_h * out_w))
    return (cols, (b, c, h, w), k, k, s, p), {}


@case("conv2d_forward")
def _case_conv2d_forward(rng):
    b, c, h, w, k, s, p = _conv_geometry(rng)
    out_channels = int(rng.integers(1, 5))
    x = rng.normal(size=(b, c, h, w))
    weight = rng.normal(size=(out_channels, c, k, k))
    return (x, weight, s, p), {}


@case("conv2d_backward")
def _case_conv2d_backward(rng):
    b, c, h, w, k, s, p = _conv_geometry(rng)
    out_channels = int(rng.integers(1, 5))
    from repro.backend.reference import im2col_indices

    _, _, _, out_h, out_w = im2col_indices((b, c, h, w), k, k, s, p)
    grad = rng.normal(size=(b, out_channels, out_h, out_w))
    cols = rng.normal(size=(c * k * k, b * out_h * out_w))
    weight = rng.normal(size=(out_channels, c, k, k))
    return (grad, cols, weight, (b, c, h, w), s, p), {}


@case("conv2d_infer")
def _case_conv2d_infer(rng):
    b, c, h, w, k, s, p = _conv_geometry(rng)
    out_channels = int(rng.integers(1, 5))
    x = rng.normal(size=(b, c, h, w))
    weight = rng.normal(size=(out_channels, c, k, k))
    bias = rng.normal(size=out_channels) if rng.integers(0, 2) else None
    relu = bool(rng.integers(0, 2))
    return (x, weight, bias, s, p), {"relu": relu}


@case("maxpool2d_forward")
def _case_maxpool2d_forward(rng):
    b, c, h, w, k, s = _pool_geometry(rng)
    x = rng.normal(size=(b, c, h, w))
    return (x, k, s), {}


@case("maxpool2d_backward")
def _case_maxpool2d_backward(rng):
    from repro.backend.reference import maxpool2d_forward

    b, c, h, w, k, s = _pool_geometry(rng)
    x = rng.normal(size=(b, c, h, w))
    out, argmax = maxpool2d_forward(x, k, s)
    grad = rng.normal(size=out.shape)
    return (grad, argmax, (b, c, h, w), k, s), {}


@case("maxpool2d_infer")
def _case_maxpool2d_infer(rng):
    b, c, h, w, k, s = _pool_geometry(rng)
    x = rng.normal(size=(b, c, h, w))
    return (x, k, s), {}


@case("avgpool2d_forward")
def _case_avgpool2d_forward(rng):
    b, c, h, w, k, s = _pool_geometry(rng)
    x = rng.normal(size=(b, c, h, w))
    return (x, k, s), {}


@case("avgpool2d_backward")
def _case_avgpool2d_backward(rng):
    from repro.backend.reference import avgpool2d_forward

    b, c, h, w, k, s = _pool_geometry(rng)
    x = rng.normal(size=(b, c, h, w))
    out = avgpool2d_forward(x, k, s)
    grad = rng.normal(size=out.shape)
    return (grad, (b, c, h, w), k, s), {}


@case("matmul")
def _case_matmul(rng):
    m, k, n = (int(rng.integers(1, 12)) for _ in range(3))
    return (rng.normal(size=(m, k)), rng.normal(size=(k, n))), {}


def _broadcast_pair(rng):
    shape = tuple(int(rng.integers(1, 5)) for _ in range(int(rng.integers(1, 4))))
    a = rng.normal(size=shape)
    # sometimes broadcast the second operand
    if rng.integers(0, 2) and len(shape) > 1:
        b = rng.normal(size=shape[-1:])
    else:
        b = rng.normal(size=shape)
    return a, b


@case("add")
def _case_add(rng):
    return _broadcast_pair(rng), {}


@case("sub")
def _case_sub(rng):
    return _broadcast_pair(rng), {}


@case("mul")
def _case_mul(rng):
    return _broadcast_pair(rng), {}


@case("neg")
def _case_neg(rng):
    shape = tuple(int(rng.integers(1, 9)) for _ in range(int(rng.integers(1, 4))))
    return (rng.normal(size=shape).astype(np.float32),), {}


@case("div")
def _case_div(rng):
    a, b = _broadcast_pair(rng)
    b = np.sign(b) * (np.abs(b) + 0.5)  # keep divisors away from zero
    return (a, b), {}


@case("relu")
def _case_relu(rng):
    shape = tuple(int(rng.integers(1, 6)) for _ in range(int(rng.integers(1, 4))))
    return (rng.normal(size=shape),), {}


@case("reduce_sum")
def _case_reduce_sum(rng):
    ndim = int(rng.integers(1, 4))
    shape = tuple(int(rng.integers(1, 6)) for _ in range(ndim))
    axis = int(rng.integers(0, ndim)) if rng.integers(0, 2) else None
    return (rng.normal(size=shape), axis, bool(rng.integers(0, 2))), {}


@case("reduce_mean")
def _case_reduce_mean(rng):
    ndim = int(rng.integers(1, 4))
    shape = tuple(int(rng.integers(1, 6)) for _ in range(ndim))
    axis = int(rng.integers(0, ndim)) if rng.integers(0, 2) else None
    return (rng.normal(size=shape), axis, bool(rng.integers(0, 2))), {}


@case("broadcast_copy")
def _case_broadcast_copy(rng):
    n = int(rng.integers(1, 6))
    m = int(rng.integers(1, 6))
    return (rng.normal(size=(1, m)), (n, m)), {}


@case("log_softmax")
def _case_log_softmax(rng):
    batch = int(rng.integers(1, 8))
    classes = int(rng.integers(2, 10))
    return (rng.normal(size=(batch, classes)) * 5.0,), {}


@case("batchnorm_stats")
def _case_batchnorm_stats(rng):
    b, c = int(rng.integers(2, 5)), int(rng.integers(1, 4))
    if rng.integers(0, 2):
        x = rng.normal(size=(b, c, int(rng.integers(2, 6)), int(rng.integers(2, 6))))
        axes = (0, 2, 3)
    else:
        x = rng.normal(size=(b, c))
        axes = (0,)
    return (x, axes), {}


@case("batchnorm_infer")
def _case_batchnorm_infer(rng):
    b, c, h, w = (int(rng.integers(1, 5)) for _ in range(4))
    x = rng.normal(size=(b, c, h, w))
    shape = (1, c, 1, 1)
    mean = rng.normal(size=shape)
    var = np.abs(rng.normal(size=shape)) + 0.1
    gamma = rng.normal(size=shape)
    beta = rng.normal(size=shape)
    return (x, mean, var, gamma, beta, 1e-5), {}


def _bn_train_setup(rng):
    """Input, batch stats, and param tensors for the fused train kernels."""
    if rng.integers(0, 2):
        c = int(rng.integers(1, 4))
        x = rng.normal(size=(int(rng.integers(2, 5)), c,
                             int(rng.integers(2, 6)), int(rng.integers(2, 6))))
        axes, shape = (0, 2, 3), (1, c, 1, 1)
    else:
        c = int(rng.integers(1, 6))
        x = rng.normal(size=(int(rng.integers(2, 8)), c))
        axes, shape = (0,), (1, c)
    mean = x.mean(axis=axes, keepdims=True)
    var = x.var(axis=axes, keepdims=True)
    gamma = rng.normal(size=shape)
    beta = rng.normal(size=shape)
    return x, mean, var, gamma, beta, axes


@case("batchnorm_train_forward")
def _case_batchnorm_train_forward(rng):
    x, mean, var, gamma, beta, _ = _bn_train_setup(rng)
    return (x, mean, var, gamma, beta, 1e-5), {}


@case("batchnorm_train_backward")
def _case_batchnorm_train_backward(rng):
    x, mean, var, gamma, _, axes = _bn_train_setup(rng)
    inv_std = 1.0 / np.sqrt(var + 1e-5)
    xhat = (x - mean) * inv_std
    grad = rng.normal(size=x.shape)
    return (grad, xhat, inv_std, gamma, axes), {}


@case("assign_clusters")
def _case_assign_clusters(rng):
    boundaries = np.sort(rng.normal(size=int(rng.integers(3, 9))))
    weights = rng.normal(size=int(rng.integers(1, 64)))
    return (weights, boundaries), {}


@case("sgd_update")
def _case_sgd_update(rng):
    shape = (int(rng.integers(2, 9)), int(rng.integers(2, 17)))
    param = rng.normal(size=shape)
    grad = rng.normal(size=shape)
    momentum = float(rng.choice([0.0, 0.9]))
    # Cover all three velocity states: disabled, first step, warm.
    velocity = None
    if momentum and rng.integers(0, 2):
        velocity = rng.normal(size=shape)
    weight_decay = float(rng.choice([0.0, 5e-4]))
    return (param, grad, velocity, 0.05, momentum, weight_decay), {}


# ---------------------------------------------------------------------------
# Checking
# ---------------------------------------------------------------------------


def _as_tuple(out: Any) -> Tuple[Any, ...]:
    return out if isinstance(out, tuple) else (out,)


def compare_outputs(
    kernel_name: str, expected: Any, got: Any, rtol: float = RTOL, atol: float = ATOL
) -> None:
    """Assert two kernel outputs agree (exact for ints, allclose for floats)."""
    expected_t, got_t = _as_tuple(expected), _as_tuple(got)
    assert len(expected_t) == len(got_t), (
        f"{kernel_name}: output arity {len(got_t)} != {len(expected_t)}"
    )
    for idx, (ref_out, new_out) in enumerate(zip(expected_t, got_t)):
        if ref_out is None or new_out is None:
            assert ref_out is None and new_out is None, (
                f"{kernel_name}[{idx}]: one output is None, the other is not"
            )
            continue
        ref_arr, new_arr = np.asarray(ref_out), np.asarray(new_out)
        assert ref_arr.shape == new_arr.shape, (
            f"{kernel_name}[{idx}]: shape {new_arr.shape} != {ref_arr.shape}"
        )
        assert ref_arr.dtype == new_arr.dtype, (
            f"{kernel_name}[{idx}]: dtype {new_arr.dtype} != {ref_arr.dtype}"
        )
        if np.issubdtype(ref_arr.dtype, np.integer) or ref_arr.dtype == bool:
            assert np.array_equal(ref_arr, new_arr), (
                f"{kernel_name}[{idx}]: integer outputs differ"
            )
        else:
            np.testing.assert_allclose(
                new_arr, ref_arr, rtol=rtol, atol=atol,
                err_msg=f"{kernel_name}[{idx}]",
            )


def check_kernel(
    kernel_name: str,
    candidate,
    oracle="reference",
    seed: int = 0,
    trials: int = 5,
    rtol: float = RTOL,
    atol: float = ATOL,
) -> int:
    """Run ``trials`` randomized cases of one kernel on both backends."""
    if kernel_name not in CASES:
        raise KeyError(f"no equivalence case registered for kernel {kernel_name!r}")
    candidate_b: Backend = get_backend(candidate)
    oracle_b: Backend = get_backend(oracle)
    gen = CASES[kernel_name]
    rng = np.random.default_rng(seed)
    for _ in range(trials):
        args, kwargs = gen(rng)
        expected = oracle_b.kernel(kernel_name)(*args, **kwargs)
        got = candidate_b.kernel(kernel_name)(*args, **kwargs)
        compare_outputs(kernel_name, expected, got, rtol=rtol, atol=atol)
    return trials


def check_all(
    candidate,
    oracle="reference",
    seed: int = 0,
    trials: int = 5,
) -> List[str]:
    """check_kernel over every kernel the candidate can dispatch."""
    candidate_b = get_backend(candidate)
    checked = []
    for name in candidate_b.kernels():
        check_kernel(name, candidate_b, oracle=oracle, seed=seed, trials=trials)
        checked.append(name)
    return checked


# ---------------------------------------------------------------------------
# Dtype axis: each kernel at a compute dtype vs the float64 oracle
# ---------------------------------------------------------------------------

#: Comparison tolerances per compute dtype.  float64 keeps the strict
#: same-precision contract; float32 candidates are compared against the
#: float64 oracle, so the bound absorbs single-precision rounding of
#: the kernel's own reductions (rtol <= 1e-4 per the precision policy).
DTYPE_RTOL: Dict[np.dtype, float] = {
    np.dtype(np.float64): RTOL,
    np.dtype(np.float32): 1e-4,
}
DTYPE_ATOL: Dict[np.dtype, float] = {
    np.dtype(np.float64): ATOL,
    np.dtype(np.float32): 1e-5,
}


def _cast_floats(args: tuple, kwargs: dict, dtype: np.dtype):
    """Copies of (args, kwargs) with every float ndarray cast to dtype."""
    def cast(value):
        if isinstance(value, np.ndarray) and value.dtype.kind == "f":
            return value.astype(dtype)
        return value
    return tuple(cast(a) for a in args), {k: cast(v) for k, v in kwargs.items()}


def compare_outputs_cross_dtype(
    kernel_name: str,
    expected: Any,
    expected_same_dtype: Any,
    got: Any,
    dtype: np.dtype,
    rtol: float,
    atol: float,
) -> None:
    """Assert a ``dtype`` candidate run agrees with the float64 oracle.

    Float outputs must *be* ``dtype`` (kernels may not silently upcast)
    and match the float64 oracle to (rtol, atol).  Integer/bool outputs
    (argmax maps, cluster ids) are compared exactly against the oracle
    run on the *same-dtype* inputs -- near-boundary ties are decided by
    the rounded values either way, so that is the meaningful contract.
    """
    expected_t = _as_tuple(expected)
    same_t = _as_tuple(expected_same_dtype)
    got_t = _as_tuple(got)
    assert len(expected_t) == len(got_t), (
        f"{kernel_name}: output arity {len(got_t)} != {len(expected_t)}"
    )
    for idx, (ref_out, same_out, new_out) in enumerate(
            zip(expected_t, same_t, got_t)):
        if ref_out is None or new_out is None:
            assert ref_out is None and new_out is None, (
                f"{kernel_name}[{idx}]: one output is None, the other is not"
            )
            continue
        ref_arr, new_arr = np.asarray(ref_out), np.asarray(new_out)
        assert ref_arr.shape == new_arr.shape, (
            f"{kernel_name}[{idx}]: shape {new_arr.shape} != {ref_arr.shape}"
        )
        if np.issubdtype(ref_arr.dtype, np.integer) or ref_arr.dtype == bool:
            assert np.array_equal(np.asarray(same_out), new_arr), (
                f"{kernel_name}[{idx}]: integer outputs differ"
            )
        else:
            assert new_arr.dtype == dtype, (
                f"{kernel_name}[{idx}]: kernel did not preserve the input "
                f"dtype ({new_arr.dtype} != {dtype})"
            )
            np.testing.assert_allclose(
                new_arr.astype(np.float64), ref_arr, rtol=rtol, atol=atol,
                err_msg=f"{kernel_name}[{idx}] at {dtype}",
            )


def check_kernel_dtype(
    kernel_name: str,
    candidate,
    dtype,
    oracle="reference",
    seed: int = 0,
    trials: int = 5,
    rtol: float = None,
    atol: float = None,
) -> int:
    """Run one kernel at ``dtype`` against the float64 oracle.

    The case generator's float inputs are cast to ``dtype`` for the
    candidate and to float64 for the oracle; outputs must preserve the
    input dtype and agree within the per-dtype tolerance (strict at
    float64, rtol <= 1e-4 at float32).
    """
    if kernel_name not in CASES:
        raise KeyError(f"no equivalence case registered for kernel {kernel_name!r}")
    dt = np.dtype(dtype)
    if dt not in DTYPE_RTOL:
        raise KeyError(f"no dtype tolerances registered for {dt}")
    rtol = DTYPE_RTOL[dt] if rtol is None else rtol
    atol = DTYPE_ATOL[dt] if atol is None else atol
    candidate_b: Backend = get_backend(candidate)
    oracle_b: Backend = get_backend(oracle)
    gen = CASES[kernel_name]
    rng = np.random.default_rng(seed)
    for _ in range(trials):
        args, kwargs = gen(rng)
        args64, kwargs64 = _cast_floats(args, kwargs, np.dtype(np.float64))
        args_dt, kwargs_dt = _cast_floats(args, kwargs, dt)
        expected = oracle_b.kernel(kernel_name)(*args64, **kwargs64)
        expected_same = oracle_b.kernel(kernel_name)(*args_dt, **kwargs_dt)
        got = candidate_b.kernel(kernel_name)(*args_dt, **kwargs_dt)
        compare_outputs_cross_dtype(
            kernel_name, expected, expected_same, got, dt, rtol, atol
        )
    return trials


def check_all_dtype(
    candidate,
    dtype,
    oracle="reference",
    seed: int = 0,
    trials: int = 5,
) -> List[str]:
    """check_kernel_dtype over every kernel the candidate can dispatch."""
    candidate_b = get_backend(candidate)
    checked = []
    for name in candidate_b.kernels():
        check_kernel_dtype(name, candidate_b, dtype, oracle=oracle,
                           seed=seed, trials=trials)
        checked.append(name)
    return checked
