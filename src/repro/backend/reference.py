"""Reference backend: the original numpy kernels, verbatim.

This module is the correctness oracle for every other backend.  The
kernel bodies are the exact numpy code the autograd ops inlined before
the dispatch layer existed, so routing through ``reference`` is
bit-identical to the pre-backend implementation.  Do not "optimize"
anything here -- speed belongs in :mod:`repro.backend.fast`; this file
trades speed for being obviously correct and stable.

Kernel contracts (shared by all backends):

* ``im2col(x, kh, kw, stride, padding) -> cols`` -- NCHW input lowered
  to a ``(C*kh*kw, N*out_h*out_w)`` patch matrix.
* ``col2im(cols, shape, kh, kw, stride, padding) -> x`` -- the adjoint
  scatter-add.  **Dtype contract:** the output dtype equals
  ``cols.dtype`` (a float32 gradient never silently upcasts to
  float64) and the result is C-contiguous.
* ``conv2d_forward(x, w, stride, padding) -> (out, cols)`` -- the patch
  matrix is returned so the backward pass never re-lowers the input,
  and the output-size indices are computed exactly once per call.
* ``conv2d_backward(grad, cols, w, x_shape, stride, padding) ->
  (grad_x, grad_w)``.
* ``conv2d_infer(x, w, bias, stride, padding, relu) -> out`` -- no-grad
  forward used by inference paths; ``bias``/``relu`` fold the usual
  epilogue in.
* ``maxpool2d_forward -> (out, argmax)`` / ``maxpool2d_backward``,
  ``avgpool2d_forward`` / ``avgpool2d_backward``,
  ``maxpool2d_infer`` -- pooling over NCHW.
* ``matmul``, ``add``, ``sub``, ``mul``, ``div``,
  ``relu -> (out, mask)``, ``reduce_sum``, ``reduce_mean``,
  ``broadcast_copy`` -- dense/elementwise primitives.
* ``log_softmax(logits)`` -- row-wise stable log-softmax.
* ``batchnorm_stats(x, axes) -> (mean, var)`` (keepdims) and
  ``batchnorm_infer(x, mean, var, gamma, beta, eps) -> out``.
* ``assign_clusters(weights, boundaries) -> int64 indices`` -- the
  quantizer's cluster-assignment step.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.backend.registry import Backend
from repro.errors import ShapeError

BACKEND = Backend("reference")


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"convolution output size is non-positive: input={size}, "
            f"kernel={kernel}, stride={stride}, padding={padding}"
        )
    return out


def im2col_indices(
    shape: Tuple[int, int, int, int], kh: int, kw: int, stride: int, padding: int
):
    """Index arrays that gather conv patches into columns (CS231n style)."""
    _, channels, height, width = shape
    out_h = conv_output_size(height, kh, stride, padding)
    out_w = conv_output_size(width, kw, stride, padding)

    i0 = np.repeat(np.arange(kh), kw)
    i0 = np.tile(i0, channels)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kw), kh * channels)
    j1 = stride * np.tile(np.arange(out_w), out_h)
    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(channels), kh * kw).reshape(-1, 1)
    return k, i, j, out_h, out_w


# ---------------------------------------------------------------------------
# im2col / col2im
# ---------------------------------------------------------------------------


@BACKEND.register()
def im2col(x: np.ndarray, kh: int, kw: int, stride: int, padding: int) -> np.ndarray:
    """Lower NCHW input to a (C*kh*kw, N*out_h*out_w) patch matrix."""
    p = padding
    x_padded = np.pad(x, ((0, 0), (0, 0), (p, p), (p, p))) if p > 0 else x
    k, i, j, _, _ = im2col_indices(x.shape, kh, kw, stride, padding)
    cols = x_padded[:, k, i, j]
    return cols.transpose(1, 2, 0).reshape(kh * kw * x.shape[1], -1)


@BACKEND.register()
def col2im(
    cols: np.ndarray,
    shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Scatter-add a patch matrix back into an NCHW array (inverse of im2col).

    The scatter target is allocated with ``cols.dtype`` -- the backward
    path never upcasts a float32 gradient -- and the result is
    C-contiguous (the unpadded case returns the target itself; the
    padded case copies the central view out).
    """
    batch, channels, height, width = shape
    p = padding
    padded = np.zeros((batch, channels, height + 2 * p, width + 2 * p), dtype=cols.dtype)
    k, i, j, _, _ = im2col_indices(shape, kh, kw, stride, padding)
    cols_reshaped = cols.reshape(channels * kh * kw, -1, batch).transpose(2, 0, 1)
    np.add.at(padded, (slice(None), k, i, j), cols_reshaped)
    if p == 0:
        return padded
    return np.ascontiguousarray(padded[:, :, p:-p, p:-p])


# ---------------------------------------------------------------------------
# Convolution
# ---------------------------------------------------------------------------


@BACKEND.register()
def conv2d_forward(
    x: np.ndarray, weight: np.ndarray, stride: int, padding: int
) -> Tuple[np.ndarray, np.ndarray]:
    out_channels, _, kh, kw = weight.shape
    k, i, j, out_h, out_w = im2col_indices(x.shape, kh, kw, stride, padding)
    p = padding
    x_padded = np.pad(x, ((0, 0), (0, 0), (p, p), (p, p))) if p > 0 else x
    cols = x_padded[:, k, i, j].transpose(1, 2, 0).reshape(kh * kw * x.shape[1], -1)
    out = weight.reshape(out_channels, -1) @ cols
    out = out.reshape(out_channels, out_h, out_w, x.shape[0]).transpose(3, 0, 1, 2)
    return np.ascontiguousarray(out), cols


@BACKEND.register()
def conv2d_backward(
    grad: np.ndarray,
    cols: np.ndarray,
    weight: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    stride: int,
    padding: int,
    need_input_grad: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    # ``need_input_grad`` is a hint other backends may exploit; the
    # oracle deliberately ignores it and always computes both gradients
    # exactly as the original (pre-backend) code did.
    out_channels, _, kh, kw = weight.shape
    grad_flat = grad.transpose(1, 2, 3, 0).reshape(out_channels, -1)
    grad_weight = (grad_flat @ cols.T).reshape(weight.shape)
    grad_cols = weight.reshape(out_channels, -1).T @ grad_flat
    grad_x = col2im(grad_cols, x_shape, kh, kw, stride, padding)
    return grad_x, grad_weight


@BACKEND.register()
def conv2d_infer(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray],
    stride: int,
    padding: int,
    relu: bool = False,
) -> np.ndarray:
    """No-grad convolution with optional fused bias/relu epilogue.

    The arithmetic mirrors the graph path exactly: conv output, then
    ``+ bias.reshape(1, -1, 1, 1)``, then ``out * (out > 0)``.
    """
    out, _ = conv2d_forward(x, weight, stride, padding)
    if bias is not None:
        out = out + bias.reshape(1, -1, 1, 1)
    if relu:
        out = out * (out > 0)
    return out


# ---------------------------------------------------------------------------
# Pooling
# ---------------------------------------------------------------------------


@BACKEND.register()
def maxpool2d_forward(
    x: np.ndarray, kernel: int, stride: int
) -> Tuple[np.ndarray, np.ndarray]:
    batch, channels, _, _ = x.shape
    reshaped = x.reshape(batch * channels, 1, *x.shape[2:])
    cols = im2col(reshaped, kernel, kernel, stride, 0)
    argmax = np.argmax(cols, axis=0)
    out = cols[argmax, np.arange(cols.shape[1])]
    _, _, _, out_h, out_w = im2col_indices(reshaped.shape, kernel, kernel, stride, 0)
    out = np.ascontiguousarray(
        out.reshape(out_h, out_w, batch * channels).transpose(2, 0, 1)
    ).reshape(batch, channels, out_h, out_w)
    return out, argmax


@BACKEND.register()
def maxpool2d_backward(
    grad: np.ndarray,
    argmax: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
) -> np.ndarray:
    batch, channels, height, width = x_shape
    reshaped_shape = (batch * channels, 1, height, width)
    grad_flat = grad.reshape(batch * channels, -1).transpose(1, 0).reshape(-1)
    grad_cols = np.zeros((kernel * kernel, grad_flat.size), dtype=grad.dtype)
    grad_cols[argmax, np.arange(grad_cols.shape[1])] = grad_flat
    grad_reshaped = col2im(grad_cols, reshaped_shape, kernel, kernel, stride, 0)
    return grad_reshaped.reshape(x_shape)


@BACKEND.register()
def maxpool2d_infer(x: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    """No-grad max pooling: skips the argmax bookkeeping entirely."""
    batch, channels, _, _ = x.shape
    reshaped = x.reshape(batch * channels, 1, *x.shape[2:])
    cols = im2col(reshaped, kernel, kernel, stride, 0)
    out = cols.max(axis=0)
    _, _, _, out_h, out_w = im2col_indices(reshaped.shape, kernel, kernel, stride, 0)
    return np.ascontiguousarray(
        out.reshape(out_h, out_w, batch * channels).transpose(2, 0, 1)
    ).reshape(batch, channels, out_h, out_w)


@BACKEND.register()
def avgpool2d_forward(x: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    batch, channels, _, _ = x.shape
    reshaped = x.reshape(batch * channels, 1, *x.shape[2:])
    cols = im2col(reshaped, kernel, kernel, stride, 0)
    out = cols.mean(axis=0)
    _, _, _, out_h, out_w = im2col_indices(reshaped.shape, kernel, kernel, stride, 0)
    return np.ascontiguousarray(
        out.reshape(out_h, out_w, batch * channels).transpose(2, 0, 1)
    ).reshape(batch, channels, out_h, out_w)


@BACKEND.register()
def avgpool2d_backward(
    grad: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
) -> np.ndarray:
    batch, channels, height, width = x_shape
    reshaped_shape = (batch * channels, 1, height, width)
    grad_flat = grad.reshape(batch * channels, -1).transpose(1, 0).reshape(-1)
    grad_cols = np.broadcast_to(
        grad_flat / (kernel * kernel), (kernel * kernel, grad_flat.size)
    ).copy()
    grad_reshaped = col2im(grad_cols, reshaped_shape, kernel, kernel, stride, 0)
    return grad_reshaped.reshape(x_shape)


# ---------------------------------------------------------------------------
# Dense / elementwise primitives
# ---------------------------------------------------------------------------


@BACKEND.register()
def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a @ b


@BACKEND.register()
def add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a + b


@BACKEND.register()
def sub(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a - b


@BACKEND.register()
def mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a * b


@BACKEND.register()
def neg(a: np.ndarray) -> np.ndarray:
    return -a


@BACKEND.register()
def div(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a / b


@BACKEND.register()
def relu(a: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    mask = a > 0
    return a * mask, mask


@BACKEND.register()
def reduce_sum(a: np.ndarray, axis, keepdims: bool) -> np.ndarray:
    return a.sum(axis=axis, keepdims=keepdims)


@BACKEND.register()
def reduce_mean(a: np.ndarray, axis, keepdims: bool) -> np.ndarray:
    return a.mean(axis=axis, keepdims=keepdims)


@BACKEND.register()
def broadcast_copy(a: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    return np.broadcast_to(a, shape).copy()


@BACKEND.register()
def log_softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))


# ---------------------------------------------------------------------------
# Batch normalization
# ---------------------------------------------------------------------------


@BACKEND.register()
def batchnorm_stats(
    x: np.ndarray, axes: Tuple[int, ...]
) -> Tuple[np.ndarray, np.ndarray]:
    """Batch mean/variance over ``axes`` with kept dims (population var)."""
    mean = x.mean(axis=axes, keepdims=True)
    centered = x - mean
    var = (centered * centered).mean(axis=axes, keepdims=True)
    return mean, var


@BACKEND.register()
def batchnorm_infer(
    x: np.ndarray,
    mean: np.ndarray,
    var: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    eps: float,
) -> np.ndarray:
    """Normalize-scale-shift with the same op order as the graph path."""
    std = np.sqrt(var + eps)
    return ((x - mean) / std) * gamma + beta


@BACKEND.register()
def batchnorm_train_forward(
    x: np.ndarray,
    mean: np.ndarray,
    var: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    eps: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fused training-mode normalize-scale-shift.

    ``mean``/``var`` are the batch statistics (keepdims shapes, from
    ``batchnorm_stats``); returns ``(out, xhat, inv_std)`` where
    ``xhat`` and ``inv_std`` are the cache the analytic backward needs.
    """
    inv_std = 1.0 / np.sqrt(var + eps)
    xhat = (x - mean) * inv_std
    return xhat * gamma + beta, xhat, inv_std


@BACKEND.register()
def batchnorm_train_backward(
    grad: np.ndarray,
    xhat: np.ndarray,
    inv_std: np.ndarray,
    gamma: np.ndarray,
    axes: Tuple[int, ...],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Analytic batch-norm backward.

    For y = gamma * xhat + beta with batch statistics over ``axes``::

        dbeta  = sum(dy)
        dgamma = sum(dy * xhat)
        dx     = gamma * inv_std * (dy - mean(dy) - xhat * mean(dy * xhat))

    which is the exact derivative of the composed graph the reference
    training path differentiates node by node.
    """
    count = 1
    for axis in axes:
        count *= grad.shape[axis]
    grad_beta = grad.sum(axis=axes, keepdims=True)
    grad_gamma = (grad * xhat).sum(axis=axes, keepdims=True)
    grad_x = (gamma * inv_std) * (
        grad - grad_beta / count - xhat * (grad_gamma / count)
    )
    return grad_x, grad_gamma, grad_beta


# ---------------------------------------------------------------------------
# Quantizer assignment
# ---------------------------------------------------------------------------


@BACKEND.register()
def assign_clusters(weights: np.ndarray, boundaries: np.ndarray) -> np.ndarray:
    """Cluster index of each weight given ascending boundary values."""
    indices = np.searchsorted(boundaries[1:-1], weights, side="right")
    return indices.astype(np.int64)


# ---------------------------------------------------------------------------
# Optimizer update
# ---------------------------------------------------------------------------


@BACKEND.register()
def sgd_update(
    param: np.ndarray,
    grad: np.ndarray,
    velocity: Optional[np.ndarray],
    lr: float,
    momentum: float,
    weight_decay: float,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """One SGD step: ``(new_param, new_velocity)``.

    ``velocity`` may be ``None`` (first step, or momentum disabled); the
    returned velocity is ``None`` exactly when ``momentum`` is zero.
    Arithmetic order matches the historical ``SGD.step`` loop so the
    reference backend stays bit-identical to pre-backend training runs.
    """
    if weight_decay:
        grad = grad + weight_decay * param
    if momentum:
        if velocity is None:
            velocity = np.zeros_like(param)
        velocity = momentum * velocity + grad
        grad = velocity
    else:
        velocity = None
    return param - lr * grad, velocity
