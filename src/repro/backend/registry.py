"""Kernel registry and dispatch: the seam between ops and their math.

A :class:`Backend` is a named bag of *kernels* -- pure
ndarray-in/ndarray-out functions implementing the numerical heavy
lifting of the autograd ops (conv2d forward/backward, im2col/col2im,
pooling, matmul, elementwise, batchnorm statistics).  Ops never inline
numpy for these; they call ``active().<kernel>(...)`` so that an
alternative backend can swap the implementation of every hot path at
once.

Two backends ship by default (registered by :mod:`repro.backend`):

* ``reference`` -- the original numpy code, verbatim.  It is the
  correctness oracle: every other backend must agree with it to
  ``allclose`` tolerance on every registered kernel (see
  :mod:`repro.backend.equivalence`).
* ``fast`` -- cached im2col indices, scratch-buffer pools,
  slice-accumulation col2im, fused inference and batch-norm training
  kernels.  Falls back to ``reference`` for any kernel it does not
  override.

Dispatch cost when nothing is profiling: one module-global read plus an
attribute lookup per kernel call.  Installing a kernel hook (see
:func:`set_kernel_hook`) makes every *top-level* kernel call report
``(backend_name, kernel_name, seconds, nbytes)`` -- nested kernel calls
(e.g. ``conv2d_forward`` calling ``im2col``) are attributed to the
outermost kernel so totals never double-count.
"""

from __future__ import annotations

import contextlib
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Set, Union

import numpy as np

from repro.errors import ConfigError

KernelHook = Callable[[str, str, float, int], None]

_backends: Dict[str, "Backend"] = {}
_active: Optional["Backend"] = None

# Per-kernel profiling hook; mirrors the op hook in
# repro.autograd.function (None keeps dispatch on a no-hook fast path).
_kernel_hook: Optional[KernelHook] = None
_hook_depth: int = 0

# Kernel-level capture hook (repro.graph.infer): ``trace(kernel_name,
# args, kwargs, out)`` fires for every *top-level* kernel call -- nested
# calls (conv2d_forward invoking im2col) are suppressed with a separate
# depth guard so a replayed outer kernel re-runs its inner calls itself.
KernelTrace = Callable[[str, tuple, dict, Any], None]
_kernel_trace: Optional[KernelTrace] = None
_trace_depth: int = 0


def set_kernel_hook(hook: Optional[KernelHook]) -> Optional[KernelHook]:
    """Install (or with ``None``, clear) the kernel hook; returns the old one."""
    global _kernel_hook
    previous = _kernel_hook
    _kernel_hook = hook
    return previous


def get_kernel_hook() -> Optional[KernelHook]:
    return _kernel_hook


def set_kernel_trace(trace: Optional[KernelTrace]) -> Optional[KernelTrace]:
    """Install (or with ``None``, clear) the kernel trace; returns the old one."""
    global _kernel_trace
    previous = _kernel_trace
    _kernel_trace = trace
    return previous


def get_kernel_trace() -> Optional[KernelTrace]:
    return _kernel_trace


def _nbytes(args: tuple, out: Any) -> int:
    """Bytes touched by a kernel call: ndarray arguments plus outputs."""
    total = 0
    for arg in args:
        if isinstance(arg, np.ndarray):
            total += arg.nbytes
    for piece in out if isinstance(out, tuple) else (out,):
        if isinstance(piece, np.ndarray):
            total += piece.nbytes
    return total


class Backend:
    """A named set of kernels with optional fallback to another backend.

    Kernels are registered with :meth:`register` and become attributes
    of the instance, so call sites read ``active().matmul(a, b)``.
    Unregistered kernel lookups resolve through ``fallback`` (the fast
    backend falls back to reference), so a backend only overrides what
    it improves.
    """

    def __init__(self, name: str, fallback: Optional["Backend"] = None) -> None:
        self.name = str(name)
        self.fallback = fallback
        self._kernels: Dict[str, Callable[..., Any]] = {}

    def register(self, name: Optional[str] = None):
        """Decorator registering ``fn`` as kernel ``name`` (default: fn name)."""
        def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
            kernel_name = name if name is not None else fn.__name__
            self._kernels[kernel_name] = fn
            setattr(self, kernel_name, self._wrap(kernel_name, fn))
            return fn
        return decorate

    def _wrap(self, kernel_name: str, fn: Callable[..., Any]) -> Callable[..., Any]:
        backend_name = self.name

        def call(*args: Any, **kwargs: Any) -> Any:
            hook = _kernel_hook
            trace = _kernel_trace
            if hook is None and trace is None:
                return fn(*args, **kwargs)
            global _hook_depth, _trace_depth
            # nested kernel (kernels composing kernels): its time is
            # already inside the outer call's measurement, and a capture
            # replaying the outer call re-runs the inner ones itself
            timed = hook is not None and not _hook_depth
            tracing = trace is not None and not _trace_depth
            if not timed and not tracing:
                return fn(*args, **kwargs)
            if timed:
                _hook_depth = 1
            if tracing:
                _trace_depth = 1
            start = time.perf_counter() if timed else 0.0
            try:
                out = fn(*args, **kwargs)
            finally:
                if timed:
                    _hook_depth = 0
                if tracing:
                    _trace_depth = 0
            if timed:
                hook(backend_name, kernel_name,
                     time.perf_counter() - start, _nbytes(args, out))
            if tracing:
                trace(kernel_name, args, kwargs, out)
            return out

        call.__name__ = f"{backend_name}.{kernel_name}"
        return call

    def __getattr__(self, item: str) -> Any:
        # Only reached when the attribute is not in the instance dict.
        # Successful fallback resolutions are cached onto the instance so
        # repeated dispatch of a non-overridden kernel costs one plain
        # attribute read; register kernels before first dispatch (a later
        # ``register`` on this backend still wins -- it overwrites the
        # cached attribute -- but re-registering on a *fallback* backend
        # after dispatch is not picked up).
        if not item.startswith("_") and self.__dict__.get("fallback") is not None:
            resolved = getattr(self.fallback, item)
            setattr(self, item, resolved)
            return resolved
        raise AttributeError(
            f"backend {self.__dict__.get('name', '?')!r} has no kernel {item!r}"
        )

    def has(self, kernel_name: str) -> bool:
        if kernel_name in self._kernels:
            return True
        return self.fallback.has(kernel_name) if self.fallback is not None else False

    def overrides(self, kernel_name: str) -> bool:
        """True when this backend registers its own implementation."""
        return kernel_name in self._kernels

    def kernels(self) -> List[str]:
        """All kernel names reachable from this backend (fallback included)."""
        names: Set[str] = set(self._kernels)
        if self.fallback is not None:
            names.update(self.fallback.kernels())
        return sorted(names)

    def kernel(self, kernel_name: str) -> Callable[..., Any]:
        """The resolved (hook-wrapped) implementation of one kernel."""
        impl = getattr(self, kernel_name, None)
        if impl is None:
            raise ConfigError(f"no kernel {kernel_name!r} in backend {self.name!r}")
        return impl

    def __repr__(self) -> str:
        via = f" -> {self.fallback.name}" if self.fallback is not None else ""
        return f"Backend({self.name!r}, {len(self._kernels)} kernels{via})"


# ---------------------------------------------------------------------------
# Global registry + active-backend state
# ---------------------------------------------------------------------------


def register_backend(backend: Backend, default: bool = False) -> Backend:
    """Add a backend to the global registry; ``default`` makes it active."""
    global _active
    _backends[backend.name] = backend
    if default or _active is None:
        _active = backend
    return backend


def get_backend(name: Union[str, Backend]) -> Backend:
    """Look a backend up by name (Backend instances pass through)."""
    if isinstance(name, Backend):
        return name
    try:
        return _backends[name]
    except KeyError:
        raise ConfigError(
            f"unknown backend {name!r}; available: {available_backends()}"
        ) from None


def available_backends() -> List[str]:
    return sorted(_backends)


def active() -> Backend:
    """The backend all op dispatch currently routes through."""
    if _active is None:
        raise ConfigError("no backend registered")
    return _active


def set_backend(name: Union[str, Backend, None]) -> Optional[Backend]:
    """Set the active backend (by name or instance); returns the previous one.

    ``None`` is accepted and leaves the active backend unchanged, so
    callers can uniformly restore with ``set_backend(previous)``.
    """
    global _active
    previous = _active
    if name is not None:
        _active = get_backend(name)
    return previous


@contextlib.contextmanager
def use_backend(name: Union[str, Backend, None]) -> Iterator[Backend]:
    """Context manager scoping the active backend; ``None`` is a no-op."""
    previous = set_backend(name)
    try:
        yield active()
    finally:
        global _active
        _active = previous
