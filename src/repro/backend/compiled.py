"""Compiled backend: strided-window gathers + thread-tiled large matmul.

The graph compiler's companion backend.  It overrides the patch-gather
kernels of :mod:`repro.backend.fast` with strided-view implementations
-- the same elements in the same output layout, gathered through
``as_strided`` windows instead of fancy-index arrays, so every output
is **bitwise identical** to the fast backend's (a gather reorders
memory; it performs no arithmetic).  That matters because the graph
compiler's replay contract is bit-identity with eager execution: this
backend may be swapped in under a captured program without moving a
single ULP.

These kernels are tuned for the replay hot loop, where the arrays are
small (a training batch of a tiny attack model) and per-call Python
overhead rivals the numpy work itself.  Hence the shape of the code:
window views are built with one raw ``as_strided`` call instead of
``sliding_window_view`` (which re-validates axes per call), and the
input-independent index arrays -- the gather arange, the max-pool
scatter targets -- are cached per shape in capacity-capped dicts.

The one exception to bit-identity is :func:`matmul`: above a large flop
threshold it splits the left operand across a thread pool (BLAS
releases the GIL).  Row-partitioned GEMM is allclose-but-not-always-
bitwise to a monolithic GEMM (BLAS picks different blocking per shape),
so the threshold is set far above anything the training-step workloads
reach -- it exists for batch inference over large artifacts, and
``tiling`` is the capability flag serving/CLI surfaces report for it.

Everything else falls back to ``fast`` (which falls back to
``reference``), including the scratch pools and the fused batch-norm
kernels.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.backend import fast as _fast
from repro.backend.registry import Backend

BACKEND = Backend("compiled", fallback=_fast.BACKEND)

#: Minimum M*N*K product before matmul fans out across threads.  Far
#: above the training-step GEMMs of the repro models on purpose: below
#: this, results must stay bitwise identical to ``fast``.
TILED_MATMUL_THRESHOLD = 1 << 27

#: Max entries per shape-keyed index cache below; oldest-inserted
#: entries are dropped beyond it (mirrors the fast backend's guarded
#: im2col LRU -- a sweep over many shapes must not grow these forever).
INDEX_CACHE_CAPACITY = 64

_executor = None
_workers: Optional[int] = None


def _thread_pool():
    global _executor
    if _executor is None:
        from concurrent.futures import ThreadPoolExecutor
        _executor = ThreadPoolExecutor(max_workers=_worker_count())
    return _executor


def _drop_executor_after_fork() -> None:
    # A fork only clones the calling thread: an inherited executor's
    # worker threads do not exist in the child, so any submit() would
    # queue work forever.  Forked children (repro.parallel) start from
    # a fresh lazily-built pool instead.
    global _executor
    _executor = None


os.register_at_fork(after_in_child=_drop_executor_after_fork)


def _worker_count() -> int:
    # os.cpu_count() costs a surprising ~10us per call; sample it once
    global _workers
    if _workers is None:
        _workers = min(4, os.cpu_count() or 1)
    return _workers


# (length,) -> arange, for the pooling gather; (x_shape, kernel, stride)
# -> flat scatter targets, for the non-overlapping max-pool backward.
_arange_cache: Dict[int, np.ndarray] = {}
_scatter_cache: Dict[Tuple, np.ndarray] = {}


def clear_caches() -> None:
    """Drop the shape-keyed index caches (tests / memory pressure)."""
    _arange_cache.clear()
    _scatter_cache.clear()


def _cached(cache: Dict, key, build):
    hit = cache.get(key)
    if hit is None:
        if len(cache) >= INDEX_CACHE_CAPACITY:
            cache.pop(next(iter(cache)))
        hit = cache[key] = build()
    return hit


def _window_cols(
    x_padded: np.ndarray, kh: int, kw: int, stride: int
) -> np.ndarray:
    """Patch matrix via strided windows; fast-backend layout, fresh memory.

    Output rows are ordered (channel, tap_row, tap_col) and columns
    (out_h, out_w, batch) -- byte-for-byte the array
    ``x_padded[:, k, i, j].transpose(1, 2, 0).reshape(C*kh*kw, -1)``
    produces, without building or streaming any index arrays.  The view
    is laid out transposed directly (one ``as_strided``), so the only
    copy is the final reshape into fresh C-contiguous memory.
    """
    n, channels, height, width = x_padded.shape
    out_h = (height - kh) // stride + 1
    out_w = (width - kw) // stride + 1
    sn, sc, sh, sw = x_padded.strides
    win = as_strided(
        x_padded,
        (channels, kh, kw, out_h, out_w, n),
        (sc, sh, sw, sh * stride, sw * stride, sn),
    )
    cols = win.reshape(channels * kh * kw, out_h * out_w * n)
    if cols.base is not None:
        # degenerate windows (1x1, stride 1, batch 1) can reshape as a
        # view; callers require fresh memory (x_padded may be pooled)
        cols = cols.copy()
    return cols


@BACKEND.register()
def im2col(x: np.ndarray, kh: int, kw: int, stride: int, padding: int) -> np.ndarray:
    x_padded, pooled = _fast._pad_input(x, padding)
    cols = _window_cols(x_padded, kh, kw, stride)
    if pooled:
        _fast._pool.give(x_padded)
    return cols


@BACKEND.register()
def conv2d_forward(
    x: np.ndarray, weight: np.ndarray, stride: int, padding: int
) -> Tuple[np.ndarray, np.ndarray]:
    out_channels, _, kh, kw = weight.shape
    x_padded, pooled = _fast._pad_input(x, padding)
    cols = _window_cols(x_padded, kh, kw, stride)
    if pooled:
        _fast._pool.give(x_padded)
    out_h = (x.shape[2] + 2 * padding - kh) // stride + 1
    out_w = (x.shape[3] + 2 * padding - kw) // stride + 1
    scratch = _fast._pool.take((out_channels, cols.shape[1]), cols.dtype)
    np.matmul(weight.reshape(out_channels, -1), cols, out=scratch)
    out = np.ascontiguousarray(
        scratch.reshape(out_channels, out_h, out_w, x.shape[0]).transpose(3, 0, 1, 2)
    )
    _fast._pool.give(scratch)
    return out, cols


@BACKEND.register()
def conv2d_infer(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray],
    stride: int,
    padding: int,
    relu: bool = False,
) -> np.ndarray:
    out_channels, _, kh, kw = weight.shape
    x_padded, pooled = _fast._pad_input(x, padding)
    cols = _window_cols(x_padded, kh, kw, stride)
    if pooled:
        _fast._pool.give(x_padded)
    out_h = (x.shape[2] + 2 * padding - kh) // stride + 1
    out_w = (x.shape[3] + 2 * padding - kw) // stride + 1
    scratch = _fast._pool.take((out_channels, cols.shape[1]), cols.dtype)
    out = np.matmul(weight.reshape(out_channels, -1), cols, out=scratch)
    if bias is not None:
        out += bias.reshape(-1, 1)
    if relu:
        np.maximum(out, 0.0, out=out)
    result = np.ascontiguousarray(
        out.reshape(out_channels, out_h, out_w, x.shape[0]).transpose(3, 0, 1, 2)
    )
    _fast._pool.give(scratch)
    return result


def _pool_cols(x: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    """(kernel*kernel, out_h*out_w*N*C) pooling patch matrix, fast layout."""
    batch, channels, height, width = x.shape
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    flat = x.reshape(batch * channels, height, width)
    sm, sh, sw = flat.strides
    win = as_strided(
        flat,
        (kernel, kernel, out_h, out_w, batch * channels),
        (sh, sw, sh * stride, sw * stride, sm),
    )
    return win.reshape(kernel * kernel, out_h * out_w * batch * channels)


def _gather_arange(length: int) -> np.ndarray:
    return _cached(_arange_cache, length, lambda: np.arange(length))


@BACKEND.register()
def maxpool2d_forward(
    x: np.ndarray, kernel: int, stride: int
) -> Tuple[np.ndarray, np.ndarray]:
    batch, channels, height, width = x.shape
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    cols = _pool_cols(x, kernel, stride)
    argmax = cols.argmax(axis=0)
    out = cols[argmax, _gather_arange(cols.shape[1])]
    out = np.ascontiguousarray(
        out.reshape(out_h, out_w, batch * channels).transpose(2, 0, 1)
    ).reshape(batch, channels, out_h, out_w)
    return out, argmax


@BACKEND.register()
def maxpool2d_infer(x: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    batch, channels, height, width = x.shape
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    out = _pool_cols(x, kernel, stride).max(axis=0)
    return np.ascontiguousarray(
        out.reshape(out_h, out_w, batch * channels).transpose(2, 0, 1)
    ).reshape(batch, channels, out_h, out_w)


@BACKEND.register()
def avgpool2d_forward(x: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    batch, channels, height, width = x.shape
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    out = _pool_cols(x, kernel, stride).mean(axis=0)
    return np.ascontiguousarray(
        out.reshape(out_h, out_w, batch * channels).transpose(2, 0, 1)
    ).reshape(batch, channels, out_h, out_w)


def _scatter_base(x_shape, kernel: int, stride: int,
                  out_h: int, out_w: int) -> np.ndarray:
    """Flat target offsets of each pooling window's origin, column order.

    Column ``l`` of the pooling patch matrix covers the window at
    ``(oh, ow)`` of image ``nc`` with ``l = (oh*out_w + ow)*NC + nc``;
    its window origin lives at flat offset ``nc*H*W + oh*s*W + ow*s`` of
    the ``(NC, H, W)`` gradient buffer.  Input-independent, so cached.
    """
    batch, channels, height, width = x_shape
    nc = batch * channels
    lin = np.arange(nc * out_h * out_w)
    nc_idx = lin % nc
    rest = lin // nc
    return (nc_idx * (height * width)
            + (rest // out_w) * (stride * width)
            + (rest % out_w) * stride)


@BACKEND.register()
def maxpool2d_backward(
    grad: np.ndarray,
    argmax: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
) -> np.ndarray:
    """Direct scatter for non-overlapping windows; fast path otherwise.

    With ``stride == kernel`` each input element belongs to at most one
    window, so the gradient scatter has no accumulation collisions and
    can place every value with one flat fancy-indexed assignment --
    bitwise identical to the grad_cols + col2im route, without
    materializing the (k*k, L)-sized zero matrix.  The window-origin
    offsets are input-independent and cached per shape; only the
    in-window tap offset (from ``argmax``) varies per call.
    """
    batch, channels, height, width = x_shape
    if stride != kernel:
        return _fast.maxpool2d_backward(grad, argmax, x_shape, kernel, stride)
    nc = batch * channels
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    base = _cached(
        _scatter_cache, (tuple(x_shape), kernel, stride),
        lambda: _scatter_base(x_shape, kernel, stride, out_h, out_w),
    )
    # same column ordering as the forward's patch matrix: (oh, ow, nc)
    grad_flat = grad.reshape(nc, -1).transpose(1, 0).reshape(-1)
    targets = base + (argmax // kernel) * width + argmax % kernel
    out = np.zeros(nc * height * width, dtype=grad.dtype)
    out[targets] = grad_flat
    return out.reshape(x_shape)


@BACKEND.register()
def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Monolithic GEMM below the flop threshold; row-tiled threads above.

    The tiled path partitions rows of ``a``; each worker's GEMM releases
    the GIL, so this scales on multi-core hosts for the very large
    (batch-inference sized) products only.
    """
    if a.ndim == 2 and b.ndim == 2:
        flops = a.shape[0] * a.shape[1] * b.shape[1]
        if flops >= TILED_MATMUL_THRESHOLD:
            workers = _worker_count()
            if workers > 1 and a.shape[0] >= workers:
                out = np.empty((a.shape[0], b.shape[1]),
                               dtype=np.result_type(a.dtype, b.dtype))
                bounds = np.linspace(0, a.shape[0], workers + 1, dtype=int)
                pool = _thread_pool()
                futures = [
                    pool.submit(np.matmul, a[lo:hi], b, out=out[lo:hi])
                    for lo, hi in zip(bounds[:-1], bounds[1:])
                    if hi > lo
                ]
                for future in futures:
                    future.result()
                return out
    return a @ b


# Capability flags surfaced by ``repro info`` and recorded in run
# manifests: this backend is the compiled-schedule companion, supports
# elementwise fusion (its elementwise kernels resolve to reference, the
# compiler's bitwise requirement) and thread-tiled large matmul.
BACKEND.graph_compiler = True
BACKEND.fusion = True
BACKEND.tiling = True
