"""Per-kernel micro-benchmark: reference vs fast on fixed workloads.

Drives each kernel that has an equivalence case with a fixed-seed
medium-size input and times both backends.  Used by the
``repro bench-kernels`` CLI subcommand; the numbers are indicative
micro-benchmarks (single process, best-of-``repeats``), not a
substitute for the end-to-end gate in benchmarks/test_backend_speedup.py.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.backend import equivalence
from repro.backend.registry import get_backend


def _time_call(fn, args, kwargs, repeats: int) -> float:
    """Best-of-``repeats`` wall time of one kernel call, in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn(*args, **kwargs)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


def bench_kernels(
    kernels: Optional[Sequence[str]] = None,
    repeats: int = 5,
    seed: int = 0,
    baseline: str = "reference",
    candidate: str = "fast",
    dtype: Optional[str] = None,
) -> List[Dict[str, object]]:
    """Timing records, one per kernel: name, per-backend seconds, speedup.

    ``overridden`` marks kernels the candidate implements itself; for
    the rest the candidate falls back to the baseline implementation,
    so their speedup hovers around 1.0 by construction.

    ``dtype`` casts each case's float inputs to that compute dtype
    before timing, and (when it differs from float64) additionally
    times the candidate at float64 on the same case, reporting the
    ratio in a ``vs_float64`` comparison column -- the per-kernel
    payoff of the precision policy.
    """
    baseline_b = get_backend(baseline)
    candidate_b = get_backend(candidate)
    names = list(kernels) if kernels else sorted(equivalence.CASES)
    unknown = [name for name in names if name not in equivalence.CASES]
    if unknown:
        from repro.errors import ConfigError
        raise ConfigError(
            f"unknown kernel(s) {', '.join(unknown)}; "
            f"available: {', '.join(sorted(equivalence.CASES))}"
        )
    dt = np.dtype(dtype) if dtype is not None else None
    records: List[Dict[str, object]] = []
    for name in names:
        gen = equivalence.CASES[name]
        rng = np.random.default_rng(seed)
        args, kwargs = gen(rng)
        if dt is not None:
            args, kwargs = equivalence._cast_floats(args, kwargs, dt)
        base_fn = baseline_b.kernel(name)
        cand_fn = candidate_b.kernel(name)
        # warm both (index caches, buffer pools) outside the timed region
        base_fn(*args, **kwargs)
        cand_fn(*args, **kwargs)
        base_s = _time_call(base_fn, args, kwargs, repeats)
        cand_s = _time_call(cand_fn, args, kwargs, repeats)
        record: Dict[str, object] = {
            "kernel": name,
            f"{baseline}_us": round(base_s * 1e6, 2),
            f"{candidate}_us": round(cand_s * 1e6, 2),
            "speedup": round(base_s / cand_s, 3) if cand_s > 0 else float("inf"),
            "overridden": candidate_b.overrides(name),
        }
        if dt is not None:
            record["dtype"] = dt.name
            if dt != np.dtype(np.float64):
                args64, kwargs64 = equivalence._cast_floats(
                    args, kwargs, np.dtype(np.float64))
                cand_fn(*args64, **kwargs64)
                cand64_s = _time_call(cand_fn, args64, kwargs64, repeats)
                record["vs_float64"] = (
                    round(cand64_s / cand_s, 3) if cand_s > 0 else float("inf")
                )
        records.append(record)
    return records
