"""Per-kernel micro-benchmark: reference vs fast on fixed workloads.

Drives each kernel that has an equivalence case with a fixed-seed
medium-size input and times both backends.  Used by the
``repro bench-kernels`` CLI subcommand; the numbers are indicative
micro-benchmarks (single process, best-of-``repeats``), not a
substitute for the end-to-end gate in benchmarks/test_backend_speedup.py.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.backend import equivalence
from repro.backend.registry import get_backend


def _time_call(fn, args, kwargs, repeats: int) -> float:
    """Best-of-``repeats`` wall time of one kernel call, in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn(*args, **kwargs)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


def bench_kernels(
    kernels: Optional[Sequence[str]] = None,
    repeats: int = 5,
    seed: int = 0,
    baseline: str = "reference",
    candidate: str = "fast",
    dtype: Optional[str] = None,
) -> List[Dict[str, object]]:
    """Timing records, one per kernel: name, per-backend seconds, speedup.

    ``overridden`` marks kernels the candidate implements itself; for
    the rest the candidate falls back to the baseline implementation,
    so their speedup hovers around 1.0 by construction.

    ``dtype`` casts each case's float inputs to that compute dtype
    before timing, and (when it differs from float64) additionally
    times the candidate at float64 on the same case, reporting the
    ratio in a ``vs_float64`` comparison column -- the per-kernel
    payoff of the precision policy.
    """
    baseline_b = get_backend(baseline)
    candidate_b = get_backend(candidate)
    names = list(kernels) if kernels else sorted(equivalence.CASES)
    unknown = [name for name in names if name not in equivalence.CASES]
    if unknown:
        from repro.errors import ConfigError
        raise ConfigError(
            f"unknown kernel(s) {', '.join(unknown)}; "
            f"available: {', '.join(sorted(equivalence.CASES))}"
        )
    dt = np.dtype(dtype) if dtype is not None else None
    records: List[Dict[str, object]] = []
    for name in names:
        gen = equivalence.CASES[name]
        rng = np.random.default_rng(seed)
        args, kwargs = gen(rng)
        if dt is not None:
            args, kwargs = equivalence._cast_floats(args, kwargs, dt)
        base_fn = baseline_b.kernel(name)
        cand_fn = candidate_b.kernel(name)
        # warm both (index caches, buffer pools) outside the timed region
        base_fn(*args, **kwargs)
        cand_fn(*args, **kwargs)
        base_s = _time_call(base_fn, args, kwargs, repeats)
        cand_s = _time_call(cand_fn, args, kwargs, repeats)
        record: Dict[str, object] = {
            "kernel": name,
            f"{baseline}_us": round(base_s * 1e6, 2),
            f"{candidate}_us": round(cand_s * 1e6, 2),
            "speedup": round(base_s / cand_s, 3) if cand_s > 0 else float("inf"),
            "overridden": candidate_b.overrides(name),
        }
        if dt is not None:
            record["dtype"] = dt.name
            if dt != np.dtype(np.float64):
                args64, kwargs64 = equivalence._cast_floats(
                    args, kwargs, np.dtype(np.float64))
                cand_fn(*args64, **kwargs64)
                cand64_s = _time_call(cand_fn, args64, kwargs64, repeats)
                record["vs_float64"] = (
                    round(cand64_s / cand_s, 3) if cand_s > 0 else float("inf")
                )
        records.append(record)
    return records


#: Representative elementwise chains the graph compiler fuses; each is
#: benchmarked as one-kernel-at-a-time dispatch vs the fused in-place
#: emitters writing into preallocated scratch.
FUSED_CHAINS = (
    ("Add", "ReLU"),
    ("Mul", "Add", "Tanh"),
    ("Sub", "Neg", "Exp"),
)

#: Ops in FUSED_CHAINS that take a second (fresh) operand.
_BINARY = {"Add", "Sub", "Mul", "Div"}


class _BenchFn:
    """Stand-in Function: the emitters only touch ``.saved``."""

    __slots__ = ("saved",)

    def __init__(self) -> None:
        self.saved = None


def bench_fused(
    repeats: int = 5,
    seed: int = 0,
    baseline: str = "reference",
    candidate: str = "fast",
    shape=(64, 1024),
) -> List[Dict[str, object]]:
    """Timing records for the graph compiler's fused elementwise chains.

    The baseline column times the chain as eager execution runs it --
    one backend kernel call per op, each allocating its output; the
    candidate column times the fused emitters from
    :mod:`repro.graph.compiler` writing into planner-style preallocated
    buffers.  Record keys match :func:`bench_kernels` so the CLI can
    render both in one table.
    """
    from repro.graph.compiler import FUSIBLE

    baseline_b = get_backend(baseline)
    records: List[Dict[str, object]] = []
    rng = np.random.default_rng(seed)
    for chain in FUSED_CHAINS:
        first = rng.uniform(0.25, 1.0, size=shape)
        extras = [rng.uniform(0.25, 1.0, size=shape)
                  for op in chain if op in _BINARY]
        kernel_of = {"Add": "add", "Sub": "sub", "Mul": "mul", "Div": "div",
                     "Neg": "neg", "ReLU": "relu"}

        def run_eager():
            value = first
            it = iter(extras)
            for op in chain:
                kname = kernel_of.get(op)
                if kname is not None and op in _BINARY:
                    out = baseline_b.kernel(kname)(value, next(it))
                elif kname is not None:
                    out = baseline_b.kernel(kname)(value)
                else:
                    out = {"Exp": np.exp, "Sqrt": np.sqrt,
                           "Tanh": np.tanh}[op](value)
                value = out[0] if isinstance(out, tuple) else out
            return value

        dests = [np.empty(shape) for _ in chain]
        fns = [_BenchFn() for _ in chain]

        def run_fused():
            value = first
            it = iter(extras)
            for op, dest, fn in zip(chain, dests, fns):
                ins = [value, next(it)] if op in _BINARY else [value]
                value = FUSIBLE[op](fn, ins, dest)
            return value

        run_eager(), run_fused()
        eager_s = _time_call(run_eager, (), {}, repeats)
        fused_s = _time_call(run_fused, (), {}, repeats)
        records.append({
            "kernel": "fused[" + "+".join(op.lower() for op in chain) + "]",
            f"{baseline}_us": round(eager_s * 1e6, 2),
            f"{candidate}_us": round(fused_s * 1e6, 2),
            "speedup": round(eager_s / fused_s, 3) if fused_s > 0 else float("inf"),
            "overridden": True,
        })
    return records
