"""Pluggable kernel-dispatch layer for the autograd/nn hot paths.

Importing this package registers the two built-in backends and makes
``reference`` the active default:

* :mod:`repro.backend.reference` -- the original numpy kernels,
  verbatim; the correctness oracle.
* :mod:`repro.backend.fast` -- cached im2col indices, bincount
  scatter, fused inference kernels; falls back to reference for
  anything it does not override.
* :mod:`repro.backend.compiled` -- the graph compiler's companion:
  sliding-window patch gathers (bitwise identical to fast) plus
  thread-tiled matmul for very large products; falls back to fast.

Typical use::

    from repro import backend

    with backend.use_backend("fast"):
        trainer.train()

    backend.set_backend("fast")          # process-wide
    backend.active().matmul(a, b)        # direct kernel dispatch

Every kernel a backend overrides must pass the equivalence harness
(:mod:`repro.backend.equivalence`) against reference.
"""

from repro.backend.registry import (
    Backend,
    active,
    available_backends,
    get_backend,
    get_kernel_hook,
    register_backend,
    set_backend,
    set_kernel_hook,
    use_backend,
)
from repro.backend import reference as _reference
from repro.backend import fast as _fast
from repro.backend import compiled as _compiled

register_backend(_reference.BACKEND, default=True)
register_backend(_fast.BACKEND)
register_backend(_compiled.BACKEND)

__all__ = [
    "Backend",
    "active",
    "available_backends",
    "get_backend",
    "get_kernel_hook",
    "register_backend",
    "set_backend",
    "set_kernel_hook",
    "use_backend",
]
