"""Command-line interface: run the paper's experiments from a shell.

Subcommands:

* ``attack``  -- run the full quantized correlation attack flow.
* ``benign``  -- train the benign reference model.
* ``audit``   -- run the defender's pre-release audit on an attack run.

Examples::

    python -m repro.cli attack --bits 4 --rate 20 --epochs 15
    python -m repro.cli attack --dataset faces --bits 3 --out result.json
    python -m repro.cli benign --epochs 15
    python -m repro.cli audit --rate 20
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np

from repro.datasets import (
    SyntheticCifarConfig,
    SyntheticDigitsConfig,
    SyntheticFacesConfig,
    make_synthetic_cifar,
    make_synthetic_digits,
    make_synthetic_faces,
    to_grayscale,
    train_test_split,
)
from repro.pipeline import (
    AttackConfig,
    QuantizationConfig,
    TrainingConfig,
    run_quantized_correlation_attack,
    train_benign,
)
from repro.pipeline.reporting import percent
from repro.pipeline.results_io import attack_result_to_dict, save_result


def _build_dataset(name: str, seed: int):
    if name == "cifar":
        data = make_synthetic_cifar(
            SyntheticCifarConfig(num_images=240, num_classes=6, image_size=16, seed=seed)
        )
    elif name == "cifar-gray":
        data = to_grayscale(make_synthetic_cifar(
            SyntheticCifarConfig(num_images=240, num_classes=6, image_size=16, seed=seed)
        ))
    elif name == "faces":
        data = make_synthetic_faces(
            SyntheticFacesConfig(num_identities=12, images_per_identity=8,
                                 image_size=24, seed=seed)
        )
    elif name == "digits":
        data = make_synthetic_digits(
            SyntheticDigitsConfig(num_images=300, image_size=20, seed=seed)
        )
    else:
        raise SystemExit(f"unknown dataset {name!r}")
    return train_test_split(data, test_fraction=0.2, seed=0)


def _build_model_builder(dataset_name: str, train_dataset, seed: int):
    channels = train_dataset.image_shape[2]
    if dataset_name == "faces":
        from repro.models import face_net_mini
        return lambda: face_net_mini(
            num_identities=train_dataset.num_classes, in_channels=channels,
            width=8, rng=np.random.default_rng(seed),
        )
    from repro.models import resnet8_tiny
    return lambda: resnet8_tiny(
        num_classes=train_dataset.num_classes, in_channels=channels,
        width=8, rng=np.random.default_rng(seed),
    )


def _attack_configs(args) -> tuple:
    if args.dataset == "faces":
        attack = AttackConfig(layer_ranges=((1, 2), (3, 5), (6, -1)),
                              rates=(0.0, 0.0, args.rate),
                              std_window=10.0, capacity_fraction=0.6)
    else:
        attack = AttackConfig(layer_ranges=((1, 2), (3, 4), (5, -1)),
                              rates=(0.0, 0.0, args.rate), std_window=8.0)
    training = TrainingConfig(epochs=args.epochs, batch_size=args.batch_size,
                              lr=args.lr, seed=args.seed)
    quantization = QuantizationConfig(bits=args.bits, method=args.method)
    return training, attack, quantization


def _cmd_attack(args) -> int:
    train, test = _build_dataset(args.dataset, args.data_seed)
    builder = _build_model_builder(args.dataset, train, args.seed)
    training, attack, quantization = _attack_configs(args)
    result = run_quantized_correlation_attack(
        train, test, builder, training, attack, quantization,
        progress=lambda stage: print(f"[{stage}]", file=sys.stderr),
    )
    for label, ev in [("uncompressed", result.uncompressed),
                      (f"{args.bits}-bit released", result.quantized)]:
        print(f"{label}: accuracy {percent(ev.accuracy)}, "
              f"MAPE {ev.mean_mape:.2f}, SSIM {ev.mean_ssim:.3f}, "
              f"recognizable {ev.recognized_count}/{ev.encoded_images}")
    if args.out:
        save_result(attack_result_to_dict(result), args.out)
        print(f"result written to {args.out}")
    return 0


def _cmd_benign(args) -> int:
    train, test = _build_dataset(args.dataset, args.data_seed)
    builder = _build_model_builder(args.dataset, train, args.seed)
    training = TrainingConfig(epochs=args.epochs, batch_size=args.batch_size,
                              lr=args.lr, seed=args.seed)
    result = train_benign(train, test, builder, training)
    print(f"benign accuracy: {percent(result.accuracy)}")
    return 0


def _cmd_audit(args) -> int:
    from repro.defenses import detect_attack
    train, test = _build_dataset(args.dataset, args.data_seed)
    builder = _build_model_builder(args.dataset, train, args.seed)
    training, attack, _ = _attack_configs(args)
    print("[training attacked model]", file=sys.stderr)
    result = run_quantized_correlation_attack(
        train, test, builder, training, attack, quantization=None,
    )
    print("[training benign reference]", file=sys.stderr)
    reference = train_benign(train, test, builder, training)
    report = detect_attack(result.model, train, reference=reference.model)
    print(report)
    return 0 if report.flagged else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DAC'20 compressed-model data-stealing reproduction"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def _common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--dataset",
                       choices=["cifar", "cifar-gray", "faces", "digits"],
                       default="cifar")
        p.add_argument("--epochs", type=int, default=15)
        p.add_argument("--batch-size", type=int, default=32)
        p.add_argument("--lr", type=float, default=0.08)
        p.add_argument("--seed", type=int, default=7)
        p.add_argument("--data-seed", type=int, default=3)

    attack = sub.add_parser("attack", help="run the full attack flow")
    _common(attack)
    attack.add_argument("--rate", type=float, default=20.0,
                        help="correlation rate for the deep layer group")
    attack.add_argument("--bits", type=int, default=4)
    attack.add_argument("--method", default="target_correlated",
                        choices=["target_correlated", "weighted_entropy",
                                 "uniform", "kmeans"])
    attack.add_argument("--out", help="write the result summary as JSON")
    attack.set_defaults(func=_cmd_attack)

    benign = sub.add_parser("benign", help="train the benign reference")
    _common(benign)
    benign.set_defaults(func=_cmd_benign)

    audit = sub.add_parser("audit", help="audit an attacked model (defender view)")
    _common(audit)
    audit.add_argument("--rate", type=float, default=20.0)
    audit.add_argument("--bits", type=int, default=4)
    audit.add_argument("--method", default="target_correlated")
    audit.set_defaults(func=_cmd_audit)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
