"""Command-line interface: run the paper's experiments from a shell.

Subcommands:

* ``attack``       -- run the full quantized correlation attack flow.
* ``sweep``        -- grid of attack runs over bitwidths x rates.
* ``benign``       -- train the benign reference model.
* ``audit``        -- run the defender's pre-release audit on an attack run.
* ``monitor``      -- attack run with the in-training probe suite
  (``repro.monitor``), writing a JSONL timeseries.
* ``report``       -- render a monitor timeseries (or diff two), or a
  stored benchmark trajectory (``--bench``).
* ``alerts``       -- replay the alert rules over an existing monitor
  timeseries (exit 1 when any rule fires).
* ``serve``        -- batched async HTTP serving of released model
  artifacts (``repro.serve``): deadline coalescing, sharded workers,
  live latency telemetry.
* ``loadgen``      -- deterministic heavy-tailed open-loop traffic
  against a server (in-process or ``--url``), with replayable traces
  and ``BENCH_serve.json`` trajectories.
* ``analyze``      -- tail-latency attribution over a ``--trace-out``
  Chrome trace or a flight-recorder dump: per-stage percentiles,
  top-K slowest requests, queue-wait vs compute split.
* ``profile``      -- per-autograd-op and per-kernel cost tables for a
  small training run.
* ``bench-kernels`` -- per-kernel reference-vs-fast timing table.
* ``info``         -- versions, platform, backends and registered metrics.

Global flags (before the subcommand): ``--backend
{reference,fast,compiled}`` selects the kernel backend every op
dispatches through (``repro.backend``; ``fast`` caches im2col indices
and fuses inference kernels, ``compiled`` adds sliding-window gathers
and thread-tiled large matmul), ``--compile`` captures training steps
into static replay schedules (``repro.graph``, bit-identical losses),
``--dtype {float32,float64}`` sets the compute-precision
policy (``repro.precision``; float32 is the training default, float64
restores the bit-exact wide path), ``--workers N`` fans sweep points
and multi-bitwidth attack arms across worker processes
(``repro.parallel``; results are identical to a serial run),
``--ddp-workers N`` shards every training run across N data-parallel
ranks sharing tensors through ``multiprocessing.shared_memory`` with a
deterministic tree all-reduce (``repro.parallel.ddp``; attack metrics
stay inside the serial tolerance bands),
``--trace-out PATH`` exports a Chrome-trace file of the run's spans
(including spans shipped back from worker processes),
``--serve-metrics PORT`` serves live Prometheus ``/metrics`` and JSON
``/health`` on localhost for the duration of the run,
``--log-level LEVEL`` controls the structured JSONL event log
(optionally to ``--log-out PATH``).

Examples::

    python -m repro.cli attack --bits 4 --rate 20 --epochs 15
    python -m repro.cli --backend fast attack --bits 4 --epochs 15
    python -m repro.cli --workers 4 attack --bits 4 3 2 --epochs 15
    python -m repro.cli --workers 4 sweep --bits 4 3 --rates 5 20 --epochs 5
    python -m repro.cli attack --dataset faces --bits 3 --out result.json
    python -m repro.cli --trace-out trace.json benign --epochs 15
    python -m repro.cli audit --rate 20
    python -m repro.cli monitor --epochs 10 --out run.json
    python -m repro.cli --serve-metrics 9109 monitor --alerts --epochs 10
    python -m repro.cli alerts run.timeseries.jsonl --corr-above 0.25
    python -m repro.cli report run.timeseries.jsonl
    python -m repro.cli report malicious.timeseries.jsonl benign.timeseries.jsonl
    python -m repro.cli report --bench monitor
    python -m repro.cli serve --demo --bits 4 --port 8080 --shards 2
    python -m repro.cli loadgen --url http://127.0.0.1:8080 --requests 500
    python -m repro.cli loadgen --demo --requests 200 --bench-out .
    python -m repro.cli --trace-out serve.trace.json loadgen --demo --requests 200
    python -m repro.cli analyze serve.trace.json --top 10
    python -m repro.cli --backend fast profile quickstart --top 12
    python -m repro.cli bench-kernels --repeats 20 --csv kernels.csv
"""

from __future__ import annotations

import argparse
import functools
import os
import sys
from typing import Optional, Sequence

import numpy as np

from repro import backend as _backend
from repro import precision as _precision
from repro.datasets import (
    SyntheticCifarConfig,
    SyntheticDigitsConfig,
    SyntheticFacesConfig,
    make_synthetic_cifar,
    make_synthetic_digits,
    make_synthetic_faces,
    to_grayscale,
    train_test_split,
)
from repro.pipeline import (
    AttackConfig,
    QuantizationConfig,
    TrainingConfig,
    run_quantized_correlation_attack,
    train_benign,
)
from repro.pipeline.reporting import percent
from repro.pipeline.results_io import attack_result_to_dict, save_result
from repro.telemetry import (
    RunManifest,
    TraceRecorder,
    configure_logging,
    default_registry,
    profile,
    set_recorder,
)


def _build_dataset(name: str, seed: int):
    if name == "cifar":
        data = make_synthetic_cifar(
            SyntheticCifarConfig(num_images=240, num_classes=6, image_size=16, seed=seed)
        )
    elif name == "cifar-gray":
        data = to_grayscale(make_synthetic_cifar(
            SyntheticCifarConfig(num_images=240, num_classes=6, image_size=16, seed=seed)
        ))
    elif name == "faces":
        data = make_synthetic_faces(
            SyntheticFacesConfig(num_identities=12, images_per_identity=8,
                                 image_size=24, seed=seed)
        )
    elif name == "digits":
        data = make_synthetic_digits(
            SyntheticDigitsConfig(num_images=300, image_size=20, seed=seed)
        )
    else:
        raise SystemExit(f"unknown dataset {name!r}")
    return train_test_split(data, test_fraction=0.2, seed=0)


def _build_model_builder(dataset_name: str, train_dataset, seed: int):
    channels = train_dataset.image_shape[2]
    if dataset_name == "faces":
        from repro.models import face_net_mini
        return lambda: face_net_mini(
            num_identities=train_dataset.num_classes, in_channels=channels,
            width=8, rng=np.random.default_rng(seed),
        )
    from repro.models import resnet8_tiny
    return lambda: resnet8_tiny(
        num_classes=train_dataset.num_classes, in_channels=channels,
        width=8, rng=np.random.default_rng(seed),
    )


def _attack_configs(args) -> tuple:
    if args.dataset == "faces":
        attack = AttackConfig(layer_ranges=((1, 2), (3, 5), (6, -1)),
                              rates=(0.0, 0.0, args.rate),
                              std_window=10.0, capacity_fraction=0.6)
    else:
        attack = AttackConfig(layer_ranges=((1, 2), (3, 4), (5, -1)),
                              rates=(0.0, 0.0, args.rate), std_window=8.0)
    training = TrainingConfig(epochs=args.epochs, batch_size=args.batch_size,
                              lr=args.lr, seed=args.seed)
    quantization = QuantizationConfig(bits=args.bits, method=args.method)
    return training, attack, quantization


def _attack_experiment(bits: int, rate: float, dataset: str = "cifar",
                       data_seed: int = 3, seed: int = 7, epochs: int = 15,
                       batch_size: int = 32, lr: float = 0.08,
                       method: str = "target_correlated",
                       backend: Optional[str] = None,
                       rng=None) -> dict:
    """One full attack run reduced to a flat metrics record.

    Module-level (and partial-friendly) so ``repro sweep`` and the
    multi-bitwidth ``repro attack`` can run it inside spawn-started
    worker processes; ``backend`` is a name for the same reason (the
    worker resolves it against its own registry).  ``rng`` is accepted
    for ``Sweep(seed=...)`` compatibility but unused: every stage is
    already seeded explicitly, which is what makes parallel and serial
    records identical.
    """
    ns = argparse.Namespace(dataset=dataset, rate=rate, epochs=epochs,
                            batch_size=batch_size, lr=lr, seed=seed,
                            bits=bits, method=method)
    train, test = _build_dataset(dataset, data_seed)
    builder = _build_model_builder(dataset, train, seed)
    training, attack, quantization = _attack_configs(ns)
    result = run_quantized_correlation_attack(
        train, test, builder, training, attack, quantization,
        backend=backend)
    quant = result.quantized
    return {
        "accuracy": round(result.uncompressed.accuracy, 6),
        "q_accuracy": round(quant.accuracy, 6),
        "q_mape": round(quant.mean_mape, 4),
        "q_ssim": round(quant.mean_ssim, 4),
        "recognized": quant.recognized_count,
        "encoded": quant.encoded_images,
    }


def _cmd_attack(args) -> int:
    if len(args.bits) > 1:
        return _cmd_attack_multi(args)
    args.bits = args.bits[0]
    train, test = _build_dataset(args.dataset, args.data_seed)
    builder = _build_model_builder(args.dataset, train, args.seed)
    training, attack, quantization = _attack_configs(args)
    result = run_quantized_correlation_attack(
        train, test, builder, training, attack, quantization,
        progress=lambda stage: print(f"[{stage}]", file=sys.stderr),
    )
    for label, ev in [("uncompressed", result.uncompressed),
                      (f"{args.bits}-bit released", result.quantized)]:
        print(f"{label}: accuracy {percent(ev.accuracy)}, "
              f"MAPE {ev.mean_mape:.2f}, SSIM {ev.mean_ssim:.3f}, "
              f"recognizable {ev.recognized_count}/{ev.encoded_images}")
    if args.out:
        manifest = RunManifest.create(
            seed=args.seed, config=(training, attack, quantization),
            workers=args.workers, dataset=args.dataset,
        )
        save_result(attack_result_to_dict(result), args.out, manifest=manifest)
        print(f"result written to {args.out} (run {manifest.run_id})")
    return 0


def _cmd_monitor(args) -> int:
    """Attack run with the probe suite attached; writes a timeseries."""
    from repro.monitor import Monitor, default_probes, render_run
    from repro.pipeline.results_io import timeseries_path

    args.bits = args.bits[0] if isinstance(args.bits, list) else args.bits
    train, test = _build_dataset(args.dataset, args.data_seed)
    builder = _build_model_builder(args.dataset, train, args.seed)
    training, attack, quantization = _attack_configs(args)
    ts_path = args.timeseries
    if ts_path is None:
        ts_path = timeseries_path(args.out) if args.out else "run.timeseries.jsonl"
    engine = None
    if getattr(args, "alerts", False):
        from repro.monitor.alerts import AlertEngine, default_rules
        engine = AlertEngine(default_rules())
    with Monitor(default_probes(decode_images=args.decode_images),
                 path=ts_path, every_batches=args.every_batches,
                 alerts=engine) as monitor:
        result = run_quantized_correlation_attack(
            train, test, builder, training, attack, quantization,
            progress=lambda stage: print(f"[{stage}]", file=sys.stderr),
            monitor=monitor,
        )
        print(render_run(monitor.records,
                         title=f"monitor: {args.dataset} attack, "
                               f"rate {args.rate:g}, {args.bits}-bit"))
        for label, ev in [("uncompressed", result.uncompressed),
                          (f"{args.bits}-bit released", result.quantized)]:
            if ev is None:
                continue
            print(f"{label}: accuracy {percent(ev.accuracy)}, "
                  f"MAPE {ev.mean_mape:.2f}, SSIM {ev.mean_ssim:.3f}, "
                  f"recognizable {ev.recognized_count}/{ev.encoded_images}")
        if args.out:
            manifest = RunManifest.create(
                seed=args.seed, config=(training, attack, quantization),
                workers=args.workers, dataset=args.dataset,
            )
            save_result(attack_result_to_dict(result), args.out,
                        manifest=manifest, timeseries=ts_path)
            print(f"result written to {args.out} (run {manifest.run_id})")
    if engine is not None and engine.alerts:
        print(engine.summary_table(title=f"alerts ({len(engine.alerts)} fired)"))
    print(f"timeseries written to {ts_path} "
          f"({len(monitor.records)} records)", file=sys.stderr)
    return 0


def _cmd_report(args) -> int:
    """Render one monitor timeseries, diff two, or show a bench trend."""
    from repro.monitor import (
        BenchStore,
        compare_runs,
        load_timeseries,
        render_run,
        trend_table,
    )
    from repro.errors import ConfigError

    if args.bench:
        store = BenchStore(args.bench_dir)
        entries = store.entries(args.bench)
        if not entries:
            known = store.names()
            hint = f"; stored: {', '.join(known)}" if known else ""
            raise SystemExit(f"repro report: no entries for benchmark "
                             f"{args.bench!r} under {args.bench_dir}{hint}")
        print(trend_table(entries, name=args.bench))
        latest = entries[-1].get("metrics", {})
        regressions = store.check(args.bench, latest,
                                  threshold=args.threshold)
        for regression in regressions:
            print(f"regression: {regression}", file=sys.stderr)
        return 1 if regressions else 0
    if not args.timeseries or len(args.timeseries) > 2:
        raise SystemExit("repro report: give one or two timeseries paths, "
                         "or --bench NAME")
    try:
        runs = [load_timeseries(path) for path in args.timeseries]
    except (OSError, ConfigError) as exc:
        raise SystemExit(f"repro report: {exc}")
    if len(runs) == 1:
        print(render_run(runs[0], title=f"monitor: {args.timeseries[0]}"))
    else:
        print(compare_runs(runs[0], runs[1],
                           labels=tuple(args.timeseries[:2])))
    return 0


def _cmd_attack_multi(args) -> int:
    """Several bitwidths in one invocation: independent arms, optionally
    fanned across ``--workers`` processes."""
    from repro.pipeline import run_baseline_suite

    arms = {
        f"{bits}-bit": functools.partial(
            _attack_experiment, bits, args.rate, dataset=args.dataset,
            data_seed=args.data_seed, seed=args.seed, epochs=args.epochs,
            batch_size=args.batch_size, lr=args.lr, method=args.method,
            backend=args.backend,
        )
        for bits in args.bits
    }
    suite = run_baseline_suite(arms, parallel=args.workers)
    print(suite.to_table(title=f"attack arms ({args.dataset}, "
                               f"rate {args.rate:g})"))
    failed = suite.failures()
    for record in failed.records:
        print(f"arm {record['arm']} failed "
              f"({record['error_kind']}): {record['error']}", file=sys.stderr)
    return 1 if len(failed) else 0


def _cmd_sweep(args) -> int:
    """Cartesian bits x rate grid of attack runs via pipeline.sweep."""
    from repro.pipeline.sweep import Sweep

    experiment = functools.partial(
        _attack_experiment, dataset=args.dataset, data_seed=args.data_seed,
        seed=args.seed, epochs=args.epochs, batch_size=args.batch_size,
        lr=args.lr, method=args.method,
    )
    sweep = Sweep({"bits": args.bits, "rate": args.rates}, experiment)
    total = len(sweep)
    result = sweep.run(
        progress=lambda params: print(f"[point {params}]", file=sys.stderr),
        parallel=args.workers or 1,
        timeout=args.point_timeout,
        backend=args.backend,
    )
    print(result.to_table(title=f"{total}-point sweep ({args.dataset})"))
    failed = result.failures()
    if len(result.ok()):
        best = result.best("q_ssim")
        print(f"best SSIM: bits={best['bits']} rate={best['rate']:g} "
              f"(ssim {best['q_ssim']:.3f}, accuracy {percent(best['q_accuracy'])})")
    if args.csv:
        result.to_csv(args.csv)
        print(f"records written to {args.csv}")
    for record in failed.records:
        print(f"point bits={record['bits']} rate={record['rate']:g} failed "
              f"({record['error_kind']}): {record['error']}", file=sys.stderr)
    return 1 if len(failed) else 0


def _cmd_benign(args) -> int:
    train, test = _build_dataset(args.dataset, args.data_seed)
    builder = _build_model_builder(args.dataset, train, args.seed)
    training = TrainingConfig(epochs=args.epochs, batch_size=args.batch_size,
                              lr=args.lr, seed=args.seed)
    result = train_benign(train, test, builder, training)
    print(f"benign accuracy: {percent(result.accuracy)}")
    return 0


def _cmd_audit(args) -> int:
    from repro.defenses import detect_attack
    train, test = _build_dataset(args.dataset, args.data_seed)
    builder = _build_model_builder(args.dataset, train, args.seed)
    training, attack, _ = _attack_configs(args)
    print("[training attacked model]", file=sys.stderr)
    result = run_quantized_correlation_attack(
        train, test, builder, training, attack, quantization=None,
    )
    print("[training benign reference]", file=sys.stderr)
    reference = train_benign(train, test, builder, training)
    report = detect_attack(result.model, train, reference=reference.model)
    print(report)
    return 0 if report.flagged else 1


def _shm_info_row() -> str:
    """Shared-memory capability summary for ``repro info``."""
    from repro.parallel import ddp as _ddp
    from repro.parallel.arena import live_segments

    if not _ddp.shm_available():
        return "unavailable (multiprocessing.shared_memory probe failed)"
    segments = live_segments()
    return (f"available ({len(segments)} repro_* segment(s) live)"
            if segments else "available (no repro_* segments live)")


def _ddp_info_row() -> str:
    """Data-parallel training configuration for ``repro info``."""
    from repro.parallel import ddp as _ddp

    config = _ddp.ddp_config()
    workers = config["default_workers"]
    mode = f"{workers} worker(s)" if workers else "serial (--ddp-workers N)"
    fork = "fork ok" if config["fork_available"] else "fork unavailable"
    return f"{mode}; {fork}; {config['cpus']} cpu(s)"


def _graph_info_row() -> str:
    """Graph-compiler capability summary for the active backend."""
    from repro import graph as _graph

    backend = _backend.active()
    caps = [flag for flag in ("graph_compiler", "fusion", "tiling")
            if getattr(backend, flag, False)]
    stats = _graph.stats()
    parts = [
        "compile default " + ("on" if _graph.compile_default() else "off"),
        "fusion " + ("supported" if _graph.fusion_supported(backend)
                     else "unsupported"),
        "backend flags: " + (", ".join(caps) if caps else "none"),
    ]
    activity = {k.split(".", 1)[1]: int(v) for k, v in stats.items() if v}
    if activity:
        parts.append(", ".join(f"{k}={v}" for k, v in sorted(activity.items())))
    return "; ".join(parts)


def _cmd_info(args) -> int:
    """One consolidated environment/observability table."""
    import platform

    from repro.version import __version__

    from repro.monitor import BenchStore
    from repro.parallel import cpu_workers
    from repro.telemetry import active_exporter, format_table

    exporter = active_exporter()
    names = default_registry().names()
    rows = [
        ("repro", __version__),
        ("numpy", np.__version__),
        ("python", platform.python_version()),
        ("platform", platform.platform()),
        ("backend", f"{_backend.active().name} "
                    f"(available: {', '.join(_backend.available_backends())})"),
        ("graph", _graph_info_row()),
        ("dtype", f"{_precision.default_dtype().name} "
                  f"(metrics pinned to {_precision.METRICS_DTYPE.name})"),
        ("workers", f"{cpu_workers()} cpu(s) auto-detected"),
        ("cpus", f"{os.cpu_count() or 1} logical core(s)"),
        ("shm", _shm_info_row()),
        ("ddp", _ddp_info_row()),
        ("exporter", f"serving {exporter.url}" if exporter is not None
                     else "not running (--serve-metrics PORT)"),
        ("metrics", f"{len(names)} registered"
                    + (": " + ", ".join(names) if names else "")),
    ]
    flat = default_registry().flat_snapshot()
    lookups = flat.get("serve.cache_hits", 0.0) + \
        flat.get("serve.cache_misses", 0.0)
    if lookups:
        rate = flat.get("serve.cache_hits", 0.0) / lookups
        rows.append(("serve cache",
                     f"{rate:.1%} hit rate over {int(lookups)} lookups "
                     f"({int(flat.get('serve.cache_evictions', 0.0))} "
                     f"evictions)"))
    store = BenchStore(args.bench_dir)
    for name in store.names():
        entries = store.entries(name)
        latest = entries[-1]
        metrics = ", ".join(f"{k}={v:g}" for k, v in
                            sorted(latest.get("metrics", {}).items()))
        rows.append((f"bench:{name}",
                     f"{len(entries)} entries; latest {metrics}"))
    print(format_table(("key", "value"), rows, title="repro info"))
    return 0


def _cmd_alerts(args) -> int:
    """Replay alert rules over an existing monitor timeseries."""
    from repro.errors import ConfigError
    from repro.monitor import AlertEngine, load_timeseries
    from repro.monitor.alerts import default_rules

    try:
        records = load_timeseries(args.timeseries)
    except (OSError, ConfigError) as exc:
        raise SystemExit(f"repro alerts: {exc}")
    engine = AlertEngine(default_rules(
        corr_threshold=args.corr_above,
        psnr_window=args.psnr_window,
    ))
    fired = engine.replay(records)
    if fired:
        print(engine.summary_table(
            title=f"alerts: {args.timeseries} "
                  f"({len(fired)} fired over {len(records)} records)"))
    else:
        print(f"alerts: {args.timeseries}: no alerts over "
              f"{len(records)} records")
    return 1 if fired else 0


def _demo_artifact(path: str, bits: Optional[int], seed: int) -> str:
    """Materialize a (optionally quantized) demo artifact at ``path``.

    A released resnet8_tiny with random weights -- enough for the
    serving/loadgen commands to run end to end without a training run.
    """
    from repro.models import resnet8_tiny
    from repro.serve import save_artifact

    kwargs = dict(num_classes=10, in_channels=3, width=8)
    model = resnet8_tiny(rng=np.random.default_rng(seed), **kwargs)
    quantization = None
    if bits is not None:
        from repro.quantization import (UniformQuantizer, apply_quantization,
                                        levels_for_bits)
        result = UniformQuantizer(levels_for_bits(bits)).quantize_model(model)
        apply_quantization(model, result)
        quantization = {"bits": bits, "method": "uniform"}
    save_artifact(model, path, "resnet8_tiny", model_kwargs=kwargs,
                  input_shape=(3, 8, 8), quantization=quantization,
                  seed=seed)
    return path


def _parse_artifacts(specs, demo: bool, demo_dir: Optional[str],
                     bits: Optional[int], seed: int) -> dict:
    import os
    import tempfile

    artifacts = {}
    for spec in specs or []:
        if "=" in spec:
            key, _, path = spec.partition("=")
        else:
            path = spec
            key = os.path.basename(os.path.normpath(spec)) or "default"
        artifacts[key] = path
    if demo:
        path = demo_dir or os.path.join(tempfile.mkdtemp(prefix="repro-serve-"),
                                        "demo")
        print(f"[demo artifact -> {path}]", file=sys.stderr)
        artifacts.setdefault("demo", _demo_artifact(path, bits, seed))
    return artifacts


def _cmd_serve(args) -> int:
    """Serve released artifacts over HTTP until interrupted."""
    import asyncio

    from repro.monitor.alerts import AlertEngine, serving_rules
    from repro.serve import ModelServer, ServeConfig, ServeHTTP

    artifacts = _parse_artifacts(args.artifact, args.demo, args.demo_dir,
                                 args.bits, args.seed)
    if not artifacts:
        raise SystemExit("repro serve: give ARTIFACT dirs (KEY=PATH or PATH) "
                         "or --demo")
    config = ServeConfig(
        max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
        queue_capacity=args.queue_capacity, shards=args.shards,
        backend=args.backend, default_deadline_ms=args.deadline_ms,
        slo_ms=args.slo_ms, flight_dir=args.flight_dir)
    engine = None
    if args.alerts:
        engine = AlertEngine(serving_rules(p99_budget_ms=args.p99_budget_ms))
    if args.manifest_out:
        manifest = RunManifest.create(
            seed=args.seed, config=config, telemetry={},
            artifacts=sorted(artifacts),
            trace_out=args.trace_out, flight_dir=args.flight_dir,
            slo_ms=args.slo_ms)
        save_result({"command": "serve", "run_id": manifest.run_id},
                    args.manifest_out, manifest=manifest)
        print(f"manifest written beside {args.manifest_out} "
              f"(run {manifest.run_id})", file=sys.stderr)

    async def _run() -> None:
        async with ModelServer(artifacts, config, alerts=engine) as server:
            async with ServeHTTP(server, host=args.host,
                                 port=args.port) as front:
                for key, meta in server.models().items():
                    quant = meta.get("quantization") or {}
                    tag = (f"{quant.get('bits')}-bit" if quant else "float")
                    print(f"serving {key!r} [{meta['fingerprint']}] ({tag}) "
                          f"x{config.shards} shard(s)", file=sys.stderr)
                print(f"listening on {front.url} "
                      f"(POST /infer, GET /healthz, GET /models)",
                      file=sys.stderr)
                try:
                    await asyncio.Event().wait()
                except asyncio.CancelledError:
                    pass

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("repro serve: shutting down", file=sys.stderr)
    if engine is not None and engine.alerts:
        print(engine.summary_table(
            title=f"serve alerts ({len(engine.alerts)} fired)"))
        return 1
    return 0


def _cmd_loadgen(args) -> int:
    """Generate (or replay) synthetic traffic against a serving stack."""
    import asyncio

    from repro.serve import (
        LoadGenConfig,
        ModelServer,
        ServeConfig,
        generate_trace,
        http_loadgen,
        load_trace,
        run_loadgen,
        save_trace,
    )

    if args.replay:
        trace = load_trace(args.replay)
        config = None
        print(f"[replaying {len(trace)} requests from {args.replay}]",
              file=sys.stderr)
    else:
        config = LoadGenConfig(seed=args.seed, n_requests=args.requests,
                               rate_rps=args.rate, alpha=args.alpha,
                               deadline_ms=args.deadline_ms)
        trace = generate_trace(config)
    if args.save_trace:
        save_trace(trace, args.save_trace, config)
        print(f"trace written to {args.save_trace}", file=sys.stderr)
    if args.url:
        report = asyncio.run(http_loadgen(args.url, trace,
                                          time_scale=args.time_scale))
    else:
        artifacts = _parse_artifacts(args.artifact, args.demo, None,
                                     args.bits, args.seed)
        if not artifacts:
            raise SystemExit("repro loadgen: give --url, ARTIFACT dirs, "
                             "or --demo")
        serve_config = ServeConfig(
            max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
            shards=args.shards, backend=args.backend,
            default_deadline_ms=args.deadline_ms,
            slo_ms=args.slo_ms, flight_dir=args.flight_dir)

        async def _run():
            async with ModelServer(artifacts, serve_config) as server:
                return await run_loadgen(server, trace,
                                         time_scale=args.time_scale)

        report = asyncio.run(_run())
    print(report.to_table())
    if args.bench_out:
        from repro.monitor import BenchStore
        store = BenchStore(args.bench_out)
        store.append("serve", report.metrics())
        print(f"trajectory appended to {store.path('serve')}", file=sys.stderr)
    if args.out:
        import dataclasses
        manifest = RunManifest.create(
            seed=args.seed, config=config, trace_out=args.trace_out,
            flight_dir=args.flight_dir, slo_ms=args.slo_ms,
            requests=len(trace))
        save_result(dataclasses.asdict(report), args.out, manifest=manifest)
        print(f"report written to {args.out} (run {manifest.run_id})",
              file=sys.stderr)
    return 1 if (report.errors or not report.completed) else 0


def _cmd_analyze(args) -> int:
    """Attribute tail latency from a trace or flight-recorder dump."""
    from repro.errors import ServeError
    from repro.serve import analyze_requests, load_requests, render_analysis

    try:
        records = load_requests(args.path)
        report = analyze_requests(records, top=args.top)
    except (OSError, ServeError) as exc:
        raise SystemExit(f"repro analyze: {exc}")
    print(render_analysis(report, source=args.path), end="")
    return 0


def _cmd_profile(args) -> int:
    """Profile autograd ops over a short training run of an example model."""
    dataset_by_example = {"quickstart": "cifar", "faces": "faces",
                          "digits": "digits"}
    train, _ = _build_dataset(dataset_by_example[args.example], args.data_seed)
    builder = _build_model_builder(dataset_by_example[args.example], train, args.seed)
    from repro.datasets.transforms import images_to_batch, normalize_batch
    from repro.pipeline.trainer import Trainer

    batch = images_to_batch(train.images)
    batch, _, _ = normalize_batch(batch)
    labels = train.labels
    if args.steps is not None:
        limit = max(1, args.steps) * args.batch_size
        batch, labels = batch[:limit], labels[:limit]
    training = TrainingConfig(epochs=1, batch_size=args.batch_size,
                              lr=args.lr, seed=args.seed)
    trainer = Trainer(builder(), batch, labels, training)
    trainer.train_epoch()  # warm-up: first-touch allocations stay unprofiled
    with profile() as prof:
        trainer.train_epoch()
    print(prof.table(top_k=args.top,
                     title=f"autograd ops: 1 epoch of {args.example} "
                           f"({len(labels)} images, batch {args.batch_size})"))
    print(f"\nop time {prof.total_op_time * 1e3:.1f} ms over {prof.total_calls} "
          f"calls covers {prof.coverage():.1%} of the "
          f"{prof.wall_time * 1e3:.1f} ms training step")
    print()
    print(prof.kernel_table(top_k=args.top,
                            title=f"backend kernels ({_backend.active().name})"))
    print(f"\nkernel time {prof.total_kernel_time * 1e3:.1f} ms covers "
          f"{prof.kernel_coverage():.1%} of the training step")
    return 0


def _cmd_bench_kernels(args) -> int:
    """Per-kernel reference-vs-fast timing table."""
    from repro.backend.bench import bench_fused, bench_kernels
    from repro.telemetry import format_records

    from repro.errors import ConfigError
    try:
        records = bench_kernels(kernels=args.kernels or None,
                                repeats=args.repeats, seed=args.seed,
                                dtype=args.dtype)
    except ConfigError as exc:
        raise SystemExit(f"repro bench-kernels: {exc}")
    if not args.kernels:
        # the graph compiler's fused elementwise chains, eager vs fused
        records += bench_fused(repeats=args.repeats, seed=args.seed)
    dtype_suffix = f", {args.dtype}" if args.dtype else ""
    print(format_records(
        records,
        title=f"kernel micro-benchmark (best of {args.repeats}{dtype_suffix})",
    ))
    overridden = [r for r in records
                  if r["overridden"] and not str(r["kernel"]).startswith("fused[")]
    mean_speedup = None
    if overridden:
        mean_speedup = float(np.mean([r["speedup"] for r in overridden]))
        print(f"\nmean speedup over {len(overridden)} overridden kernels: "
              f"{mean_speedup:.2f}x")
    vs64 = [r["vs_float64"] for r in records if "vs_float64" in r]
    mean_vs64 = None
    if vs64:
        mean_vs64 = float(np.mean(vs64))
        print(f"mean {args.dtype}-vs-float64 speedup on the fast backend: "
              f"{mean_vs64:.2f}x")
    if args.bench_out:
        from repro.monitor import BenchStore
        metrics = {}
        if mean_speedup is not None:
            metrics[f"mean_speedup_{args.dtype or 'float64'}"] = round(
                mean_speedup, 4)
        if mean_vs64 is not None:
            metrics[f"mean_vs_float64_{args.dtype}"] = round(mean_vs64, 4)
        if metrics:
            store = BenchStore(args.bench_out)
            store.append("precision", metrics)
            print(f"trajectory appended to {store.path('precision')}")
    if args.csv:
        from repro.pipeline.sweep import SweepResult
        SweepResult(records=records).to_csv(args.csv)
        print(f"records written to {args.csv}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DAC'20 compressed-model data-stealing reproduction"
    )
    parser.add_argument("--backend", default="reference",
                        choices=["reference", "fast", "compiled"],
                        help="kernel backend for all op dispatch "
                             "(fast: cached indices + fused inference; "
                             "compiled: sliding-window gathers + tiled "
                             "matmul for the graph compiler)")
    parser.add_argument("--compile", action="store_true", default=False,
                        help="capture each training-step signature into a "
                             "static replay schedule (repro.graph); "
                             "bit-identical losses, less per-step dispatch")
    parser.add_argument("--dtype", default="float32",
                        choices=["float32", "float64"],
                        help="compute-precision policy for tensors, "
                             "parameters and batches (float64: the "
                             "bit-exact wide path; metrics always "
                             "accumulate in float64)")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="worker processes for sweep points / attack "
                             "arms (default: serial; results are identical)")
    parser.add_argument("--ddp-workers", type=int, default=None, metavar="N",
                        help="data-parallel training ranks per run "
                             "(repro.parallel.ddp: shared-memory tensors, "
                             "deterministic all-reduce; default: serial)")
    parser.add_argument("--trace-out", metavar="PATH", default=None,
                        help="write a Chrome-trace JSON of the run's spans")
    parser.add_argument("--serve-metrics", type=int, metavar="PORT",
                        default=None,
                        help="serve live Prometheus /metrics + JSON /health "
                             "on 127.0.0.1:PORT for the duration of the run "
                             "(0 picks a free port)")
    parser.add_argument("--log-level", default="warning",
                        choices=["debug", "info", "warning", "error"],
                        help="structured JSONL event-log threshold")
    parser.add_argument("--log-out", metavar="PATH", default=None,
                        help="append JSONL events to PATH (default: stderr "
                             "when --log-level is raised)")
    sub = parser.add_subparsers(dest="command", required=True)

    def _common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--dataset",
                       choices=["cifar", "cifar-gray", "faces", "digits"],
                       default="cifar")
        p.add_argument("--epochs", type=int, default=15)
        p.add_argument("--batch-size", type=int, default=32)
        p.add_argument("--lr", type=float, default=0.08)
        p.add_argument("--seed", type=int, default=7)
        p.add_argument("--data-seed", type=int, default=3)

    attack = sub.add_parser("attack", help="run the full attack flow")
    _common(attack)
    attack.add_argument("--rate", type=float, default=20.0,
                        help="correlation rate for the deep layer group")
    attack.add_argument("--bits", type=int, nargs="+", default=[4],
                        help="bitwidth(s); several values run as "
                             "independent arms (see --workers)")
    attack.add_argument("--method", default="target_correlated",
                        choices=["target_correlated", "weighted_entropy",
                                 "uniform", "kmeans"])
    attack.add_argument("--out", help="write the result summary as JSON "
                                      "(single --bits only)")
    attack.set_defaults(func=_cmd_attack)

    sweep = sub.add_parser("sweep",
                           help="bits x rate grid of attack runs")
    _common(sweep)
    sweep.add_argument("--bits", type=int, nargs="+", default=[4, 3, 2])
    sweep.add_argument("--rates", type=float, nargs="+", default=[20.0])
    sweep.add_argument("--method", default="target_correlated",
                       choices=["target_correlated", "weighted_entropy",
                                "uniform", "kmeans"])
    sweep.add_argument("--csv", metavar="PATH", default=None,
                       help="export the records as CSV")
    sweep.add_argument("--point-timeout", type=float, default=None,
                       help="per-point timeout in seconds (parallel runs)")
    sweep.set_defaults(func=_cmd_sweep)

    monitor = sub.add_parser(
        "monitor", help="attack run with in-training probes + timeseries")
    _common(monitor)
    monitor.add_argument("--rate", type=float, default=20.0,
                         help="correlation rate for the deep layer group")
    monitor.add_argument("--bits", type=int, default=4)
    monitor.add_argument("--method", default="target_correlated",
                         choices=["target_correlated", "weighted_entropy",
                                  "uniform", "kmeans"])
    monitor.add_argument("--every-batches", type=int, default=None,
                         metavar="N",
                         help="additionally fire batch-scope probes every "
                              "N batches (default: epoch ticks only)")
    monitor.add_argument("--decode-images", type=int, default=4,
                         help="images decoded by the mid-training decode probe")
    monitor.add_argument("--timeseries", metavar="PATH", default=None,
                         help="timeseries JSONL output (default: derived "
                              "from --out, else run.timeseries.jsonl)")
    monitor.add_argument("--out", help="also write the result summary + "
                                       "manifest as JSON")
    monitor.add_argument("--alerts", action="store_true", default=False,
                         help="evaluate the default alert rules per tick "
                              "(correlation leak, PSNR stall, throughput "
                              "collapse, worker death, disabled probes)")
    monitor.set_defaults(func=_cmd_monitor)

    alerts = sub.add_parser(
        "alerts", help="replay alert rules over a monitor timeseries")
    alerts.add_argument("timeseries", metavar="TIMESERIES",
                        help="timeseries JSONL file to replay")
    alerts.add_argument("--corr-above", type=float, default=0.25,
                        help="correlation_leak threshold on corr_abs_mean")
    alerts.add_argument("--psnr-window", type=int, default=3,
                        help="psnr_stall window in ticks")
    alerts.set_defaults(func=_cmd_alerts)

    report = sub.add_parser(
        "report", help="render a monitor timeseries or benchmark trend")
    report.add_argument("timeseries", nargs="*", metavar="TIMESERIES",
                        help="one timeseries JSONL to render, or two to diff")
    report.add_argument("--bench", metavar="NAME", default=None,
                        help="render the BENCH_<NAME>.json trajectory instead")
    report.add_argument("--bench-dir", metavar="DIR", default=".",
                        help="directory holding BENCH_*.json files")
    report.add_argument("--threshold", type=float, default=0.2,
                        help="regression threshold (fraction of baseline) "
                             "for --bench")
    report.set_defaults(func=_cmd_report)

    benign = sub.add_parser("benign", help="train the benign reference")
    _common(benign)
    benign.set_defaults(func=_cmd_benign)

    audit = sub.add_parser("audit", help="audit an attacked model (defender view)")
    _common(audit)
    audit.add_argument("--rate", type=float, default=20.0)
    audit.add_argument("--bits", type=int, default=4)
    audit.add_argument("--method", default="target_correlated")
    audit.set_defaults(func=_cmd_audit)

    prof = sub.add_parser("profile",
                          help="per-autograd-op cost table for a training run")
    prof.add_argument("example", nargs="?", default="quickstart",
                      choices=["quickstart", "faces", "digits"],
                      help="which example's dataset/model to profile")
    prof.add_argument("--steps", type=int, default=None,
                      help="limit the profiled epoch to this many batches")
    prof.add_argument("--batch-size", type=int, default=32)
    prof.add_argument("--lr", type=float, default=0.08)
    prof.add_argument("--seed", type=int, default=7)
    prof.add_argument("--data-seed", type=int, default=3)
    prof.add_argument("--top", type=int, default=12,
                      help="rows in the op table")
    prof.set_defaults(func=_cmd_profile)

    bench = sub.add_parser("bench-kernels",
                           help="per-kernel reference-vs-fast timing table")
    bench.add_argument("kernels", nargs="*",
                       help="kernel names to benchmark (default: all)")
    bench.add_argument("--repeats", type=int, default=10,
                       help="timing repetitions per kernel (best-of)")
    bench.add_argument("--seed", type=int, default=0,
                       help="seed for the benchmark inputs")
    bench.add_argument("--bench-out", metavar="DIR", default=None,
                       help="append the mean speedups to DIR/BENCH_precision.json "
                            "(trajectory across sessions)")
    bench.add_argument("--csv", metavar="PATH", default=None,
                       help="export the records as CSV")
    bench.set_defaults(func=_cmd_bench_kernels)

    serve = sub.add_parser(
        "serve", help="serve released model artifacts over HTTP")
    serve.add_argument("artifact", nargs="*", metavar="ARTIFACT",
                       help="artifact dirs to serve, as PATH or KEY=PATH")
    serve.add_argument("--demo", action="store_true", default=False,
                       help="also serve a generated demo artifact "
                            "(random resnet8_tiny; see --bits)")
    serve.add_argument("--demo-dir", metavar="DIR", default=None,
                       help="where --demo materializes the artifact "
                            "(default: a temp dir)")
    serve.add_argument("--bits", type=int, default=None,
                       help="uniform-quantize the --demo artifact to this "
                            "bitwidth before release")
    serve.add_argument("--seed", type=int, default=7,
                       help="weight seed for the --demo artifact")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="listen port (0 picks a free port)")
    serve.add_argument("--shards", type=int, default=1,
                       help="persistent inference worker processes")
    serve.add_argument("--max-batch", type=int, default=16,
                       help="request coalescing cap per dispatched batch")
    serve.add_argument("--max-wait-ms", type=float, default=4.0,
                       help="longest a request coalesces before dispatch")
    serve.add_argument("--queue-capacity", type=int, default=512,
                       help="admission cap; beyond it requests are refused")
    serve.add_argument("--deadline-ms", type=float, default=1000.0,
                       help="default per-request deadline")
    serve.add_argument("--alerts", action="store_true", default=False,
                       help="evaluate the serving alert rules per batch "
                            "(p99 breach, shard death, errors, refusals); "
                            "exit 1 if any fired")
    serve.add_argument("--p99-budget-ms", type=float, default=250.0,
                       help="latency budget for the serve_p99_breach rule")
    serve.add_argument("--slo-ms", type=float, default=250.0,
                       help="per-request latency SLO; responses above it "
                            "count as breaches on serve.slo.latency_ms "
                            "(the latency_slo burn-rate rule)")
    serve.add_argument("--flight-dir", metavar="DIR", default=None,
                       help="where the flight recorder dumps its last-N-"
                            "requests JSONL when an alert fires or a "
                            "shard crashes")
    serve.add_argument("--manifest-out", metavar="PATH", default=None,
                       help="write a run manifest (recording --trace-out, "
                            "--flight-dir and the serve config) as JSON")
    serve.set_defaults(func=_cmd_serve)

    loadgen = sub.add_parser(
        "loadgen", help="synthetic open-loop traffic against a server")
    loadgen.add_argument("artifact", nargs="*", metavar="ARTIFACT",
                         help="artifact dirs for an in-process server "
                              "(ignored with --url)")
    loadgen.add_argument("--url", metavar="URL", default=None,
                         help="drive a running `repro serve` over HTTP "
                              "instead of an in-process server")
    loadgen.add_argument("--demo", action="store_true", default=False,
                         help="generate a demo artifact for the in-process "
                              "server")
    loadgen.add_argument("--bits", type=int, default=None,
                         help="quantization bitwidth for the --demo artifact")
    loadgen.add_argument("--requests", type=int, default=200,
                         help="requests in the generated trace")
    loadgen.add_argument("--rate", type=float, default=200.0,
                         help="mean arrival rate, requests/second")
    loadgen.add_argument("--alpha", type=float, default=1.5,
                         help="Pareto tail index of inter-arrival gaps "
                              "(smaller = burstier)")
    loadgen.add_argument("--seed", type=int, default=0,
                         help="trace seed (same seed => byte-identical trace)")
    loadgen.add_argument("--deadline-ms", type=float, default=1000.0,
                         help="per-request deadline recorded in the trace")
    loadgen.add_argument("--time-scale", type=float, default=1.0,
                         help="stretch (>1) or compress (<1) the schedule")
    loadgen.add_argument("--replay", metavar="TRACE", default=None,
                         help="replay an existing trace JSONL instead of "
                              "generating one")
    loadgen.add_argument("--save-trace", metavar="PATH", default=None,
                         help="write the trace JSONL for later --replay")
    loadgen.add_argument("--shards", type=int, default=1,
                         help="shards for the in-process server")
    loadgen.add_argument("--max-batch", type=int, default=16)
    loadgen.add_argument("--max-wait-ms", type=float, default=4.0)
    loadgen.add_argument("--bench-out", metavar="DIR", default=None,
                         help="append p50/p99/throughput to "
                              "DIR/BENCH_serve.json")
    loadgen.add_argument("--out", metavar="PATH", default=None,
                         help="write the load report + run manifest "
                              "(recording --trace-out) as JSON")
    loadgen.add_argument("--slo-ms", type=float, default=250.0,
                         help="latency SLO for the in-process server")
    loadgen.add_argument("--flight-dir", metavar="DIR", default=None,
                         help="flight-recorder dump dir for the "
                              "in-process server")
    loadgen.set_defaults(func=_cmd_loadgen)

    analyze = sub.add_parser(
        "analyze",
        help="attribute tail latency from a trace or flight dump")
    analyze.add_argument("path", metavar="TRACE_OR_DUMP",
                         help="a --trace-out Chrome trace JSON or a "
                              "flight-recorder JSONL dump")
    analyze.add_argument("--top", type=int, default=5,
                         help="slowest requests to list individually")
    analyze.set_defaults(func=_cmd_analyze)

    info = sub.add_parser("info", help="print versions/platform for bug reports")
    info.add_argument("--bench-dir", metavar="DIR", default=".",
                      help="directory scanned for BENCH_*.json trajectories")
    info.set_defaults(func=_cmd_info)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    stream = None
    if args.log_out is None and args.log_level in ("debug", "info"):
        stream = sys.stderr
    logger = configure_logging(path=args.log_out, stream=stream,
                               level=args.log_level)
    recorder = None
    if args.trace_out:
        recorder = TraceRecorder()
        set_recorder(recorder)
    exporter = None
    if args.serve_metrics is not None:
        from repro.telemetry.export import serve_metrics
        try:
            exporter = serve_metrics(port=args.serve_metrics)
        except OSError as exc:
            raise SystemExit(f"repro: error: could not bind metrics "
                             f"exporter on port {args.serve_metrics}: {exc}")
        print(f"metrics exporter serving {exporter.url}/metrics "
              f"(+ /health)", file=sys.stderr)
    logger.info("cli.start", command=args.command, argv=list(argv or sys.argv[1:]))
    trace_error = None
    # restored afterwards so in-process callers (tests) are unaffected
    from repro import graph as _graph
    from repro.parallel import ddp as _ddp
    previous_backend = _backend.set_backend(args.backend)
    previous_dtype = _precision.set_default_dtype(args.dtype)
    previous_compile = _graph.set_compile_default(args.compile)
    previous_ddp = _ddp.set_default_ddp_workers(args.ddp_workers)
    try:
        code = args.func(args)
    except Exception as exc:
        logger.error("cli.error", command=args.command, error=repr(exc))
        raise
    finally:
        _backend.set_backend(previous_backend)
        _precision.set_default_dtype(previous_dtype)
        _graph.set_compile_default(previous_compile)
        _ddp.set_default_ddp_workers(previous_ddp)
        if exporter is not None:
            from repro.telemetry.export import stop_exporter
            stop_exporter()
        if recorder is not None:
            set_recorder(None)
            try:
                recorder.to_chrome_trace(args.trace_out)
            except OSError as exc:
                trace_error = exc
                print(f"repro: error: could not write trace to "
                      f"{args.trace_out}: {exc}", file=sys.stderr)
            else:
                print(f"trace written to {args.trace_out} "
                      f"({len(recorder)} spans)", file=sys.stderr)
    if trace_error is not None:
        code = 1
    logger.info("cli.done", command=args.command, exit_code=code)
    return code


if __name__ == "__main__":
    raise SystemExit(main())
