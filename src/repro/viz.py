"""Terminal visualization helpers (ASCII images and histograms).

Used by the examples and the Fig. 5 benchmark to give a direct visual
check of reconstructed images without any plotting dependency.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

_LEVELS = " .:-=+*#%@"

_SPARK_TICKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """Render a numeric series as a one-line unicode trend.

    Values map linearly onto an 8-step bar ramp between the series min
    and max.  Degenerate inputs stay printable: an empty series renders
    as ``""``, a constant series as a flat mid-level line, and NaN/inf
    samples as ``·`` placeholders (they are excluded from the scale).
    When ``width`` is given and the series is longer, it is subsampled
    to ``width`` points (first and last samples always survive).
    """
    series = [float(v) for v in values]
    if not series:
        return ""
    if width is not None and width > 0 and len(series) > width:
        if width == 1:
            series = [series[-1]]
        else:
            idx = np.linspace(0, len(series) - 1, width)
            series = [series[int(round(i))] for i in idx]
    finite = [v for v in series if np.isfinite(v)]
    if not finite:
        return "·" * len(series)
    low, high = min(finite), max(finite)
    span = high - low
    out = []
    for value in series:
        if not np.isfinite(value):
            out.append("·")
        elif span <= 0:
            out.append(_SPARK_TICKS[len(_SPARK_TICKS) // 2])
        else:
            step = int((value - low) / span * (len(_SPARK_TICKS) - 1))
            out.append(_SPARK_TICKS[min(step, len(_SPARK_TICKS) - 1)])
    return "".join(out)


def trend(values: Sequence[float]) -> str:
    """Compact ``first -> last`` label for a series (finite values only)."""
    finite = [float(v) for v in values if np.isfinite(v)]
    if not finite:
        return "n/a"
    if len(finite) == 1:
        return f"{finite[0]:.4g}"
    return f"{finite[0]:.4g} -> {finite[-1]:.4g}"


def ascii_image(image: np.ndarray, max_width: int = 48) -> str:
    """Render a grayscale or RGB image as ASCII art.

    Each pixel becomes two characters (terminal cells are ~2:1), mapped
    through a 10-step brightness ramp.  Wide images are subsampled to
    ``max_width`` pixels.
    """
    image = np.asarray(image)
    if image.ndim == 3:
        if image.shape[2] == 3:
            gray = image.astype(float) @ np.array([0.299, 0.587, 0.114])
        else:
            gray = image[..., 0].astype(float)
    else:
        gray = image.astype(float)
    step = max(1, int(np.ceil(gray.shape[1] / max_width)))
    gray = gray[::step, ::step]
    rows = []
    for row in gray:
        cells = (np.clip(row, 0, 255) / 256.0 * len(_LEVELS)).astype(int)
        rows.append("".join(_LEVELS[min(c, len(_LEVELS) - 1)] * 2 for c in cells))
    return "\n".join(rows)


def side_by_side(left: str, right: str, gap: int = 4,
                 titles: Optional[Sequence[str]] = None) -> str:
    """Join two ASCII blocks horizontally (e.g. original vs. stolen)."""
    left_lines = left.splitlines()
    right_lines = right.splitlines()
    width = max((len(line) for line in left_lines), default=0)
    if titles is not None:
        left_lines = [titles[0]] + left_lines
        right_lines = [titles[1]] + right_lines
        width = max(width, len(titles[0]))
    height = max(len(left_lines), len(right_lines))
    left_lines += [""] * (height - len(left_lines))
    right_lines += [""] * (height - len(right_lines))
    return "\n".join(
        f"{l.ljust(width)}{' ' * gap}{r}" for l, r in zip(left_lines, right_lines)
    )


def ascii_histogram(values: np.ndarray, bins: int = 24, width: int = 40,
                    title: str = "") -> str:
    """Horizontal bar-chart of a sample's histogram."""
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    counts, edges = np.histogram(values, bins=bins)
    peak = counts.max() if counts.max() else 1
    lines = [title] if title else []
    for count, low, high in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * count / peak))
        lines.append(f"{low:9.3f}..{high:9.3f} | {bar}")
    return "\n".join(lines)
