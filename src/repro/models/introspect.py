"""Model introspection helpers shared by the attacks and quantizers.

The encoding attacks and quantizers both operate on the model's *weight
tensors* (conv kernels and linear weight matrices) in a stable layer
order -- biases and BatchNorm affine parameters are excluded, matching
the paper's setup where data is encoded into the convolution/FC weights.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.nn.module import Module, Parameter


def encodable_parameters(model: Module) -> List[Tuple[str, Parameter]]:
    """Ordered (name, parameter) list of conv/linear weight tensors.

    Order is the module-tree registration order, which for the models in
    this repo is input-to-output layer order -- the property the
    paper's layer grouping (Sec. IV-B) relies on.
    """
    selected: List[Tuple[str, Parameter]] = []
    for name, param in model.named_parameters():
        if not name.endswith(".weight"):
            continue
        if param.ndim < 2:  # BatchNorm gamma is 1-D; conv/linear are >= 2-D
            continue
        selected.append((name, param))
    return selected


def parameter_vector(model: Module, names: List[str] = None) -> np.ndarray:
    """Concatenate (a subset of) encodable weights into one flat vector."""
    params = encodable_parameters(model)
    if names is not None:
        wanted = set(names)
        params = [(n, p) for n, p in params if n in wanted]
    if not params:
        return np.zeros(0)
    return np.concatenate([p.data.reshape(-1) for _, p in params])


def set_parameter_vector(model: Module, vector: np.ndarray, names: List[str] = None) -> None:
    """Write a flat vector back into the model's encodable weights."""
    params = encodable_parameters(model)
    if names is not None:
        wanted = set(names)
        params = [(n, p) for n, p in params if n in wanted]
    offset = 0
    for _, param in params:
        size = param.size
        param.data = np.asarray(vector[offset:offset + size], dtype=param.data.dtype).reshape(param.shape)
        offset += size
    if offset != len(vector):
        raise ValueError(
            f"vector length {len(vector)} does not match total weight count {offset}"
        )
