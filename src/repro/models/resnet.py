"""ResNet family for CIFAR-sized inputs (He et al., 2016).

``resnet34_cifar`` builds the paper's full-depth model.  The benchmark
suite uses the narrow variants (same topology family, fewer/narrower
blocks) because the substrate trains on CPU; layer-group structure --
which is what the paper's Eq. 2 exploits -- is preserved.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.autograd.tensor import Tensor
from repro.nn.blocks import BasicBlock, ConvBnRelu
from repro.nn.layers import Linear
from repro.nn.module import Module, Sequential
from repro.nn.pooling import GlobalAvgPool2d


class ResNet(Module):
    """CIFAR-style ResNet: 3x3 stem, three/four stages, global pool, FC."""

    def __init__(
        self,
        block_counts: Sequence[int],
        widths: Sequence[int],
        num_classes: int = 10,
        in_channels: int = 3,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if len(block_counts) != len(widths):
            raise ValueError("block_counts and widths must have the same length")
        rng = rng if rng is not None else np.random.default_rng()
        self.stem = ConvBnRelu(in_channels, widths[0], kernel_size=3, stride=1,
                               padding=1, rng=rng)
        stages: List[Module] = []
        current = widths[0]
        for stage_index, (count, width) in enumerate(zip(block_counts, widths)):
            blocks: List[Module] = []
            for block_index in range(count):
                stride = 2 if stage_index > 0 and block_index == 0 else 1
                blocks.append(BasicBlock(current, width, stride=stride, rng=rng))
                current = width
            stages.append(Sequential(*blocks))
        self.stages = Sequential(*stages)
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(current, num_classes, rng=rng)
        self.block_counts = tuple(block_counts)
        self.widths = tuple(widths)

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem(x)
        out = self.stages(out)
        out = self.pool(out)
        return self.fc(out)

    @property
    def num_conv_layers(self) -> int:
        """Number of convolutional layers on the main path (stem + blocks)."""
        return 1 + 2 * sum(self.block_counts)


def resnet34_cifar(num_classes: int = 10, in_channels: int = 3,
                   rng: Optional[np.random.Generator] = None) -> ResNet:
    """The paper's ResNet-34 configuration for 32x32 inputs."""
    return ResNet([3, 4, 6, 3], [64, 128, 256, 512], num_classes, in_channels, rng)


def resnet18_cifar(num_classes: int = 10, in_channels: int = 3,
                   rng: Optional[np.random.Generator] = None) -> ResNet:
    return ResNet([2, 2, 2, 2], [64, 128, 256, 512], num_classes, in_channels, rng)


def resnet10(num_classes: int = 10, in_channels: int = 3, width: int = 16,
             rng: Optional[np.random.Generator] = None) -> ResNet:
    """Narrow ResNet-10 used for CPU-scale experiment runs."""
    return ResNet([1, 1, 1, 1], [width, 2 * width, 4 * width, 8 * width],
                  num_classes, in_channels, rng)


def resnet8_tiny(num_classes: int = 10, in_channels: int = 3, width: int = 8,
                 rng: Optional[np.random.Generator] = None) -> ResNet:
    """Three-stage tiny ResNet for fast tests and benchmarks."""
    return ResNet([1, 1, 1], [width, 2 * width, 4 * width],
                  num_classes, in_channels, rng)
