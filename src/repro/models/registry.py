"""Name → builder registry so configs can reference models by string."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ConfigError
from repro.nn.module import Module

_REGISTRY: Dict[str, Callable[..., Module]] = {}


def register_model(name: str, builder: Callable[..., Module] = None):
    """Register a model builder (usable as a decorator)."""
    def _register(fn: Callable[..., Module]) -> Callable[..., Module]:
        if name in _REGISTRY:
            raise ConfigError(f"model {name!r} is already registered")
        _REGISTRY[name] = fn
        return fn

    if builder is not None:
        return _register(builder)
    return _register


def build_model(name: str, **kwargs) -> Module:
    """Instantiate a registered model by name."""
    if name not in _REGISTRY:
        raise ConfigError(f"unknown model {name!r}; available: {sorted(_REGISTRY)}")
    return _REGISTRY[name](**kwargs)


def available_models() -> List[str]:
    return sorted(_REGISTRY)


def _populate_defaults() -> None:
    from repro.models import face_net, mlp, resnet, simple_cnn, vgg

    defaults = {
        "resnet34_cifar": resnet.resnet34_cifar,
        "resnet18_cifar": resnet.resnet18_cifar,
        "resnet10": resnet.resnet10,
        "resnet8_tiny": resnet.resnet8_tiny,
        "simple_cnn": simple_cnn.SimpleCNN,
        "mlp": mlp.MLP,
        "face_net_mini": face_net.face_net_mini,
        "vgg_tiny": vgg.vgg_tiny,
        "vgg_small": vgg.vgg_small,
    }
    for name, builder in defaults.items():
        if name not in _REGISTRY:
            _REGISTRY[name] = builder


_populate_defaults()
