"""Face-recognition model: the stand-in for Inception-ResNet-v1.

The paper trains Inception-ResNet-v1 with a softmax classifier head on
FaceScrub.  The attack only needs a face classifier whose weights can
memorise pixel data, so this compact residual embedding network (conv
stem, residual stages, embedding layer, classifier head) exercises the
identical attack code path at CPU scale.  See DESIGN.md substitutions.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.blocks import BasicBlock, ConvBnRelu
from repro.nn.layers import Linear
from repro.nn.module import Module, Sequential
from repro.nn.pooling import GlobalAvgPool2d


class FaceNetMini(Module):
    """Residual embedding network with a softmax classifier head."""

    def __init__(
        self,
        num_identities: int = 50,
        in_channels: int = 1,
        width: int = 16,
        embedding_dim: int = 64,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.stem = ConvBnRelu(in_channels, width, rng=rng)
        self.stage1 = BasicBlock(width, 2 * width, stride=2, rng=rng)
        self.stage2 = BasicBlock(2 * width, 4 * width, stride=2, rng=rng)
        self.stage3 = BasicBlock(4 * width, 4 * width, stride=1, rng=rng)
        self.pool = GlobalAvgPool2d()
        self.embedding = Linear(4 * width, embedding_dim, rng=rng)
        self.classifier = Linear(embedding_dim, num_identities, rng=rng)
        self.embedding_dim = embedding_dim

    def embed(self, x: Tensor) -> Tensor:
        """L2-normalised face embedding (FaceNet-style)."""
        features = self._features(x)
        norm = F.sqrt(F.sum(F.mul(features, features), axis=1, keepdims=True))
        return F.div(features, F.add(norm, Tensor(1e-8)))

    def _features(self, x: Tensor) -> Tensor:
        out = self.stem(x)
        out = self.stage1(out)
        out = self.stage2(out)
        out = self.stage3(out)
        out = self.pool(out)
        return self.embedding(out)

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(F.relu(self._features(x)))


def face_net_mini(num_identities: int = 50, in_channels: int = 1, width: int = 16,
                  rng: Optional[np.random.Generator] = None) -> FaceNetMini:
    return FaceNetMini(num_identities=num_identities, in_channels=in_channels,
                       width=width, rng=rng)
