"""VGG-style plain convolutional stacks (no residual connections).

Adds architectural diversity to the model zoo: the attack's layer
grouping applies to any input-to-output conv ordering, and a plain
stack is the simplest instance of it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.autograd.tensor import Tensor
from repro.nn.blocks import ConvBnRelu
from repro.nn.layers import Flatten, Linear
from repro.nn.module import Module, Sequential
from repro.nn.pooling import MaxPool2d

# 'M' entries are 2x2 max-pools, ints are conv output widths.
_CONFIGS = {
    "vgg_tiny": (8, "M", 16, "M", 32, "M"),
    "vgg_small": (16, 16, "M", 32, 32, "M", 64, 64, "M"),
}


class VGG(Module):
    """Conv-BN-ReLU stack with interleaved max-pools and an MLP head."""

    def __init__(
        self,
        config: Sequence[Union[int, str]],
        num_classes: int = 10,
        in_channels: int = 3,
        image_size: int = 32,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        layers: List[Module] = []
        channels = in_channels
        spatial = image_size
        for entry in config:
            if entry == "M":
                layers.append(MaxPool2d(2))
                spatial //= 2
            else:
                layers.append(ConvBnRelu(channels, int(entry), rng=rng))
                channels = int(entry)
        if spatial < 1:
            raise ValueError("too many pooling stages for this image size")
        self.features = Sequential(*layers)
        self.flatten = Flatten()
        self.classifier = Linear(channels * spatial * spatial, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.flatten(self.features(x)))


def vgg_tiny(num_classes: int = 10, in_channels: int = 3, image_size: int = 32,
             rng: Optional[np.random.Generator] = None) -> VGG:
    return VGG(_CONFIGS["vgg_tiny"], num_classes, in_channels, image_size, rng)


def vgg_small(num_classes: int = 10, in_channels: int = 3, image_size: int = 32,
              rng: Optional[np.random.Generator] = None) -> VGG:
    return VGG(_CONFIGS["vgg_small"], num_classes, in_channels, image_size, rng)
