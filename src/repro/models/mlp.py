"""Fully connected classifier over flattened inputs."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.layers import Linear
from repro.nn.module import Module


class MLP(Module):
    """Multi-layer perceptron with ReLU activations.

    Args:
        layer_sizes: e.g. ``[3072, 256, 64, 10]`` -- input, hidden..., output.
    """

    def __init__(self, layer_sizes: Sequence[int],
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if len(layer_sizes) < 2:
            raise ValueError("MLP needs at least input and output sizes")
        rng = rng if rng is not None else np.random.default_rng()
        for index in range(len(layer_sizes) - 1):
            layer = Linear(layer_sizes[index], layer_sizes[index + 1], rng=rng)
            setattr(self, f"fc{index}", layer)
        self.depth = len(layer_sizes) - 1

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim > 2:
            x = F.flatten(x, 1)
        for index in range(self.depth):
            x = getattr(self, f"fc{index}")(x)
            if index < self.depth - 1:
                x = F.relu(x)
        return x
