"""Model zoo used by the paper's experiments.

* :func:`resnet34_cifar` -- the paper's CIFAR-10 classifier (full depth).
* Narrow/shallow ResNet variants for CPU-scale benchmark runs.
* :class:`SimpleCNN`, :class:`MLP` -- auxiliary models for tests.
* :func:`face_net_mini` -- the face-recognition stand-in for
  Inception-ResNet-v1 (see DESIGN.md substitutions).
"""

from repro.models.resnet import ResNet, resnet8_tiny, resnet10, resnet18_cifar, resnet34_cifar
from repro.models.simple_cnn import SimpleCNN
from repro.models.mlp import MLP
from repro.models.face_net import FaceNetMini, face_net_mini
from repro.models.vgg import VGG, vgg_small, vgg_tiny
from repro.models.registry import available_models, build_model, register_model
from repro.models.introspect import encodable_parameters, parameter_vector, set_parameter_vector

__all__ = [
    "ResNet", "resnet8_tiny", "resnet10", "resnet18_cifar", "resnet34_cifar",
    "SimpleCNN", "MLP", "FaceNetMini", "face_net_mini",
    "VGG", "vgg_tiny", "vgg_small",
    "available_models", "build_model", "register_model",
    "encodable_parameters", "parameter_vector", "set_parameter_vector",
]
