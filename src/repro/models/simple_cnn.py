"""A plain convolutional classifier used for fast tests and examples."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd.tensor import Tensor
from repro.nn.blocks import ConvBnRelu
from repro.nn.layers import Flatten, Linear
from repro.nn.module import Module
from repro.nn.pooling import MaxPool2d


class SimpleCNN(Module):
    """Two conv stages + MLP head for small square images.

    Args:
        in_channels: input channel count (1 for grayscale, 3 for RGB).
        num_classes: output classes.
        image_size: input height/width (square).
        width: channel width of the first conv stage.
    """

    def __init__(
        self,
        in_channels: int = 3,
        num_classes: int = 10,
        image_size: int = 32,
        width: int = 16,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.block1 = ConvBnRelu(in_channels, width, rng=rng)
        self.pool1 = MaxPool2d(2)
        self.block2 = ConvBnRelu(width, 2 * width, rng=rng)
        self.pool2 = MaxPool2d(2)
        self.flatten = Flatten()
        feature_size = (image_size // 4) ** 2 * 2 * width
        self.fc1 = Linear(feature_size, 4 * width, rng=rng)
        self.fc2 = Linear(4 * width, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        out = self.pool1(self.block1(x))
        out = self.pool2(self.block2(out))
        out = self.flatten(out)
        out = self.fc1(out).relu()
        return self.fc2(out)
