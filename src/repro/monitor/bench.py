"""Benchmark-trajectory store: record gated results, flag trend regressions.

The perf/quality gates (backend speedup, telemetry overhead, the
monitor overhead gate) assert hard thresholds, but a slow drift that
stays inside the threshold is invisible to them.  This module gives
every gated benchmark a *trajectory*: results append to
``BENCH_<name>.json`` with the machine fingerprint and run id, and the
comparator flags any metric that regressed more than a threshold
fraction against the stored history.

The store is deliberately plain JSON -- diffable, versionable, and
readable without this library::

    {"name": "monitor", "entries": [
        {"ts": ..., "run_id": "...", "fingerprint": "9f2c...",
         "machine": {...}, "metrics": {"epoch_s": 0.41, ...}}, ...]}
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.errors import ConfigError

PathLike = Union[str, os.PathLike]

#: History window the comparator baselines against.
DEFAULT_WINDOW = 8
#: Default regression threshold (fraction of the baseline).
DEFAULT_THRESHOLD = 0.2

#: Metric-name fragments implying "lower is better".
_LOWER_BETTER = ("time", "duration", "_s", "seconds", "overhead", "mape",
                 "latency", "rss", "mem")


def machine_info() -> Dict[str, Any]:
    """The benchmark-relevant identity of this machine."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpus": os.cpu_count() or 1,
    }


def machine_fingerprint(info: Optional[Mapping[str, Any]] = None) -> str:
    """Short stable hash of :func:`machine_info` (same box => same hash)."""
    payload = json.dumps(dict(info if info is not None else machine_info()),
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


def metric_direction(metric: str) -> str:
    """``"lower"`` or ``"higher"`` -- which way is better for this metric.

    Timing/size-flavoured names (``*_s``, ``*time*``, ``*overhead*``,
    ``mape``, ``rss``) are lower-better; everything else (speedup,
    accuracy, PSNR, SSIM, images/sec) is higher-better.
    """
    lowered = metric.lower()
    if any(fragment in lowered for fragment in _LOWER_BETTER):
        return "lower"
    return "higher"


@dataclass
class Regression:
    """One metric that moved past the threshold against its history."""

    metric: str
    baseline: float
    current: float
    change: float          # signed fraction vs. baseline
    direction: str         # which way is better for this metric
    entries: int           # history points behind the baseline

    def __str__(self) -> str:
        return (f"{self.metric}: {self.current:.4g} vs baseline "
                f"{self.baseline:.4g} ({self.change:+.1%}, "
                f"{self.direction} is better, n={self.entries})")


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def detect_regressions(
    entries: Sequence[Mapping[str, Any]],
    current: Mapping[str, float],
    threshold: float = DEFAULT_THRESHOLD,
    directions: Optional[Mapping[str, str]] = None,
    window: int = DEFAULT_WINDOW,
    fingerprint: Optional[str] = None,
) -> List[Regression]:
    """Flag metrics in ``current`` that regressed vs. the stored history.

    The baseline per metric is the median over the last ``window``
    history entries (restricted to the same machine ``fingerprint``
    when given and at least one entry matches -- cross-machine timings
    are not comparable).  A metric regresses when it moves more than
    ``threshold`` (fraction of baseline) in its *bad* direction; moves
    in the good direction never flag.
    """
    if threshold <= 0:
        raise ConfigError(f"threshold must be positive, got {threshold}")
    history = list(entries)
    if fingerprint is not None:
        same_box = [e for e in history if e.get("fingerprint") == fingerprint]
        if same_box:
            history = same_box
    regressions: List[Regression] = []
    for metric, value in current.items():
        value = float(value)
        past = [float(e["metrics"][metric]) for e in history[-window:]
                if metric in e.get("metrics", {})]
        past = [v for v in past if v == v]  # drop NaN history points
        if not past or value != value:
            continue
        baseline = _median(past)
        if baseline == 0.0:
            continue
        change = (value - baseline) / abs(baseline)
        direction = (directions or {}).get(metric, metric_direction(metric))
        regressed = (direction == "lower" and change > threshold) or \
                    (direction == "higher" and change < -threshold)
        if regressed:
            regressions.append(Regression(
                metric=metric, baseline=baseline, current=value,
                change=change, direction=direction, entries=len(past),
            ))
    return regressions


class BenchStore:
    """Append-only trajectory of benchmark results under one directory.

    Each benchmark name maps to ``<root>/BENCH_<name>.json``; appends
    are read-modify-write of the whole file (entries stay small and the
    writers are test sessions, not servers).
    """

    def __init__(self, root: PathLike = ".") -> None:
        self.root = os.fspath(root)

    def path(self, name: str) -> str:
        if not name or any(sep in name for sep in (os.sep, "/", "\0")):
            raise ConfigError(f"invalid benchmark name {name!r}")
        return os.path.join(self.root, f"BENCH_{name}.json")

    def entries(self, name: str) -> List[Dict[str, Any]]:
        """Stored history for ``name`` (empty when no file exists)."""
        path = self.path(name)
        if not os.path.exists(path):
            return []
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        entries = data.get("entries", [])
        if not isinstance(entries, list):
            raise ConfigError(f"{path}: 'entries' is not a list")
        return entries

    def append(self, name: str, metrics: Mapping[str, float],
               run_id: Optional[str] = None, **extra: Any) -> Dict[str, Any]:
        """Append one result entry; returns the entry as stored."""
        clean = {key: float(value) for key, value in metrics.items()
                 if isinstance(value, (int, float))}
        if not clean:
            raise ConfigError(f"no numeric metrics to record for {name!r}")
        if run_id is None:
            from repro.telemetry.events import get_logger
            run_id = get_logger().run_id
        info = machine_info()
        entry: Dict[str, Any] = {
            "ts": time.time(),
            "run_id": run_id,
            "fingerprint": machine_fingerprint(info),
            "machine": info,
            "metrics": clean,
        }
        if extra:
            entry["extra"] = dict(extra)
        entries = self.entries(name)
        entries.append(entry)
        path = self.path(name)
        if self.root:
            os.makedirs(self.root, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"name": name, "entries": entries}, handle,
                      indent=2, sort_keys=True)
            handle.write("\n")
        return entry

    def check(self, name: str, current: Mapping[str, float],
              threshold: float = DEFAULT_THRESHOLD,
              directions: Optional[Mapping[str, str]] = None,
              window: int = DEFAULT_WINDOW) -> List[Regression]:
        """Compare ``current`` against this store's history for ``name``."""
        return detect_regressions(
            self.entries(name), current, threshold=threshold,
            directions=directions, window=window,
            fingerprint=machine_fingerprint(),
        )

    def names(self) -> List[str]:
        """Benchmark names with a trajectory file under ``root``."""
        found = []
        try:
            listing = os.listdir(self.root)
        except OSError:
            return []
        for entry in sorted(listing):
            if entry.startswith("BENCH_") and entry.endswith(".json"):
                found.append(entry[len("BENCH_"):-len(".json")])
        return found


def trend_table(entries: Sequence[Mapping[str, Any]], name: str = "",
                width: int = 24) -> str:
    """Per-metric history table: latest value, median, sparkline."""
    from repro.telemetry.tables import format_table
    from repro.viz import sparkline

    metrics: List[str] = []
    for entry in entries:
        for key in entry.get("metrics", {}):
            if key not in metrics:
                metrics.append(key)
    rows: List[List[Any]] = []
    for metric in metrics:
        values = [float(e["metrics"][metric]) for e in entries
                  if metric in e.get("metrics", {})]
        finite = [v for v in values if v == v]
        rows.append([
            metric, len(values),
            f"{values[-1]:.4g}" if values else "n/a",
            f"{_median(finite):.4g}" if finite else "n/a",
            metric_direction(metric),
            sparkline(values, width=width),
        ])
    title = f"benchmark trend: {name}" if name else "benchmark trend"
    return format_table(
        ["metric", "n", "latest", "median", "better", "history"],
        rows, title=title,
    )
