"""The Monitor: probe orchestration + JSONL timeseries emission.

A :class:`Monitor` owns a set of probes and plugs into the
:class:`~repro.pipeline.trainer.Trainer`'s ``probes=`` seam.  The
trainer calls :meth:`on_epoch` after every epoch and :meth:`on_batch`
after every batch; the monitor decides which probes fire (epoch-scope
probes at epoch boundaries, batch-scope probes additionally every
``every_batches`` batches) and appends one structured record per probe
tick to

* its in-memory ``records`` list (tests, reports on live objects), and
* a JSONL timeseries file (when ``path`` is given), written through a
  dedicated PR-1 :class:`~repro.telemetry.events.EventLogger` keyed to
  the run manifest's run id.

**Failure isolation**: a probe that raises must never kill training.
The exception is recorded as a ``monitor.probe_error`` event (in the
timeseries and as a warning on the library logger), counted in the
``monitor.probe_errors`` metric, and the probe is disabled after
``max_probe_errors`` consecutive failures so a hard-broken probe cannot
flood the log.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.errors import ConfigError
from repro.monitor.probes import (
    CorrelationProbe,
    DecodeProbe,
    Probe,
    ProbeContext,
    WeightDriftProbe,
)
from repro.monitor.system import (
    GradNormProbe,
    KernelShareProbe,
    MemoryProbe,
    ThroughputProbe,
    UpdateRatioProbe,
)

#: Event names used in the timeseries JSONL.
PROBE_EVENT = "monitor.probe"
ERROR_EVENT = "monitor.probe_error"


def default_probes(decode_images: int = 4) -> List[Probe]:
    """The built-in probe set: leakage + systems, cheapest first."""
    return [
        CorrelationProbe(),
        WeightDriftProbe(),
        DecodeProbe(max_images=decode_images),
        GradNormProbe(),
        UpdateRatioProbe(),
        MemoryProbe(),
        ThroughputProbe(),
        KernelShareProbe(),
    ]


class Monitor:
    """Probe runner emitting a structured per-epoch/per-batch timeseries.

    Args:
        probes: probe instances to run; ``None`` uses
            :func:`default_probes`.
        path: JSONL timeseries output file (``None`` keeps records
            in memory only).
        every_batches: additionally fire batch-scope probes every N
            batches (``None`` disables batch ticks entirely).
        run_id: run id stamped on every record; defaults to the library
            logger's current run id so the timeseries joins the
            manifest.
        max_probe_errors: consecutive failures after which a probe is
            disabled for the rest of the run.
        alerts: an :class:`~repro.monitor.alerts.AlertEngine` (or plain
            sequence of rules) evaluated against every probe record and,
            once per epoch tick, the metrics registry; fired alerts are
            also written into the timeseries.
    """

    def __init__(
        self,
        probes: Optional[Sequence[Probe]] = None,
        path: Optional[str] = None,
        every_batches: Optional[int] = None,
        run_id: Optional[str] = None,
        max_probe_errors: int = 3,
        alerts: Any = None,
    ) -> None:
        if every_batches is not None and every_batches < 1:
            raise ConfigError(f"every_batches must be >= 1, got {every_batches}")
        if max_probe_errors < 1:
            raise ConfigError(f"max_probe_errors must be >= 1, got {max_probe_errors}")
        self.probes: List[Probe] = list(probes) if probes is not None else default_probes()
        for probe in self.probes:
            if not isinstance(probe, Probe):
                raise ConfigError(f"probes must be Probe instances, got {probe!r}")
        self.every_batches = every_batches
        self.max_probe_errors = int(max_probe_errors)
        self.records: List[Dict[str, Any]] = []
        self.context: Dict[str, Any] = {}
        self.timeseries_path: Optional[str] = path
        self._error_streak: Dict[str, int] = {}
        self._disabled: set = set()
        self._logger = None
        if path is not None:
            from repro.telemetry.events import EventLogger, get_logger
            self._logger = EventLogger(
                path=path, level="debug",
                run_id=run_id if run_id is not None else get_logger().run_id,
            )
        self.alerts = None
        if alerts is not None:
            from repro.monitor.alerts import AlertEngine
            engine = (alerts if isinstance(alerts, AlertEngine)
                      else AlertEngine(list(alerts)))
            if self._logger is not None:
                engine.attach(self._logger)
            self.alerts = engine

    # -------------------------------------------------------------- context
    def bind(self, **context: Any) -> "Monitor":
        """Attach attack context (``groups=``, ``payload=``, ...) for probes.

        Returns ``self`` so construction chains:
        ``Monitor(...).bind(groups=groups)``.
        """
        self.context.update(context)
        return self

    @property
    def run_id(self) -> Optional[str]:
        return self._logger.run_id if self._logger is not None else None

    # ---------------------------------------------------------------- ticks
    def on_epoch(self, model: Any, epoch: int, history: Any = None,
                 optimizer: Any = None) -> None:
        """Epoch-boundary tick: every enabled probe fires."""
        ctx = self._context(model, epoch, None, history, optimizer)
        for probe in self.probes:
            self._run(probe, ctx, "epoch")
        if self.alerts is not None:
            self.alerts.observe_registry(epoch=epoch)

    def on_batch(self, model: Any, epoch: int, batch: int, history: Any = None,
                 optimizer: Any = None) -> None:
        """Per-batch tick: batch-scope probes fire every ``every_batches``."""
        if self.every_batches is None or (batch + 1) % self.every_batches:
            return
        ctx = self._context(model, epoch, batch, history, optimizer)
        for probe in self.probes:
            if probe.scope == "batch":
                self._run(probe, ctx, "batch")

    def _context(self, model: Any, epoch: int, batch: Optional[int],
                 history: Any, optimizer: Any) -> ProbeContext:
        return ProbeContext(
            model=model, epoch=epoch, batch=batch, history=history,
            optimizer=optimizer, groups=self.context.get("groups"),
            extra=self.context,
        )

    # ------------------------------------------------------------ execution
    def _run(self, probe: Probe, ctx: ProbeContext, scope: str) -> None:
        if probe.name in self._disabled:
            return
        from repro.telemetry.metrics import default_registry
        try:
            with default_registry().timer(f"monitor.{probe.name}_s").time():
                values = probe.observe(ctx)
        except Exception as exc:
            self._record_error(probe, ctx, scope, exc)
            return
        self._error_streak[probe.name] = 0
        if not values:
            return
        record: Dict[str, Any] = {"probe": probe.name, "scope": scope,
                                  "epoch": ctx.epoch, "batch": ctx.batch}
        record.update({key: float(value) for key, value in values.items()})
        self.records.append(record)
        if self._logger is not None:
            self._logger.info(PROBE_EVENT, **record)
        if self.alerts is not None:
            self.alerts.observe(record)
        from repro.telemetry.export import update_health
        update_health(last_probe=probe.name, last_probe_epoch=ctx.epoch,
                      last_probe_ts=time.time())

    def _record_error(self, probe: Probe, ctx: ProbeContext, scope: str,
                      exc: Exception) -> None:
        from repro.telemetry.events import get_logger
        from repro.telemetry.metrics import default_registry

        default_registry().counter("monitor.probe_errors").inc()
        streak = self._error_streak.get(probe.name, 0) + 1
        self._error_streak[probe.name] = streak
        disabled = streak >= self.max_probe_errors
        if disabled:
            self._disabled.add(probe.name)
        record: Dict[str, Any] = {
            "probe": probe.name, "scope": scope, "epoch": ctx.epoch,
            "batch": ctx.batch, "error": repr(exc), "disabled": disabled,
        }
        self.records.append({"probe_error": True, **record})
        get_logger().warning(ERROR_EVENT, **record)
        if self._logger is not None:
            self._logger.warning(ERROR_EVENT, **record)
        if self.alerts is not None:
            self.alerts.observe({"probe_error": True, **record})

    # ------------------------------------------------------------- queries
    def probe_records(self, probe: Optional[str] = None,
                      scope: str = "epoch") -> List[Dict[str, Any]]:
        """Successful records, optionally filtered by probe name/scope."""
        return [
            r for r in self.records
            if not r.get("probe_error")
            and (probe is None or r["probe"] == probe)
            and (scope is None or r["scope"] == scope)
        ]

    def errors(self) -> List[Dict[str, Any]]:
        return [r for r in self.records if r.get("probe_error")]

    def series(self, field: str, probe: Optional[str] = None) -> List[float]:
        """Epoch-ordered values of one field across epoch-scope records."""
        ticks = [r for r in self.probe_records(probe, scope="epoch") if field in r]
        return [r[field] for r in sorted(ticks, key=lambda r: r["epoch"])]

    def summary(self) -> Dict[str, float]:
        """Final (latest-epoch) value of every observed field."""
        latest: Dict[str, float] = {}
        for record in self.probe_records(scope="epoch"):
            for key, value in record.items():
                if key not in ("probe", "scope", "epoch", "batch"):
                    latest[key] = value
        return latest

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        if self._logger is not None:
            self._logger.close()

    def __enter__(self) -> "Monitor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


ProbesArg = Union[Monitor, Sequence[Probe], None]


def as_monitor(probes: ProbesArg) -> Optional[Monitor]:
    """Normalise the trainer's ``probes=`` argument to a Monitor.

    Accepts a ready :class:`Monitor`, a plain sequence of probes
    (wrapped into an in-memory monitor), or ``None``.
    """
    if probes is None or isinstance(probes, Monitor):
        return probes
    return Monitor(probes=list(probes))
