"""Declarative alerting rules evaluated against the monitor's timeseries.

The monitor (PR 4) *observes* -- per-epoch probe records land in a JSONL
timeseries and get read back after the fact by ``repro report``.  This
module closes the loop in-process: an :class:`AlertEngine` holds a list
of :class:`AlertRule`\\ s and sees every probe record (and the metrics
registry, once per epoch) as it is produced.  Rules that trip emit
structured :class:`Alert` events to the in-memory list, the
``monitor.alert`` JSONL stream, the metrics registry / live exporter,
and any attached loggers -- so a leakage signature (the paper's Eq. 2
correlation rising out of the benign band), a stalled decode, a
throughput collapse, or a dead worker surfaces while the run is still
going.

Rules come in five shapes:

* :class:`ThresholdRule` -- a probe field crosses a fixed bound;
* :class:`DriftRule` -- a field leaves its own EWMA k-sigma band;
* :class:`StallRule` -- a field stops improving for N ticks;
* :class:`MetricRule` -- a registry metric crosses a bound (absolute or
  relative to its own peak), evaluated at epoch granularity;
* :class:`ProbeDisabledRule` -- the monitor auto-disabled a probe.

``repro alerts TIMESERIES`` replays record-based rules over an existing
timeseries file, so the same rule set works live and forensically.
"""

from __future__ import annotations

import math
import time
import dataclasses
from dataclasses import dataclass
from typing import (Any, Callable, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Tuple)

from repro.errors import ConfigError

#: Event name used for alerts in the timeseries JSONL.
ALERT_EVENT = "monitor.alert"


@dataclass
class Alert:
    """One fired alert: what rule, on what evidence, when."""

    rule: str
    severity: str
    message: str
    probe: str = ""
    field: str = ""
    value: float = float("nan")
    epoch: Optional[int] = None
    batch: Optional[int] = None
    ts: float = dataclasses.field(default_factory=time.time)

    def to_record(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "alert": True, "rule": self.rule, "severity": self.severity,
            "message": self.message, "ts": self.ts,
        }
        if self.probe:
            record["probe"] = self.probe
        if self.field:
            record["field"] = self.field
        if not (isinstance(self.value, float) and math.isnan(self.value)):
            record["value"] = float(self.value)
        if self.epoch is not None:
            record["epoch"] = self.epoch
        if self.batch is not None:
            record["batch"] = self.batch
        return record


class AlertRule:
    """Base rule: sees records (and optionally the registry), may fire.

    Subclasses implement :meth:`evaluate` (per probe record) and/or
    :meth:`evaluate_registry` (per epoch tick); both return an
    :class:`Alert` or ``None``.  :meth:`reset` must restore the rule to
    its just-constructed state so a rule set can be replayed.
    """

    def __init__(self, name: str, severity: str = "warning") -> None:
        if severity not in ("info", "warning", "critical"):
            raise ConfigError(
                f"severity must be info/warning/critical, got {severity!r}")
        self.name = name
        self.severity = severity

    def evaluate(self, record: Mapping[str, Any]) -> Optional[Alert]:
        return None

    def evaluate_registry(self, flat: Mapping[str, float],
                          epoch: Optional[int]) -> Optional[Alert]:
        return None

    def reset(self) -> None:
        pass

    def _alert(self, message: str, record: Mapping[str, Any] = (),
               field: str = "", value: float = float("nan"),
               epoch: Optional[int] = None) -> Alert:
        record = dict(record)
        return Alert(
            rule=self.name, severity=self.severity, message=message,
            probe=str(record.get("probe", "")), field=field, value=value,
            epoch=record.get("epoch", epoch), batch=record.get("batch"),
        )


class ThresholdRule(AlertRule):
    """Fire when a probe field crosses a fixed bound.

    Exactly one of ``above`` / ``below`` must be given.  ``min_epoch``
    suppresses early-training noise (epoch-0 correlation is dominated by
    initialisation); ``fire_once`` latches after the first firing.
    """

    def __init__(self, name: str, field: str,
                 above: Optional[float] = None,
                 below: Optional[float] = None,
                 probe: Optional[str] = None,
                 min_epoch: int = 0,
                 fire_once: bool = True,
                 severity: str = "warning") -> None:
        super().__init__(name, severity)
        if (above is None) == (below is None):
            raise ConfigError("exactly one of above/below is required")
        self.field = field
        self.above = above
        self.below = below
        self.probe = probe
        self.min_epoch = int(min_epoch)
        self.fire_once = fire_once
        self._fired = False

    def reset(self) -> None:
        self._fired = False

    def evaluate(self, record: Mapping[str, Any]) -> Optional[Alert]:
        if self.fire_once and self._fired:
            return None
        if self.probe is not None and record.get("probe") != self.probe:
            return None
        if self.field not in record:
            return None
        epoch = record.get("epoch")
        if epoch is not None and epoch < self.min_epoch:
            return None
        value = float(record[self.field])
        if self.above is not None and value > self.above:
            bound, direction = self.above, "above"
        elif self.below is not None and value < self.below:
            bound, direction = self.below, "below"
        else:
            return None
        self._fired = True
        return self._alert(
            f"{self.field}={value:.4g} {direction} bound {bound:.4g}",
            record, field=self.field, value=value)


class DriftRule(AlertRule):
    """Fire when a field leaves its own EWMA ``sigmas``-sigma band.

    Tracks an exponentially-weighted mean and variance of the field;
    after ``warmup`` observations, a value more than ``sigmas`` standard
    deviations from the mean fires.  The outlier still updates the
    statistics, so a genuine level shift alerts once and then becomes
    the new normal -- drift detection, not threshold pinning.
    """

    def __init__(self, name: str, field: str, sigmas: float = 4.0,
                 alpha: float = 0.3, warmup: int = 3,
                 probe: Optional[str] = None,
                 severity: str = "warning") -> None:
        super().__init__(name, severity)
        if sigmas <= 0:
            raise ConfigError(f"sigmas must be positive, got {sigmas}")
        if not 0 < alpha <= 1:
            raise ConfigError(f"alpha must be in (0, 1], got {alpha}")
        self.field = field
        self.sigmas = float(sigmas)
        self.alpha = float(alpha)
        self.warmup = int(warmup)
        self.probe = probe
        self._mean = 0.0
        self._var = 0.0
        self._seen = 0

    def reset(self) -> None:
        self._mean = 0.0
        self._var = 0.0
        self._seen = 0

    def evaluate(self, record: Mapping[str, Any]) -> Optional[Alert]:
        if self.probe is not None and record.get("probe") != self.probe:
            return None
        if self.field not in record:
            return None
        value = float(record[self.field])
        alert = None
        if self._seen >= self.warmup:
            sigma = math.sqrt(self._var)
            if sigma > 0 and abs(value - self._mean) > self.sigmas * sigma:
                alert = self._alert(
                    f"{self.field}={value:.4g} drifted "
                    f"{abs(value - self._mean) / sigma:.1f} sigma from "
                    f"EWMA {self._mean:.4g}",
                    record, field=self.field, value=value)
        if self._seen == 0:
            self._mean = value
        else:
            delta = value - self._mean
            self._mean += self.alpha * delta
            self._var = (1 - self.alpha) * (self._var + self.alpha * delta * delta)
        self._seen += 1
        return alert


class StallRule(AlertRule):
    """Fire when a field stops improving for ``window`` consecutive ticks.

    "Improving" means increasing by at least ``min_delta`` over the best
    value seen so far (set ``increasing=False`` for loss-like fields).
    Fires once per stall streak: a recovery re-arms the rule.
    """

    def __init__(self, name: str, field: str, window: int = 3,
                 min_delta: float = 0.0, increasing: bool = True,
                 probe: Optional[str] = None,
                 severity: str = "warning") -> None:
        super().__init__(name, severity)
        if window < 1:
            raise ConfigError(f"window must be >= 1, got {window}")
        self.field = field
        self.window = int(window)
        self.min_delta = float(min_delta)
        self.increasing = increasing
        self.probe = probe
        self._best: Optional[float] = None
        self._stalled = 0
        self._fired_this_streak = False

    def reset(self) -> None:
        self._best = None
        self._stalled = 0
        self._fired_this_streak = False

    def evaluate(self, record: Mapping[str, Any]) -> Optional[Alert]:
        if self.probe is not None and record.get("probe") != self.probe:
            return None
        if self.field not in record:
            return None
        value = float(record[self.field])
        signed = value if self.increasing else -value
        best = self._best
        if best is None or signed > best + self.min_delta:
            self._best = signed if best is None else max(best, signed)
            self._stalled = 0
            self._fired_this_streak = False
            return None
        self._stalled += 1
        if self._stalled >= self.window and not self._fired_this_streak:
            self._fired_this_streak = True
            best_shown = best if self.increasing else -best
            return self._alert(
                f"{self.field} has not improved for {self._stalled} ticks "
                f"(best {best_shown:.4g}, now {value:.4g})",
                record, field=self.field, value=value)
        return None


class MetricRule(AlertRule):
    """Fire on a registry metric, evaluated once per epoch tick.

    ``metric`` is a flat-snapshot key (``trainer.images_per_s``,
    ``pool.worker_crashes``, ``trainer.epoch_s.ewma``).  One of:

    * ``above`` / ``below`` -- absolute bound;
    * ``below_frac_of_peak`` -- relative collapse: fire when the value
      drops under the given fraction of its own observed peak (after
      ``warmup`` observations), catching throughput cliffs without
      hard-coding machine-specific numbers.
    """

    def __init__(self, name: str, metric: str,
                 above: Optional[float] = None,
                 below: Optional[float] = None,
                 below_frac_of_peak: Optional[float] = None,
                 warmup: int = 2, fire_once: bool = True,
                 severity: str = "warning") -> None:
        super().__init__(name, severity)
        modes = sum(x is not None for x in (above, below, below_frac_of_peak))
        if modes != 1:
            raise ConfigError(
                "exactly one of above/below/below_frac_of_peak is required")
        if below_frac_of_peak is not None and not 0 < below_frac_of_peak < 1:
            raise ConfigError(
                f"below_frac_of_peak must be in (0, 1), got {below_frac_of_peak}")
        self.metric = metric
        self.above = above
        self.below = below
        self.below_frac_of_peak = below_frac_of_peak
        self.warmup = int(warmup)
        self.fire_once = fire_once
        self._peak: Optional[float] = None
        self._seen = 0
        self._fired = False

    def reset(self) -> None:
        self._peak = None
        self._seen = 0
        self._fired = False

    def evaluate_registry(self, flat: Mapping[str, float],
                          epoch: Optional[int]) -> Optional[Alert]:
        if self.fire_once and self._fired:
            return None
        if self.metric not in flat:
            return None
        value = float(flat[self.metric])
        if math.isnan(value):
            return None
        message = None
        if self.above is not None and value > self.above:
            message = f"{self.metric}={value:.4g} above bound {self.above:.4g}"
        elif self.below is not None and value < self.below:
            message = f"{self.metric}={value:.4g} below bound {self.below:.4g}"
        elif self.below_frac_of_peak is not None:
            peak = self._peak
            if (self._seen >= self.warmup and peak is not None and peak > 0
                    and value < self.below_frac_of_peak * peak):
                message = (f"{self.metric}={value:.4g} collapsed under "
                           f"{100 * self.below_frac_of_peak:.0f}% of peak "
                           f"{peak:.4g}")
            self._peak = value if peak is None else max(peak, value)
        self._seen += 1
        if message is None:
            return None
        self._fired = True
        return self._alert(message, field=self.metric, value=value,
                           epoch=epoch)


class BurnRateRule(AlertRule):
    """Fire when the error-budget *burn rate* over a window exceeds budget.

    SLO alerting on raw counters is either too twitchy (any breach
    fires) or too numb (lifetime ratios dilute a fresh regression).
    The standard fix is burn-rate alerting: watch the ratio of *recent*
    bad events to *recent* total events.  ``bad`` and ``total`` are
    cumulative flat-snapshot keys (``serve.slo.latency_ms.breaches`` /
    ``serve.slo.latency_ms.count``); each registry evaluation appends
    one observation, and the rule fires when, over the trailing
    ``window`` evaluations,

    ``(bad_now - bad_then) / (total_now - total_then) > budget``

    with at least ``min_events`` new total events (so a quiet server
    or a tiny test run cannot fire on two unlucky requests).  The rule
    latches while burning and re-arms once the windowed rate drops back
    under budget -- a sustained regression alerts once, recovery and
    re-regression alerts again.
    """

    def __init__(self, name: str, bad: str, total: str,
                 budget: float = 0.1, window: int = 8,
                 min_events: int = 50,
                 severity: str = "warning") -> None:
        super().__init__(name, severity)
        if not 0.0 <= budget < 1.0:
            raise ConfigError(f"budget must be in [0, 1), got {budget}")
        if window < 1:
            raise ConfigError(f"window must be >= 1, got {window}")
        if min_events < 1:
            raise ConfigError(f"min_events must be >= 1, got {min_events}")
        self.bad = bad
        self.total = total
        self.budget = float(budget)
        self.window = int(window)
        self.min_events = int(min_events)
        self._history: List[Tuple[float, float]] = []
        self._burning = False

    def reset(self) -> None:
        self._history = []
        self._burning = False

    def evaluate_registry(self, flat: Mapping[str, float],
                          epoch: Optional[int]) -> Optional[Alert]:
        if self.bad not in flat or self.total not in flat:
            return None
        bad = float(flat[self.bad])
        total = float(flat[self.total])
        if math.isnan(bad) or math.isnan(total):
            return None
        self._history.append((bad, total))
        if len(self._history) > self.window + 1:
            del self._history[:-(self.window + 1)]
        bad_then, total_then = self._history[0]
        delta_bad = bad - bad_then
        delta_total = total - total_then
        if delta_total < self.min_events:
            return None
        rate = delta_bad / delta_total
        if rate <= self.budget:
            self._burning = False
            return None
        if self._burning:  # latched: one alert per burn episode
            return None
        self._burning = True
        return self._alert(
            f"{self.bad}/{self.total} burn rate {rate:.1%} over last "
            f"{int(delta_total)} events exceeds budget {self.budget:.1%}",
            field=self.bad, value=rate, epoch=epoch)


class ProbeDisabledRule(AlertRule):
    """Fire (once per probe) when the monitor auto-disables a probe.

    The monitor's failure isolation turns a hard-broken probe into
    ``monitor.probe_error`` records with ``disabled: true`` on the final
    one; this rule surfaces that as a real alert without ever touching
    training itself.
    """

    def __init__(self, name: str = "probe_disabled",
                 severity: str = "warning") -> None:
        super().__init__(name, severity)
        self._seen: set = set()

    def reset(self) -> None:
        self._seen = set()

    def evaluate(self, record: Mapping[str, Any]) -> Optional[Alert]:
        if not record.get("probe_error") or not record.get("disabled"):
            return None
        probe = str(record.get("probe", ""))
        if probe in self._seen:
            return None
        self._seen.add(probe)
        return self._alert(
            f"probe {probe!r} disabled after repeated errors: "
            f"{record.get('error', '?')}",
            record)


class AlertEngine:
    """Evaluates a rule set against live records and the registry.

    Wire into a :class:`~repro.monitor.core.Monitor` via its ``alerts=``
    argument; the monitor feeds every probe record (success and error)
    through :meth:`observe` and calls :meth:`observe_registry` once per
    epoch tick.  Fired alerts accumulate on :attr:`alerts`, bump the
    ``alerts.total`` / ``alerts.<rule>`` counters (visible to the live
    exporter), update the health heartbeat, and are written as
    ``monitor.alert`` events to any attached loggers.

    ``clock`` (default ``time.time``) stamps each fired alert's ``ts``;
    tests inject a fake clock so alert timestamps are deterministic.
    """

    def __init__(self, rules: Sequence[AlertRule],
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.rules: List[AlertRule] = list(rules)
        for rule in self.rules:
            if not isinstance(rule, AlertRule):
                raise ConfigError(f"rules must be AlertRule instances, got {rule!r}")
        self.clock = clock
        self.alerts: List[Alert] = []
        self._loggers: List[Any] = []

    def attach(self, logger: Any) -> "AlertEngine":
        """Add an EventLogger that receives ``monitor.alert`` events."""
        if logger is not None:
            self._loggers.append(logger)
        return self

    # ----------------------------------------------------------- evaluation
    def observe(self, record: Mapping[str, Any]) -> List[Alert]:
        """Evaluate record-based rules against one probe record."""
        fired = []
        for rule in self.rules:
            try:
                alert = rule.evaluate(record)
            except Exception:
                continue  # a broken rule must not break the monitor
            if alert is not None:
                fired.append(alert)
        for alert in fired:
            self._emit(alert)
        return fired

    def observe_registry(self, registry=None,
                         epoch: Optional[int] = None) -> List[Alert]:
        """Evaluate metric-based rules against a registry snapshot."""
        from repro.telemetry.metrics import default_registry
        registry = registry if registry is not None else default_registry()
        flat = registry.flat_snapshot()
        fired = []
        for rule in self.rules:
            try:
                alert = rule.evaluate_registry(flat, epoch)
            except Exception:
                continue
            if alert is not None:
                fired.append(alert)
        for alert in fired:
            self._emit(alert)
        return fired

    def replay(self, records: Iterable[Mapping[str, Any]]) -> List[Alert]:
        """Reset every rule, then run record-based rules over a recorded
        timeseries (e.g. :func:`repro.monitor.load_timeseries` output)."""
        for rule in self.rules:
            rule.reset()
        self.alerts = []
        for record in records:
            self.observe(record)
        return list(self.alerts)

    # ------------------------------------------------------------- emission
    def _emit(self, alert: Alert) -> None:
        from repro.telemetry.export import update_health
        from repro.telemetry.metrics import default_registry

        if self.clock is not None:
            alert.ts = self.clock()
        self.alerts.append(alert)
        registry = default_registry()
        registry.counter("alerts.total").inc()
        registry.counter(f"alerts.{alert.rule}").inc()
        update_health(last_alert=alert.rule, last_alert_ts=alert.ts,
                      last_alert_severity=alert.severity)
        for logger in self._loggers:
            level = "error" if alert.severity == "critical" else "warning"
            logger.log(level, ALERT_EVENT, **alert.to_record())

    # -------------------------------------------------------------- queries
    def by_rule(self, name: str) -> List[Alert]:
        return [a for a in self.alerts if a.rule == name]

    def summary_table(self, title: str = "alerts") -> str:
        from repro.pipeline.reporting import format_table

        rows = [
            (a.severity, a.rule,
             "-" if a.epoch is None else a.epoch,
             a.message)
            for a in self.alerts
        ]
        return format_table(("severity", "rule", "epoch", "message"), rows,
                            title=title)


def default_rules(corr_threshold: float = 0.25,
                  psnr_window: int = 3,
                  throughput_frac: float = 0.4) -> List[AlertRule]:
    """The built-in rule set watching the attack pipeline's vitals.

    * ``correlation_leak`` -- the paper's Eq. 2 diagnostic: mean
      absolute weight/payload correlation above the benign band (benign
      runs stay under ~0.15 at this scale, see the integration suite)
      is the signature of an imprint being trained in.
    * ``psnr_stall`` -- the decode probe's reconstruction quality
      stopped improving: the attack is no longer making progress.
    * ``corr_drift`` -- any sudden k-sigma jump in the correlation
      trajectory, catching regressions in either direction.
    * ``throughput_collapse`` -- ``trainer.images_per_s`` fell under
      ``throughput_frac`` of its own peak.
    * ``worker_death`` -- the pool recorded a worker crash.
    * ``probe_disabled`` -- monitor failure isolation kicked in.
    """
    return [
        ThresholdRule("correlation_leak", field="corr_abs_mean",
                      above=corr_threshold, probe="correlation",
                      min_epoch=1, severity="critical"),
        StallRule("psnr_stall", field="psnr_mean", window=psnr_window,
                  min_delta=0.05, probe="decode"),
        DriftRule("corr_drift", field="corr_abs_mean", sigmas=6.0,
                  probe="correlation", warmup=3),
        MetricRule("throughput_collapse", metric="trainer.images_per_s",
                   below_frac_of_peak=throughput_frac),
        MetricRule("worker_death", metric="pool.worker_crashes",
                   above=0.0, severity="critical"),
        ProbeDisabledRule(),
    ]


def serving_rules(p99_budget_ms: float = 250.0,
                  error_budget: float = 0.0,
                  refusal_budget: float = 0.0,
                  slo_burn_budget: float = 0.1,
                  saturation_budget: float = 0.05,
                  burn_window: int = 8,
                  burn_min_events: int = 50) -> List[AlertRule]:
    """Rule set watching the ``repro.serve`` request path's vitals.

    Wire into :class:`~repro.serve.server.ModelServer` via ``alerts=``;
    the server calls :meth:`AlertEngine.observe_registry` after every
    dispatched batch, so these fire *during* a load run:

    * ``serve_p99_breach`` -- the ``serve.latency_ms`` p99 crossed the
      latency budget (critical: the serving SLO is gone);
    * ``shard_death`` -- a shard process died mid-request (critical;
      the pool respawns it, but an operator should know);
    * ``serve_errors`` -- operational failures (crashes surviving the
      retry budget, timeouts, handler exceptions) exceeded budget;
    * ``serve_refusals`` -- admission refused more requests than the
      back-pressure budget allows: the queue cap is being hit;
    * ``latency_slo`` -- burn-rate rule on the SLO histogram: more than
      ``slo_burn_budget`` of recent requests breached the per-request
      latency target (critical; also trips a flight-recorder dump);
    * ``queue_saturation`` -- burn-rate rule on admission: more than
      ``saturation_budget`` of recent submissions were refused, i.e.
      the queue is persistently saturated rather than momentarily full.
    """
    return [
        MetricRule("serve_p99_breach", metric="serve.latency_ms.p99",
                   above=p99_budget_ms, severity="critical"),
        MetricRule("shard_death", metric="serve.shard_deaths",
                   above=0.0, severity="critical"),
        MetricRule("serve_errors", metric="serve.errors",
                   above=error_budget, severity="critical"),
        MetricRule("serve_refusals", metric="serve.refused",
                   above=refusal_budget),
        BurnRateRule("latency_slo", bad="serve.slo.latency_ms.breaches",
                     total="serve.slo.latency_ms.count",
                     budget=slo_burn_budget, window=burn_window,
                     min_events=burn_min_events, severity="critical"),
        BurnRateRule("queue_saturation", bad="serve.refused",
                     total="serve.requests", budget=saturation_budget,
                     window=burn_window, min_events=burn_min_events),
    ]
