"""Leakage probes: what is the model leaking *while it trains*?

The paper's dynamics live between the endpoints the pipeline reports:
correlated value encoding gradually imprints the secret payload into
the weights (Eq. 2), and weighted-entropy quantization later destroys
that imprint (Fig. 2-4).  Each probe here measures one mid-training
leakage quantity from the live model:

* :class:`CorrelationProbe` -- per-layer-group Pearson correlation of
  the weights against the attack's encoding target (the Eq. 2 quantity
  the malicious regularizer maximises).
* :class:`DecodeProbe` -- a cheap partial decode: run the adversary's
  extractor on the current weights and score the first few
  reconstructions (PSNR/SSIM), i.e. "could the attacker already read
  the data out of this checkpoint?".
* :class:`WeightDriftProbe` -- per-group weight-distribution shape
  (histogram entropy, spread, extremes): the Fig. 2/3 quantity whose
  drift betrays an encoding model to a defender.

Probes are stateless observers by contract: ``observe(ctx)`` returns a
flat ``{field: float}`` dict and must not mutate the model.  A probe
that cannot run in the current context (e.g. no layer groups bound on a
benign run) returns ``{}`` and is skipped for that tick.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np


@dataclass
class ProbeContext:
    """Everything a probe may inspect at one monitoring tick.

    ``groups`` carries the attack's :class:`~repro.attacks.layerwise.
    LayerGroup` list (with payloads assigned) when the monitor was bound
    to an attack run; leakage probes measure against it.  ``model`` /
    ``optimizer`` / ``history`` come from the live trainer.  ``batch``
    is ``None`` on epoch-boundary ticks.
    """

    model: Any
    epoch: int
    batch: Optional[int] = None
    history: Any = None
    optimizer: Any = None
    groups: Optional[Sequence] = None
    extra: Dict[str, Any] = field(default_factory=dict)


class Probe:
    """Base class: named observer invoked by :class:`~repro.monitor.Monitor`.

    ``scope`` is ``"epoch"`` (observed at epoch boundaries only) or
    ``"batch"`` (additionally observed every N batches when the monitor
    has a batch interval).  Subclasses implement :meth:`observe`.
    """

    name: str = "probe"
    scope: str = "epoch"

    def observe(self, ctx: ProbeContext) -> Dict[str, float]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, scope={self.scope!r})"


def pearson(a: np.ndarray, b: np.ndarray) -> float:
    """Plain (non-differentiable) Pearson correlation of two flat vectors."""
    a = np.asarray(a, dtype=np.float64).reshape(-1)
    b = np.asarray(b, dtype=np.float64).reshape(-1)
    n = min(a.size, b.size)
    if n < 2:
        return float("nan")
    a, b = a[:n] - a[:n].mean(), b[:n] - b[:n].mean()
    denom = np.sqrt((a ** 2).sum()) * np.sqrt((b ** 2).sum()) + 1e-12
    return float((a * b).sum() / denom)


def _active_groups(ctx: ProbeContext) -> List:
    if not ctx.groups:
        return []
    return [g for g in ctx.groups if getattr(g, "payload", None) is not None]


class CorrelationProbe(Probe):
    """Per-group |Pearson corr| of weights vs. the encoding target.

    This is exactly the quantity Eq. 2's regularizer pushes up during a
    malicious run; on a benign run against the same would-be target it
    hovers near zero, which is what makes the timeseries separate the
    two within the first couple of epochs.
    """

    name = "correlation"
    scope = "batch"

    def observe(self, ctx: ProbeContext) -> Dict[str, float]:
        values: Dict[str, float] = {}
        magnitudes: List[float] = []
        for group in _active_groups(ctx):
            corr = pearson(group.weight_vector(), group.payload.secret_vector())
            values[f"corr_{group.name}"] = corr
            magnitudes.append(abs(corr))
        if not magnitudes:
            return {}
        values["corr_abs_mean"] = float(np.mean(magnitudes))
        values["corr_abs_max"] = float(np.max(magnitudes))
        return values


class DecodeProbe(Probe):
    """Mid-training partial decode: PSNR/SSIM of a few reconstructions.

    Runs the adversary's decoder (:func:`repro.attacks.decoder.
    decode_preview`) on the *current* weights for at most
    ``max_images`` payload images and scores them against the
    originals.  Cheap by construction -- decoding is a min-max remap,
    so cost is linear in the previewed pixel count -- but still the
    most expensive built-in probe; it stays epoch-scoped.
    """

    name = "decode"
    scope = "epoch"

    def __init__(self, max_images: int = 4, polarity: str = "reference") -> None:
        self.max_images = int(max_images)
        self.polarity = polarity

    def observe(self, ctx: ProbeContext) -> Dict[str, float]:
        if not _active_groups(ctx):
            return {}
        from repro.attacks.decoder import decode_preview
        from repro.metrics.psnr import batch_psnr
        from repro.metrics.ssim import batch_ssim

        recon, originals, _ = decode_preview(
            ctx.groups, max_images=self.max_images, polarity=self.polarity
        )
        psnr_values = batch_psnr(originals, recon)
        ssim_values = batch_ssim(originals, recon)
        finite = psnr_values[np.isfinite(psnr_values)]
        return {
            "psnr_mean": float(finite.mean()) if finite.size else float("nan"),
            "psnr_best": float(finite.max()) if finite.size else float("nan"),
            "ssim_mean": float(ssim_values.mean()),
            "ssim_best": float(ssim_values.max()),
            "images": float(len(recon)),
        }


def histogram_entropy(values: np.ndarray, bins: int = 32) -> float:
    """Shannon entropy (bits) of a sample's histogram distribution."""
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    if values.size == 0:
        return float("nan")
    counts, _ = np.histogram(values[np.isfinite(values)], bins=bins)
    total = counts.sum()
    if total == 0:
        return float("nan")
    probs = counts[counts > 0] / total
    return float(-(probs * np.log2(probs)).sum())


class WeightDriftProbe(Probe):
    """Per-group weight-distribution shape: entropy, spread, extremes.

    The Fig. 2/3 quantity: an encoding group's weight histogram flattens
    toward the (scaled) pixel distribution as training imprints the
    payload, and weighted-entropy quantization later collapses it onto
    a few clusters.  With no groups bound, falls back to one series
    over all model parameters.
    """

    name = "weights"
    scope = "epoch"

    def __init__(self, bins: int = 32) -> None:
        self.bins = int(bins)

    def _stats(self, prefix: str, vec: np.ndarray) -> Dict[str, float]:
        return {
            f"entropy_{prefix}": histogram_entropy(vec, self.bins),
            f"std_{prefix}": float(vec.std()),
            f"absmax_{prefix}": float(np.abs(vec).max()) if vec.size else float("nan"),
        }

    def observe(self, ctx: ProbeContext) -> Dict[str, float]:
        if ctx.groups:
            values: Dict[str, float] = {}
            for group in ctx.groups:
                values.update(self._stats(group.name, group.weight_vector()))
            return values
        params = [p.data.reshape(-1) for p in ctx.model.parameters()]
        if not params:
            return {}
        return self._stats("all", np.concatenate(params))
