"""Systems probes: cost and health of the training process itself.

Complements the leakage probes in :mod:`repro.monitor.probes` with the
run's physical side -- optimization health (gradient norm, parameter
update ratio), process memory, throughput, and the kernel-time share
reported by the PR-3 profiler when one is active.  All fields are flat
floats so they land in the same JSONL timeseries.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional

import numpy as np

from repro.monitor.probes import Probe, ProbeContext


class GradNormProbe(Probe):
    """Global L2 norm of the most recent backward pass's gradients."""

    name = "grad"
    scope = "batch"

    def observe(self, ctx: ProbeContext) -> Dict[str, float]:
        total = 0.0
        count = 0
        for param in ctx.model.parameters():
            if param.grad is not None:
                total += float((param.grad ** 2).sum())
                count += 1
        if count == 0:
            return {}
        return {"grad_norm": total ** 0.5}


class UpdateRatioProbe(Probe):
    """Relative parameter movement ``||theta_t - theta_prev|| / ||theta_prev||``.

    A classic training-health signal: ~1e-3 is healthy SGD territory,
    ~1e-1 means the optimizer is thrashing, ~1e-6 means learning has
    stalled.  The previous parameter vector is retained between ticks
    (strided down to at most ``max_samples`` entries so the probe's
    memory stays bounded on large models).
    """

    name = "update"
    scope = "batch"

    def __init__(self, max_samples: int = 100_000) -> None:
        self.max_samples = int(max_samples)
        self._previous: Optional[np.ndarray] = None

    def _sample(self, ctx: ProbeContext) -> np.ndarray:
        flat = np.concatenate([p.data.reshape(-1) for p in ctx.model.parameters()])
        stride = max(1, flat.size // self.max_samples)
        return flat[::stride].copy()

    def observe(self, ctx: ProbeContext) -> Dict[str, float]:
        current = self._sample(ctx)
        previous, self._previous = self._previous, current
        if previous is None or previous.shape != current.shape:
            return {}
        denom = float(np.linalg.norm(previous)) + 1e-12
        return {"update_ratio": float(np.linalg.norm(current - previous)) / denom}


def _rss_bytes() -> Optional[float]:
    """Current resident set size, via /proc on Linux (None elsewhere)."""
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as handle:
            pages = int(handle.read().split()[1])
        return float(pages * os.sysconf("SC_PAGE_SIZE"))
    except (OSError, ValueError, IndexError):
        return None


def _peak_rss_bytes() -> Optional[float]:
    """Lifetime peak RSS via getrusage (ru_maxrss is KiB on Linux)."""
    try:
        import resource
    except ImportError:  # non-POSIX platform
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if peak <= 0:
        return None
    # Linux reports KiB; macOS reports bytes.  Treat implausibly large
    # values (> 1 TiB when read as KiB) as already-bytes.
    return float(peak) if peak > 2 ** 40 else float(peak) * 1024.0


class MemoryProbe(Probe):
    """Process memory plus the autograd tape planner's activation books.

    Reports current RSS and lifetime peak in MiB, and -- once a backward
    pass has run -- the tape memory planner's view of saved activations:
    the planned peak of live saved bytes, the unplanned peak the same
    tape would have reached without eager release, and the resulting
    reduction fraction (the quantity gated by the precision benchmark).
    """

    name = "memory"
    scope = "epoch"

    def observe(self, ctx: ProbeContext) -> Dict[str, float]:
        values: Dict[str, float] = {}
        rss = _rss_bytes()
        if rss is not None:
            values["rss_mib"] = rss / 2 ** 20
        peak = _peak_rss_bytes()
        if peak is not None:
            values["peak_rss_mib"] = peak / 2 ** 20
        from repro.autograd import last_tape_stats

        stats = last_tape_stats()
        if stats is not None and stats.functions > 0:
            values["tape_live_peak_mib"] = stats.peak_live_bytes / 2 ** 20
            values["tape_unplanned_peak_mib"] = (
                stats.unplanned_peak_bytes / 2 ** 20
            )
            values["tape_peak_reduction"] = float(stats.peak_reduction)
            if stats.recycled_buffers:
                values["tape_recycled_buffers"] = float(stats.recycled_buffers)
        return values


class ThroughputProbe(Probe):
    """Images/sec and epoch wall time from the trainer's live metrics."""

    name = "throughput"
    scope = "epoch"

    def observe(self, ctx: ProbeContext) -> Dict[str, float]:
        from repro.telemetry.metrics import default_registry

        registry = default_registry()
        values: Dict[str, float] = {}
        if "trainer.images_per_s" in registry:
            rate = registry.gauge("trainer.images_per_s").snapshot()
            if np.isfinite(rate):
                values["images_per_s"] = float(rate)
        if "trainer.epoch_s" in registry:
            last = registry.timer("trainer.epoch_s").last
            if np.isfinite(last):
                values["epoch_s"] = float(last)
        return values


class KernelShareProbe(Probe):
    """Kernel-time totals from the active op profiler, if one is installed.

    When training runs under ``with profile() as prof:`` this reports
    the cumulative time attributed to named backend kernels and its
    share of total autograd op time (the profiler's wall-clock coverage
    is only final at region exit, so op time is the live denominator).
    Silently observes nothing when no profiler is active.
    """

    name = "kernels"
    scope = "epoch"

    def __init__(self) -> None:
        self._last_kernel_s = 0.0
        self._last_wall = time.perf_counter()

    def observe(self, ctx: ProbeContext) -> Dict[str, float]:
        from repro.telemetry.profiler import active_profile

        prof = active_profile()
        if prof is None:
            return {}
        kernel_s = prof.total_kernel_time
        op_s = prof.total_op_time
        now = time.perf_counter()
        delta_kernel = kernel_s - self._last_kernel_s
        delta_wall = now - self._last_wall
        self._last_kernel_s, self._last_wall = kernel_s, now
        values = {
            "kernel_time_s": float(kernel_s),
            "kernel_share_of_ops": float(kernel_s / op_s) if op_s > 0 else float("nan"),
        }
        if 0.0 < delta_wall and 0.0 <= delta_kernel <= delta_wall * 1.5:
            values["kernel_share_interval"] = float(delta_kernel / delta_wall)
        return values
