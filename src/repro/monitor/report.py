"""Render monitor timeseries: tables, sparklines, and run comparison.

Turns the JSONL timeseries written by :class:`repro.monitor.Monitor`
back into something a terminal reader can act on: one row per observed
field with its trajectory as an ASCII sparkline, and a two-run diff
(e.g. baseline vs. quantized, malicious vs. benign) aligning final
values side by side.  Used by ``repro report``.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.monitor.alerts import ALERT_EVENT
from repro.monitor.core import ERROR_EVENT, PROBE_EVENT
from repro.telemetry.tables import format_table
from repro.viz import sparkline

#: Record keys that are structure, not observed fields.
_META_KEYS = ("probe", "scope", "epoch", "batch", "ts", "level", "run_id",
              "event", "probe_error", "error", "disabled",
              "alert", "rule", "severity", "message")


def load_timeseries(path: str) -> List[Dict[str, Any]]:
    """Read a monitor JSONL timeseries back into records.

    Keeps ``monitor.probe``, ``monitor.probe_error`` and
    ``monitor.alert`` events (other interleaved events are ignored);
    malformed lines raise :class:`ConfigError` with the offending line
    number.
    """
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigError(
                    f"{path}:{number}: not valid JSONL ({exc})") from None
            event = record.get("event")
            if event == PROBE_EVENT:
                records.append(record)
            elif event == ERROR_EVENT:
                records.append({"probe_error": True, **record})
            elif event == ALERT_EVENT:
                records.append({"alert": True, **record})
    return records


def alert_records(records: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Alert events from a loaded timeseries, in emission order."""
    return [r for r in records if r.get("alert")]


def probe_ticks(records: Sequence[Dict[str, Any]],
                scope: str = "epoch") -> List[Dict[str, Any]]:
    """Successful probe records of one scope, epoch-ordered."""
    ticks = [r for r in records
             if not r.get("probe_error") and r.get("scope") == scope]
    return sorted(ticks, key=lambda r: (r.get("epoch", 0), r.get("batch") or 0))


def series(records: Sequence[Dict[str, Any]], field: str,
           probe: Optional[str] = None) -> Tuple[List[int], List[float]]:
    """(epochs, values) trajectory of one field over epoch-scope ticks."""
    epochs: List[int] = []
    values: List[float] = []
    for record in probe_ticks(records):
        if field in record and (probe is None or record.get("probe") == probe):
            epochs.append(int(record.get("epoch", len(epochs))))
            values.append(float(record[field]))
    return epochs, values


def fields_by_probe(records: Sequence[Dict[str, Any]]) -> Dict[str, List[str]]:
    """Observed field names per probe, in first-seen order."""
    table: Dict[str, List[str]] = {}
    for record in probe_ticks(records):
        probe = str(record.get("probe", "?"))
        known = table.setdefault(probe, [])
        for key in record:
            if key not in _META_KEYS and key not in known:
                known.append(key)
    return table


def error_counts(records: Sequence[Dict[str, Any]]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for record in records:
        if record.get("probe_error"):
            probe = str(record.get("probe", "?"))
            counts[probe] = counts.get(probe, 0) + 1
    return counts


def _fmt(value: float) -> str:
    if value != value:
        return "nan"
    if value != 0 and abs(value) < 1e-3:
        return f"{value:.2e}"
    return f"{value:.4g}"


def render_run(records: Sequence[Dict[str, Any]], title: str = "monitor run",
               width: int = 24) -> str:
    """One table row per (probe, field): first/last/min/max + sparkline."""
    rows: List[List[Any]] = []
    for probe, fields in fields_by_probe(records).items():
        for field in fields:
            _, values = series(records, field, probe=probe)
            finite = [v for v in values if math.isfinite(v)]
            if not values:
                continue
            rows.append([
                probe, field,
                _fmt(values[0]), _fmt(values[-1]),
                _fmt(min(finite)) if finite else "nan",
                _fmt(max(finite)) if finite else "nan",
                sparkline(values, width=width),
            ])
    out = format_table(
        ["probe", "field", "first", "last", "min", "max", "trend"],
        rows, title=title,
    )
    errors = error_counts(records)
    if errors:
        detail = ", ".join(f"{name} x{count}" for name, count in sorted(errors.items()))
        out += f"\nprobe errors: {detail}"
    alerts = alert_records(records)
    if alerts:
        counts: Dict[str, int] = {}
        for record in alerts:
            rule = str(record.get("rule", "?"))
            counts[rule] = counts.get(rule, 0) + 1
        detail = ", ".join(f"{name} x{count}"
                           for name, count in sorted(counts.items()))
        out += f"\nalerts: {detail}"
    return out


def compare_runs(a: Sequence[Dict[str, Any]], b: Sequence[Dict[str, Any]],
                 labels: Tuple[str, str] = ("run A", "run B"),
                 width: int = 16) -> str:
    """Align two timeseries field-by-field: final values, delta, trends.

    The canonical use is malicious vs. benign (watch the correlation
    probe separate) or uncompressed vs. quantized (watch quantization
    erase the imprint).
    """
    fields_a = fields_by_probe(a)
    fields_b = fields_by_probe(b)
    rows: List[List[Any]] = []
    probes = list(fields_a)
    probes += [p for p in fields_b if p not in fields_a]
    for probe in probes:
        merged = list(fields_a.get(probe, []))
        merged += [f for f in fields_b.get(probe, []) if f not in merged]
        for field in merged:
            _, values_a = series(a, field, probe=probe)
            _, values_b = series(b, field, probe=probe)
            last_a = values_a[-1] if values_a else float("nan")
            last_b = values_b[-1] if values_b else float("nan")
            delta = last_b - last_a
            rows.append([
                probe, field, _fmt(last_a), _fmt(last_b),
                _fmt(delta) if delta == delta else "n/a",
                sparkline(values_a, width=width),
                sparkline(values_b, width=width),
            ])
    return format_table(
        ["probe", "field", labels[0], labels[1], "delta",
         f"{labels[0]} trend", f"{labels[1]} trend"],
        rows, title=f"monitor diff: {labels[0]} vs {labels[1]}",
    )
