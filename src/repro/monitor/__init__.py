"""In-training observability: leakage probes, run timeseries, bench trends.

Three pieces on top of the PR-1 telemetry layer:

* **Probes** (:mod:`repro.monitor.probes`, :mod:`repro.monitor.system`)
  -- observers of the live training process.  Leakage probes measure
  what the paper is about (weight/secret correlation, mid-training
  decodability, weight-distribution drift); systems probes measure what
  it costs (grad norm, update ratio, memory, throughput, kernel share).
* **Monitor** (:mod:`repro.monitor.core`) -- runs probes per epoch and
  every N batches from the Trainer's ``probes=`` seam and emits a
  structured JSONL timeseries keyed to the run manifest's run id.
  Probe failures are isolated: recorded as ``monitor.probe_error``
  events, never fatal to training.
* **Reports & trends** (:mod:`repro.monitor.report`,
  :mod:`repro.monitor.bench`) -- render a run into tables with ASCII
  sparklines, diff two runs, and track gated benchmark results across
  sessions in ``BENCH_<name>.json`` with a regression comparator.

Watch an attack imprint appear::

    monitor = Monitor(path="run.jsonl").bind(groups=groups)
    Trainer(model, x, y, config, penalty=penalty, probes=monitor).train()
    print(render_run(monitor.records))

CLI: ``repro monitor`` (train with probes on) and ``repro report``
(render/diff timeseries, print bench trends).
"""

from repro.monitor.core import (
    ERROR_EVENT,
    PROBE_EVENT,
    Monitor,
    as_monitor,
    default_probes,
)
from repro.monitor.probes import (
    CorrelationProbe,
    DecodeProbe,
    Probe,
    ProbeContext,
    WeightDriftProbe,
    histogram_entropy,
    pearson,
)
from repro.monitor.system import (
    GradNormProbe,
    KernelShareProbe,
    MemoryProbe,
    ThroughputProbe,
    UpdateRatioProbe,
)
from repro.monitor.alerts import (
    ALERT_EVENT,
    Alert,
    AlertEngine,
    AlertRule,
    DriftRule,
    MetricRule,
    ProbeDisabledRule,
    StallRule,
    ThresholdRule,
    default_rules,
    serving_rules,
)
from repro.monitor.report import (
    alert_records,
    compare_runs,
    load_timeseries,
    render_run,
    series,
)
from repro.monitor.bench import (
    BenchStore,
    Regression,
    detect_regressions,
    machine_fingerprint,
    machine_info,
    metric_direction,
    trend_table,
)

__all__ = [
    "Monitor", "as_monitor", "default_probes", "PROBE_EVENT", "ERROR_EVENT",
    "Probe", "ProbeContext", "CorrelationProbe", "DecodeProbe",
    "WeightDriftProbe", "histogram_entropy", "pearson",
    "GradNormProbe", "KernelShareProbe", "MemoryProbe", "ThroughputProbe",
    "UpdateRatioProbe",
    "load_timeseries", "render_run", "compare_runs", "series",
    "alert_records",
    "ALERT_EVENT", "Alert", "AlertEngine", "AlertRule", "DriftRule",
    "MetricRule", "ProbeDisabledRule", "StallRule", "ThresholdRule",
    "default_rules", "serving_rules",
    "BenchStore", "Regression", "detect_regressions", "machine_fingerprint",
    "machine_info", "metric_direction", "trend_table",
]
