"""Core layers: Linear, Conv2d, activations, Dropout, Flatten."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.errors import ConfigError
from repro.nn import init
from repro.nn.module import Module, Parameter


def _rng(rng: Optional[np.random.Generator]) -> np.random.Generator:
    return rng if rng is not None else np.random.default_rng()


class Linear(Module):
    """Affine map ``y = x @ W.T + b`` with Kaiming-uniform init."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        generator = _rng(rng)
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), generator))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = F.matmul(x, F.transpose(self.weight))
        if self.bias is not None:
            out = F.add(out, self.bias)
        return out

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"


class Conv2d(Module):
    """2-D convolution over NCHW tensors (OIHW weights, square kernels)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.padding = int(padding)
        generator = _rng(rng)
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_normal(shape, generator))
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, k={self.kernel_size}, "
            f"s={self.stride}, p={self.padding})"
        )


class Flatten(Module):
    """Collapse all axes after ``start_axis`` into one."""

    def __init__(self, start_axis: int = 1) -> None:
        super().__init__()
        self.start_axis = start_axis

    def forward(self, x: Tensor) -> Tensor:
        return F.flatten(x, self.start_axis)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class LeakyReLU(Module):
    def __init__(self, slope: float = 0.01) -> None:
        super().__init__()
        self.slope = slope

    def forward(self, x: Tensor) -> Tensor:
        return F.leaky_relu(x, self.slope)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.sigmoid(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)


class Dropout(Module):
    """Inverted dropout; identity in eval mode.

    A module-owned Generator drives the masks, so a model built from a
    seed trains identically run-to-run.
    """

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ConfigError(f"dropout probability must be in [0, 1), got {p}")
        self.p = float(p)
        self._generator = _rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        # a fresh mask per step is inherently untraceable: a captured
        # replay would freeze one mask forever
        from repro.graph.trace import mark_dynamic

        mark_dynamic("dropout samples a new mask every step")
        keep = 1.0 - self.p
        # match the input dtype so the mask never upcasts a float32 graph
        mask = ((self._generator.random(x.shape) < keep) / keep).astype(
            x.data.dtype, copy=False)
        return F.mul(x, Tensor(mask))
