"""Weight initializers (Kaiming / Xavier families).

All initializers take an explicit ``numpy.random.Generator`` so that
model construction is fully deterministic given a seed.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 2:  # Linear: (out, in)
        fan_out, fan_in = shape
    elif len(shape) == 4:  # Conv: (out, in, kh, kw)
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        fan_in = fan_out = int(np.prod(shape))
    return fan_in, fan_out


def kaiming_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He-normal init, appropriate before ReLU nonlinearities."""
    fan_in, _ = _fan_in_out(shape)
    std = math.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    fan_in, _ = _fan_in_out(shape)
    bound = math.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    fan_in, fan_out = _fan_in_out(shape)
    std = math.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    fan_in, fan_out = _fan_in_out(shape)
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    return np.ones(shape)
