"""Pooling modules wrapping the autograd pooling ops."""

from __future__ import annotations

from typing import Optional

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.module import Module


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = int(kernel_size)
        self.stride = int(stride) if stride is not None else int(kernel_size)

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = int(kernel_size)
        self.stride = int(stride) if stride is not None else int(kernel_size)

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)


class GlobalAvgPool2d(Module):
    """Reduce each channel's spatial map to its mean: NCHW -> NC."""

    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)
