"""Batch normalization layers.

The normalization itself is composed from differentiable primitives, so
the backward pass comes for free from autograd; only the running-stat
bookkeeping is hand-written (it is not differentiated through).
"""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.module import Module, Parameter


class _BatchNorm(Module):
    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = int(num_features)
        self.momentum = float(momentum)
        self.eps = float(eps)
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def _axes(self):
        raise NotImplementedError

    def _param_shape(self):
        raise NotImplementedError

    def forward(self, x: Tensor) -> Tensor:
        axes = self._axes()
        shape = self._param_shape()
        if self.training:
            mean = F.mean(x, axis=axes, keepdims=True)
            centered = F.sub(x, mean)
            variance = F.mean(F.mul(centered, centered), axis=axes, keepdims=True)
            batch_mean = mean.data.reshape(self.num_features)
            batch_var = variance.data.reshape(self.num_features)
            m = self.momentum
            self.update_buffer("running_mean", (1 - m) * self.running_mean + m * batch_mean)
            self.update_buffer("running_var", (1 - m) * self.running_var + m * batch_var)
            normalized = F.div(centered, F.sqrt(F.add(variance, Tensor(self.eps))))
        else:
            mean = Tensor(self.running_mean.reshape(shape))
            std = Tensor(np.sqrt(self.running_var.reshape(shape) + self.eps))
            normalized = F.div(F.sub(x, mean), std)
        gamma = F.reshape(self.gamma, shape)
        beta = F.reshape(self.beta, shape)
        return F.add(F.mul(normalized, gamma), beta)


class BatchNorm2d(_BatchNorm):
    """BatchNorm over NCHW activations (per-channel statistics)."""

    def _axes(self):
        return (0, 2, 3)

    def _param_shape(self):
        return (1, self.num_features, 1, 1)


class BatchNorm1d(_BatchNorm):
    """BatchNorm over (batch, features) activations."""

    def _axes(self):
        return (0,)

    def _param_shape(self):
        return (1, self.num_features)
