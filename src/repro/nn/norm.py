"""Batch normalization layers.

The normalization itself is composed from differentiable primitives, so
the backward pass comes for free from autograd; only the running-stat
bookkeeping is hand-written (it is not differentiated through).

When the active backend advertises ``fused_batchnorm`` (the fast
backend does), training-mode forward instead routes through the fused
``batchnorm_train_forward``/``batchnorm_train_backward`` kernels via a
single graph node -- same math to allclose tolerance, a fraction of
the graph ops.  The reference backend keeps the composed path so its
training runs stay bit-identical to the original code.
"""

from __future__ import annotations

import numpy as np

from repro import backend as _backend
from repro.autograd import functional as F
from repro.autograd.ops_nn import BatchNormTrainFn
from repro.autograd.tensor import Tensor, is_grad_enabled
from repro.nn.module import Module, Parameter


class _BatchNorm(Module):
    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = int(num_features)
        self.momentum = float(momentum)
        self.eps = float(eps)
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def _axes(self):
        raise NotImplementedError

    def _param_shape(self):
        raise NotImplementedError

    def _update_running(self, batch_mean: np.ndarray, batch_var: np.ndarray) -> None:
        m = self.momentum
        self.update_buffer("running_mean", (1 - m) * self.running_mean + m * batch_mean)
        self.update_buffer("running_var", (1 - m) * self.running_var + m * batch_var)

    def _absorb_batch_stats(self, fn) -> None:
        """Fold a BatchNormTrainFn node's batch statistics into the running
        buffers -- called right after ``apply`` eagerly, and again by the
        graph executor after every replayed forward."""
        self._update_running(
            fn.mean.reshape(self.num_features), fn.var.reshape(self.num_features)
        )

    def forward(self, x: Tensor) -> Tensor:
        axes = self._axes()
        shape = self._param_shape()
        if not self.training and not is_grad_enabled():
            # inference fast path: one fused kernel, no graph nodes
            x_data = x.data if isinstance(x, Tensor) else np.asarray(x)
            out = _backend.active().batchnorm_infer(
                x_data,
                self.running_mean.reshape(shape),
                self.running_var.reshape(shape),
                self.gamma.data.reshape(shape),
                self.beta.data.reshape(shape),
                self.eps,
            )
            return Tensor(out)
        if self.training:
            K = _backend.active()
            if getattr(K, "fused_batchnorm", False):
                # fused path: statistics, normalize-scale-shift and the
                # analytic backward inside one graph node (see
                # ops_nn.BatchNormTrainFn); the node computes mean/var in
                # its own forward so a compiled replay refreshes them from
                # live activations every step.
                x_t = x if isinstance(x, Tensor) else Tensor(x)
                out = BatchNormTrainFn.apply(
                    x_t,
                    F.reshape(self.gamma, shape),
                    F.reshape(self.beta, shape),
                    axes=axes, eps=self.eps,
                )
                fn = out._creator
                if fn is not None:
                    # running statistics are a non-graph side effect; the
                    # graph compiler re-applies them after each replayed
                    # forward via this hook
                    fn.on_replay = self._absorb_batch_stats
                    self._absorb_batch_stats(fn)
                else:
                    # no-grad training forward: no node was recorded, so
                    # compute the statistics the layer still has to absorb
                    mean, var = K.batchnorm_stats(x_t.data, axes)
                    self._update_running(
                        mean.reshape(self.num_features),
                        var.reshape(self.num_features),
                    )
                return out
            # the composed graph updates running statistics as a plain
            # python side effect below -- invisible to a captured replay,
            # which would silently freeze them at their warm-up values
            from repro.graph.trace import mark_dynamic

            mark_dynamic(
                "composed batch-norm updates running statistics outside "
                "the graph"
            )
            mean = F.mean(x, axis=axes, keepdims=True)
            centered = F.sub(x, mean)
            variance = F.mean(F.mul(centered, centered), axis=axes, keepdims=True)
            self._update_running(
                mean.data.reshape(self.num_features),
                variance.data.reshape(self.num_features),
            )
            normalized = F.div(centered, F.sqrt(F.add(variance, Tensor(self.eps))))
        else:
            mean = Tensor(self.running_mean.reshape(shape))
            std = Tensor(np.sqrt(self.running_var.reshape(shape) + self.eps))
            normalized = F.div(F.sub(x, mean), std)
        gamma = F.reshape(self.gamma, shape)
        beta = F.reshape(self.beta, shape)
        return F.add(F.mul(normalized, gamma), beta)


class BatchNorm2d(_BatchNorm):
    """BatchNorm over NCHW activations (per-channel statistics)."""

    def _axes(self):
        return (0, 2, 3)

    def _param_shape(self):
        return (1, self.num_features, 1, 1)


class BatchNorm1d(_BatchNorm):
    """BatchNorm over (batch, features) activations."""

    def _axes(self):
        return (0,)

    def _param_shape(self):
        return (1, self.num_features)
