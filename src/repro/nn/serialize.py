"""Save/load model state dicts as ``.npz`` archives."""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.nn.module import Module


def save_state(model: Module, path: Union[str, os.PathLike]) -> None:
    """Write the model's state dict to an npz file."""
    state = model.state_dict()
    # npz keys cannot contain '/', but '.' and ':' are fine.
    np.savez(path, **state)


def load_state(model: Module, path: Union[str, os.PathLike]) -> None:
    """Load an npz state dict produced by :func:`save_state`."""
    with np.load(path) as archive:
        state = {key: archive[key] for key in archive.files}
    model.load_state_dict(state)
