"""Loss modules."""

from __future__ import annotations

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.module import Module


class CrossEntropyLoss(Module):
    """Mean softmax cross-entropy over integer class targets."""

    def forward(self, logits: Tensor, targets) -> Tensor:
        return F.softmax_cross_entropy(logits, targets)
