"""Optimizers (SGD with momentum, Adam) and learning-rate schedules."""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer over an explicit parameter list."""

    def __init__(self, params: Sequence[Parameter], lr: float) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ConfigError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ConfigError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.params:
            param.grad = None

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with classical momentum and decoupled L2 weight decay."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        from repro import backend as _backend
        K = _backend.active()
        for param in self.params:
            if param.grad is None:
                continue
            param.data, velocity = K.sgd_update(
                param.data, param.grad, self._velocity.get(id(param)),
                self.lr, self.momentum, self.weight_decay,
            )
            if velocity is not None:
                self._velocity[id(param)] = velocity


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = float(betas[0]), float(betas[1])
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        for param in self.params:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m = self._m.get(id(param))
            v = self._v.get(id(param))
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad * grad
            self._m[id(param)], self._v[id(param)] = m, v
            m_hat = m / (1 - self.beta1 ** self._t)
            v_hat = v / (1 - self.beta2 ** self._t)
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class RMSProp(Optimizer):
    """RMSProp (Tieleman & Hinton): scale steps by a running RMS of grads."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 1e-3,
        alpha: float = 0.99,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.alpha = float(alpha)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._square_avg: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.params:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            avg = self._square_avg.get(id(param))
            if avg is None:
                avg = np.zeros_like(param.data)
            avg = self.alpha * avg + (1 - self.alpha) * grad * grad
            self._square_avg[id(param)] = avg
            param.data = param.data - self.lr * grad / (np.sqrt(avg) + self.eps)


class StepSchedule:
    """Multiply the optimizer lr by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        self.optimizer = optimizer
        self.step_size = int(step_size)
        self.gamma = float(gamma)
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        drops = self.epoch // self.step_size
        self.optimizer.lr = self.base_lr * (self.gamma ** drops)


class CosineSchedule:
    """Cosine-anneal the lr from base to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0) -> None:
        self.optimizer = optimizer
        self.total_epochs = int(total_epochs)
        self.min_lr = float(min_lr)
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch = min(self.epoch + 1, self.total_epochs)
        progress = self.epoch / self.total_epochs
        cosine = 0.5 * (1 + math.cos(math.pi * progress))
        self.optimizer.lr = self.min_lr + (self.base_lr - self.min_lr) * cosine
