"""Neural-network building blocks on top of :mod:`repro.autograd`.

Mirrors the familiar torch.nn layout: :class:`Module` trees with named
parameters, layers, losses, initializers, optimizers, data loading and
state-dict serialization.
"""

from repro.nn.module import Module, Parameter, Sequential
from repro.nn.layers import (
    Conv2d,
    Dropout,
    Flatten,
    Identity,
    LeakyReLU,
    Linear,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.nn.norm import BatchNorm1d, BatchNorm2d
from repro.nn.norm_extra import GroupNorm, LayerNorm
from repro.nn.pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d
from repro.nn.blocks import BasicBlock, ConvBnRelu
from repro.nn.losses import CrossEntropyLoss
from repro.nn.optim import SGD, Adam, CosineSchedule, RMSProp, StepSchedule
from repro.nn.dataloader import DataLoader
from repro.nn.serialize import load_state, save_state
from repro.nn import init

__all__ = [
    "Module", "Parameter", "Sequential", "Linear", "Conv2d", "Flatten",
    "Identity", "ReLU", "LeakyReLU", "Sigmoid", "Tanh", "Dropout",
    "BatchNorm1d", "BatchNorm2d", "LayerNorm", "GroupNorm",
    "MaxPool2d", "AvgPool2d", "GlobalAvgPool2d",
    "BasicBlock", "ConvBnRelu", "CrossEntropyLoss", "SGD", "Adam", "RMSProp",
    "StepSchedule", "CosineSchedule", "DataLoader", "save_state",
    "load_state", "init",
]
