"""LayerNorm and GroupNorm -- batch-independent normalization layers.

Quantization-aware pipelines often prefer batch-independent norms (no
running statistics to re-calibrate after weight changes); these are
provided for model-zoo diversity and are exercised by the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.errors import ConfigError
from repro.nn.module import Module, Parameter


class LayerNorm(Module):
    """Normalise over the trailing feature axis of (batch, features)."""

    def __init__(self, num_features: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = int(num_features)
        self.eps = float(eps)
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))

    def forward(self, x: Tensor) -> Tensor:
        mean = F.mean(x, axis=-1, keepdims=True)
        centered = F.sub(x, mean)
        variance = F.mean(F.mul(centered, centered), axis=-1, keepdims=True)
        normalized = F.div(centered, F.sqrt(F.add(variance, Tensor(self.eps))))
        return F.add(F.mul(normalized, self.gamma), self.beta)


class GroupNorm(Module):
    """Normalise NCHW activations within channel groups (Wu & He, 2018)."""

    def __init__(self, num_groups: int, num_channels: int, eps: float = 1e-5) -> None:
        super().__init__()
        if num_channels % num_groups:
            raise ConfigError(
                f"channels ({num_channels}) must divide evenly into groups ({num_groups})"
            )
        self.num_groups = int(num_groups)
        self.num_channels = int(num_channels)
        self.eps = float(eps)
        self.gamma = Parameter(np.ones(num_channels))
        self.beta = Parameter(np.zeros(num_channels))

    def forward(self, x: Tensor) -> Tensor:
        batch, channels, height, width = x.shape
        if channels != self.num_channels:
            raise ConfigError(
                f"expected {self.num_channels} channels, got {channels}"
            )
        grouped = F.reshape(x, (batch, self.num_groups, -1))
        mean = F.mean(grouped, axis=2, keepdims=True)
        centered = F.sub(grouped, mean)
        variance = F.mean(F.mul(centered, centered), axis=2, keepdims=True)
        normalized = F.div(centered, F.sqrt(F.add(variance, Tensor(self.eps))))
        normalized = F.reshape(normalized, (batch, channels, height, width))
        gamma = F.reshape(self.gamma, (1, channels, 1, 1))
        beta = F.reshape(self.beta, (1, channels, 1, 1))
        return F.add(F.mul(normalized, gamma), beta)
