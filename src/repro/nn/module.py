"""Module system: parameter containers with nesting and state dicts."""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro import precision
from repro.autograd.tensor import Tensor
from repro.errors import ReproError


class Parameter(Tensor):
    """A Tensor that is a learnable parameter of a Module.

    Parameters are where the compute-dtype policy takes hold of a
    model: unless an explicit ``dtype`` is given, the data is
    materialized at :func:`repro.precision.default_dtype`, so the
    float64 arrays every initializer produces become float32 under the
    default policy.
    """

    def __init__(self, data, dtype=None) -> None:
        if dtype is None:
            dtype = precision.default_dtype()
        super().__init__(data, requires_grad=True, dtype=dtype)


class Module:
    """Base class for all neural network modules.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; they are registered automatically and show up in
    :meth:`named_parameters` / :meth:`state_dict` in assignment order.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)

    # ----------------------------------------------------------- registry
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Track a non-learnable array in the state dict (e.g. BN stats).

        Float buffers follow the compute-dtype policy at registration
        time, matching the parameters of the module that owns them.
        """
        array = np.asarray(value)
        if array.dtype.kind == "f":
            array = array.astype(precision.default_dtype(), copy=False)
        self._buffers[name] = array
        object.__setattr__(self, name, self._buffers[name])

    def update_buffer(self, name: str, value: np.ndarray) -> None:
        if name not in self._buffers:
            raise ReproError(f"unknown buffer {name!r}")
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    # ---------------------------------------------------------- traversal
    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix, self
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(child_prefix)

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for module_name, module in self.named_modules(prefix):
            for name, param in module._parameters.items():
                full = f"{module_name}.{name}" if module_name else name
                yield full, param

    def parameters(self) -> List[Parameter]:
        return [param for _, param in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of scalar learnable parameters."""
        return sum(p.size for p in self.parameters())

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for module_name, module in self.named_modules(prefix):
            for name, buf in module._buffers.items():
                full = f"{module_name}.{name}" if module_name else name
                yield full, buf

    # --------------------------------------------------------------- mode
    def train(self) -> "Module":
        for _, module in self.named_modules():
            object.__setattr__(module, "training", True)
        return self

    def eval(self) -> "Module":
        for _, module in self.named_modules():
            object.__setattr__(module, "training", False)
        return self

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    # -------------------------------------------------------------- state
    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = OrderedDict()
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state[f"buffer:{name}"] = np.array(buf, copy=True)
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        buffer_owners: Dict[str, Tuple[Module, str]] = {}
        for module_name, module in self.named_modules():
            for buf_name in module._buffers:
                full = f"{module_name}.{buf_name}" if module_name else buf_name
                buffer_owners[full] = (module, buf_name)
        for key, value in state.items():
            if key.startswith("buffer:"):
                name = key[len("buffer:"):]
                if name not in buffer_owners:
                    raise ReproError(f"state dict contains unknown buffer {name!r}")
                owner, buf_name = buffer_owners[name]
                owner.update_buffer(buf_name, value)
            else:
                if key not in params:
                    raise ReproError(f"state dict contains unknown parameter {key!r}")
                if params[key].data.shape != value.shape:
                    raise ReproError(
                        f"shape mismatch for {key!r}: model {params[key].data.shape} "
                        f"vs state {value.shape}"
                    )
                params[key].data = np.array(value, copy=True)

    # ------------------------------------------------------------ forward
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        children = ", ".join(self._modules)
        return f"{type(self).__name__}({children})"


class Sequential(Module):
    """Chain modules, feeding each output into the next module."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        for index, module in enumerate(modules):
            setattr(self, str(index), module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]

    def forward(self, x):
        for module in self._modules.values():
            x = module(x)
        return x
