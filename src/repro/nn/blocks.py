"""Composite blocks: conv-bn-relu and the ResNet basic residual block."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.layers import Conv2d, Identity, ReLU
from repro.nn.module import Module, Sequential
from repro.nn.norm import BatchNorm2d


class ConvBnRelu(Module):
    """Conv → BatchNorm → ReLU, the standard CNN stem unit."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        padding: int = 1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.conv = Conv2d(
            in_channels, out_channels, kernel_size,
            stride=stride, padding=padding, bias=False, rng=rng,
        )
        self.bn = BatchNorm2d(out_channels)
        self.act = ReLU()

    def forward(self, x: Tensor) -> Tensor:
        return self.act(self.bn(self.conv(x)))


class BasicBlock(Module):
    """ResNet v1 basic block: two 3x3 convs with an identity shortcut.

    When the stride or channel count changes, the shortcut is a strided
    1x1 convolution, as in He et al. (2016).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride, padding=1,
                            bias=False, rng=rng)
        self.bn1 = BatchNorm2d(out_channels)
        self.conv2 = Conv2d(out_channels, out_channels, 3, stride=1, padding=1,
                            bias=False, rng=rng)
        self.bn2 = BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.shortcut = Sequential(
                Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
                BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = F.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        out = F.add(out, self.shortcut(x))
        return F.relu(out)
