"""Minimal dataset/loader abstractions for numpy array data."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from repro import precision
from repro.errors import DatasetError


@dataclass
class ShardBatch:
    """One rank's slice of a global batch, with enough metadata to keep
    data-parallel training equivalent to the serial run: ``global_size``
    scales this rank's mean-gradient contribution and ``offset`` indexes
    into per-batch randomness drawn for the full batch (augmentation
    masks)."""

    inputs: np.ndarray
    labels: np.ndarray
    #: Size of the full (un-sharded) batch this slice came from.
    global_size: int
    #: Index of this slice's first element within the full batch.
    offset: int


class DataLoader:
    """Iterate (inputs, labels) minibatches over in-memory arrays.

    Shuffling uses a dedicated Generator, so epoch order is reproducible
    given the seed and independent of global numpy state.

    Float input batches are materialized at the compute dtype --
    ``dtype`` if given, else the active :mod:`repro.precision` policy at
    iteration time -- so a float64 dataset feeds float32 training
    without each batch upcasting the model's activations.  Labels are
    never cast.
    """

    def __init__(
        self,
        inputs: np.ndarray,
        labels: np.ndarray,
        batch_size: int = 32,
        shuffle: bool = True,
        seed: Optional[int] = None,
        drop_last: bool = False,
        dtype: Optional[np.dtype] = None,
    ) -> None:
        inputs = np.asarray(inputs)
        labels = np.asarray(labels)
        if len(inputs) != len(labels):
            raise DatasetError(
                f"inputs ({len(inputs)}) and labels ({len(labels)}) differ in length"
            )
        if len(inputs) == 0:
            raise DatasetError("cannot build a DataLoader over an empty dataset")
        if batch_size <= 0:
            raise DatasetError(f"batch size must be positive, got {batch_size}")
        self.inputs = inputs
        self.labels = labels
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.drop_last = bool(drop_last)
        self.dtype = precision.normalize_dtype(dtype) if dtype is not None else None
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        full, rem = divmod(len(self.inputs), self.batch_size)
        return full if self.drop_last or rem == 0 else full + 1

    def _epoch_order(self) -> np.ndarray:
        """Draw this epoch's index order, advancing the loader RNG once.

        Every consumer of one epoch -- the serial ``__iter__`` or each
        rank of a sharded iteration -- must go through this so identical
        seeds keep identical epoch order across processes.
        """
        order = np.arange(len(self.inputs))
        if self.shuffle:
            self._rng.shuffle(order)
        return order

    def _compute_dtype(self) -> np.dtype:
        return self.dtype if self.dtype is not None else precision.default_dtype()

    def _materialize(self, index: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        batch = self.inputs[index]
        want = self._compute_dtype()
        if batch.dtype.kind == "f" and batch.dtype != want:
            batch = batch.astype(want)
        return batch, self.labels[index]

    def _batch_indices(self, order: np.ndarray) -> Iterator[np.ndarray]:
        for start in range(0, len(order), self.batch_size):
            index = order[start:start + self.batch_size]
            if self.drop_last and len(index) < self.batch_size:
                return
            yield index

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        for index in self._batch_indices(self._epoch_order()):
            yield self._materialize(index)

    def shard(self, rank: int, world_size: int) -> "ShardedDataLoader":
        """A view of this loader yielding rank ``rank``'s slice of every
        batch.

        Each global batch is split into ``world_size`` contiguous,
        near-equal slices (rank ``r`` gets ``[r*n//W, (r+1)*n//W)`` of
        the batch's index array), so the union of all ranks' slices over
        one epoch is an exact, disjoint partition of the serial epoch --
        same seed, same global batch boundaries, no duplicated or
        dropped examples.  Slices may be empty when a ragged final batch
        is smaller than ``world_size``.

        Every shard view advances the *shared* loader RNG once per
        epoch, so all ranks (and a serial iteration) must consume epochs
        in lockstep -- the DDP runtime forks workers holding copies of
        the same loader and iterates one shard per process.
        """
        if world_size <= 0:
            raise DatasetError(f"world_size must be positive, got {world_size}")
        if not 0 <= rank < world_size:
            raise DatasetError(
                f"rank must be in [0, {world_size}), got {rank}"
            )
        return ShardedDataLoader(self, rank, world_size)


class ShardedDataLoader:
    """One rank's deterministic view of a :class:`DataLoader` epoch."""

    def __init__(self, loader: DataLoader, rank: int, world_size: int) -> None:
        self.loader = loader
        self.rank = int(rank)
        self.world_size = int(world_size)

    def __len__(self) -> int:
        return len(self.loader)

    def iter_meta(self) -> Iterator[ShardBatch]:
        """Yield :class:`ShardBatch` slices (the DDP runtime's format)."""
        loader = self.loader
        for index in loader._batch_indices(loader._epoch_order()):
            n = len(index)
            lo = self.rank * n // self.world_size
            hi = (self.rank + 1) * n // self.world_size
            inputs, labels = loader._materialize(index[lo:hi])
            yield ShardBatch(inputs=inputs, labels=labels,
                             global_size=n, offset=lo)

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        for batch in self.iter_meta():
            yield batch.inputs, batch.labels
