"""Minimal dataset/loader abstractions for numpy array data."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro import precision
from repro.errors import DatasetError


class DataLoader:
    """Iterate (inputs, labels) minibatches over in-memory arrays.

    Shuffling uses a dedicated Generator, so epoch order is reproducible
    given the seed and independent of global numpy state.

    Float input batches are materialized at the compute dtype --
    ``dtype`` if given, else the active :mod:`repro.precision` policy at
    iteration time -- so a float64 dataset feeds float32 training
    without each batch upcasting the model's activations.  Labels are
    never cast.
    """

    def __init__(
        self,
        inputs: np.ndarray,
        labels: np.ndarray,
        batch_size: int = 32,
        shuffle: bool = True,
        seed: Optional[int] = None,
        drop_last: bool = False,
        dtype: Optional[np.dtype] = None,
    ) -> None:
        inputs = np.asarray(inputs)
        labels = np.asarray(labels)
        if len(inputs) != len(labels):
            raise DatasetError(
                f"inputs ({len(inputs)}) and labels ({len(labels)}) differ in length"
            )
        if len(inputs) == 0:
            raise DatasetError("cannot build a DataLoader over an empty dataset")
        if batch_size <= 0:
            raise DatasetError(f"batch size must be positive, got {batch_size}")
        self.inputs = inputs
        self.labels = labels
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.drop_last = bool(drop_last)
        self.dtype = precision.normalize_dtype(dtype) if dtype is not None else None
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        full, rem = divmod(len(self.inputs), self.batch_size)
        return full if self.drop_last or rem == 0 else full + 1

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        order = np.arange(len(self.inputs))
        if self.shuffle:
            self._rng.shuffle(order)
        want = self.dtype if self.dtype is not None else precision.default_dtype()
        for start in range(0, len(order), self.batch_size):
            index = order[start:start + self.batch_size]
            if self.drop_last and len(index) < self.batch_size:
                return
            batch = self.inputs[index]
            if batch.dtype.kind == "f" and batch.dtype != want:
                batch = batch.astype(want)
            yield batch, self.labels[index]
