"""Replay engine for compiled training steps.

A :class:`CompiledStep` is the executable produced by
:mod:`repro.graph.compiler`: a slot-array program whose instructions
call the *captured* ``Function`` instances directly -- no
``Function.apply`` dispatch, no ``Tensor`` wrapping, no graph
re-recording.  Replay numerics are **bit-identical** to the eager step
because every instruction invokes the same kernels in the same order
eager execution would:

* generic forward instructions call ``fn.forward`` (which re-runs all
  data-dependent state: batch-norm statistics, max-pool argmaps, the
  saved activations backward needs);
* fused chains replace runs of elementwise ``Function.apply`` calls
  with single closures of in-place numpy ufuncs writing into buffers
  planned by :class:`~repro.autograd.planner.StaticAllocationPlan`;
  each emitter replicates the reference kernel's exact arithmetic and
  re-creates the op's saved state, so the downstream backward cannot
  tell the difference;
* backward sections mirror ``Tensor.backward``'s walk over the *same*
  reverse-topological order, with the same leaf-only gradient storage
  and the same accumulation order (so floating-point sums are bitwise
  reproducible), but with the walk itself -- topological sort, liveness
  plan, dict bookkeeping -- hoisted to compile time.

Replay never releases saved state (buffers are program-owned and
rewritten by the next forward), which is why a captured
``backward(retain_graph=True)`` + second backward replays naturally.

Any exception during replay leaves the program's scratch buffers in an
unspecified state but the *model* untouched except for partially
written gradients; the trainer's contract is to discard the program,
``zero_grad`` and re-run the step eagerly.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import backend as _backend
from repro.autograd.planner import StaticAllocationPlan
from repro.errors import GraphError
from repro.graph.ir import GraphIR


def _registry():
    from repro.telemetry.metrics import default_registry
    return default_registry()


class ApplyOp:
    """One non-fused forward instruction: ``vals[out] = fn.forward(...)``."""

    fused = False
    __slots__ = ("fn", "in_slots", "out_slot", "op_names")

    def __init__(self, fn, in_slots: Sequence[int], out_slot: int) -> None:
        self.fn = fn
        self.in_slots = tuple(in_slots)
        self.out_slot = out_slot
        self.op_names = (type(fn).__name__,)

    def __call__(self, vals: List[Any]) -> None:
        # unrolled for the common arities; the generic path allocates an
        # argument list per call, which the replay loop runs hot
        slots = self.in_slots
        if len(slots) == 1:
            vals[self.out_slot] = self.fn.forward(vals[slots[0]])
        elif len(slots) == 2:
            vals[self.out_slot] = self.fn.forward(vals[slots[0]], vals[slots[1]])
        else:
            vals[self.out_slot] = self.fn.forward(*[vals[s] for s in slots])


class FusedStep:
    """One op inside a fused chain: an in-place ufunc emitter."""

    __slots__ = ("op", "runner", "fn", "in_slots", "out_slot", "handle",
                 "plan", "buf", "out_shape", "out_dtype",
                 "in_shapes", "in_dtypes")

    def __init__(self, op: str, runner: Callable, fn, in_slots: Sequence[int],
                 out_slot: int, handle: int, plan: StaticAllocationPlan,
                 out_shape: Tuple[int, ...], out_dtype,
                 in_shapes: Sequence[Tuple[int, ...]], in_dtypes) -> None:
        self.op = op
        self.runner = runner
        self.fn = fn
        self.in_slots = tuple(in_slots)
        self.out_slot = out_slot
        self.handle = handle
        self.plan = plan
        self.buf: Optional[np.ndarray] = None
        self.out_shape = tuple(out_shape)
        self.out_dtype = np.dtype(out_dtype)
        self.in_shapes = tuple(tuple(s) for s in in_shapes)
        self.in_dtypes = tuple(np.dtype(d) for d in in_dtypes)

    def dest(self) -> np.ndarray:
        buf = self.buf
        if buf is None:
            buf = self.buf = self.plan.materialize(self.handle)
        return buf


class FusedChain:
    """A run of elementwise ops compiled into one schedule instruction."""

    fused = True
    __slots__ = ("steps", "op_names")

    def __init__(self, steps: Sequence[FusedStep]) -> None:
        self.steps = list(steps)
        self.op_names = tuple(st.op for st in self.steps)

    def __call__(self, vals: List[Any]) -> None:
        for st in self.steps:
            vals[st.out_slot] = st.runner(
                st.fn, [vals[s] for s in st.in_slots], st.dest()
            )

    def external_inputs(self) -> List[Tuple[int, Tuple[int, ...], np.dtype]]:
        """(slot, shape, dtype) of every value the chain reads from outside."""
        internal = {st.out_slot for st in self.steps}
        seen = {}
        for st in self.steps:
            for slot, shape, dtype in zip(st.in_slots, st.in_shapes, st.in_dtypes):
                if slot not in internal and slot not in seen:
                    seen[slot] = (slot, shape, dtype)
        return list(seen.values())


class BackwardNode:
    """Compile-time image of one position of the eager backward walk."""

    __slots__ = ("tensor", "fn", "store", "parents")

    def __init__(self, tensor, fn, store: bool,
                 parents: Sequence[Tuple[int, int, Optional[int]]]) -> None:
        self.tensor = tensor
        self.fn = fn
        self.store = store
        # (input_index, parent_position, accumulation-buffer handle|None)
        self.parents = tuple(parents)


class BackwardSection:
    """One captured ``Tensor.backward`` call, lowered to a flat schedule.

    The node list is exactly ``root._topological_order()`` at capture
    time; per-replay state is one ``gvals`` list indexed by position.
    Accumulation of multiple gradient contributions into one value uses
    ``np.add(prev, pg, out=buf)`` with a planner-owned exclusive buffer
    -- bitwise identical to the eager ``K.add(prev, pg)`` (both are one
    IEEE add in the same order) without the per-step allocation.
    """

    __slots__ = ("root", "seed", "nodes", "plan", "_active")

    def __init__(self, root, seed: np.ndarray, nodes: Sequence[BackwardNode],
                 plan: StaticAllocationPlan) -> None:
        self.root = root
        self.seed = seed
        self.nodes = list(nodes)
        self.plan = plan
        # positions that neither store a gradient nor run a backward fn
        # (pure leaves without requires_grad) receive gradients but never
        # act on them; hoist them out of the replay walk
        self._active = [
            (position, node) for position, node in enumerate(self.nodes)
            if node.store or node.fn is not None
        ]

    def run(self) -> None:
        K = _backend.active()
        plan = self.plan
        # the captured root tensor persists across replays; eagerly each
        # step builds a fresh loss tensor with grad=None, so mirror that
        self.root.grad = None
        gvals: List[Optional[np.ndarray]] = [None] * len(self.nodes)
        gvals[0] = self.seed
        for position, node in self._active:
            g = gvals[position]
            gvals[position] = None
            if node.store and g is not None:
                t = node.tensor
                t.grad = g if t.grad is None else K.add(t.grad, g)
            fn = node.fn
            if fn is None or g is None:
                continue
            input_grads = fn.backward(g)
            for idx, parent_pos, handle in node.parents:
                pg = input_grads[idx]
                if pg is None:
                    continue
                prev = gvals[parent_pos]
                if prev is None:
                    gvals[parent_pos] = pg
                elif handle is not None:
                    buf = plan.materialize(handle)
                    if (prev.shape == buf.shape and pg.shape == buf.shape
                            and prev.dtype == buf.dtype and pg.dtype == buf.dtype):
                        np.add(prev, pg, out=buf)
                        gvals[parent_pos] = buf
                    else:
                        gvals[parent_pos] = K.add(prev, pg)
                else:
                    gvals[parent_pos] = K.add(prev, pg)


class CompiledStep:
    """An executable schedule for one captured training step."""

    def __init__(
        self,
        *,
        nslots: int,
        feeds: Dict[str, Tuple[int, Tuple[int, ...], np.dtype]],
        leaf_loads: Sequence[Tuple[int, Any]],
        rebinds: Sequence[Tuple[Any, str]],
        forward_ops: Sequence[Callable],
        backward_sections: Sequence[BackwardSection],
        side_effects: Sequence[Any],
        outputs: Dict[str, int],
        ir: GraphIR,
        plan: StaticAllocationPlan,
    ) -> None:
        self._nslots = nslots
        self._feeds = dict(feeds)
        self._leaf_loads = list(leaf_loads)
        self._rebinds = list(rebinds)
        self._forward_ops = list(forward_ops)
        self._backward_sections = list(backward_sections)
        self._side_effects = list(side_effects)
        self._outputs = dict(outputs)
        self.ir = ir
        self.plan = plan
        self._vals: List[Any] = [None] * nslots
        self._replay_counter = None
        self.replays = 0

    # -------------------------------------------------------- inspection
    @property
    def fused_chains(self) -> List[FusedChain]:
        return [op for op in self._forward_ops if getattr(op, "fused", False)]

    @property
    def fused_op_count(self) -> int:
        return sum(len(c.steps) for c in self.fused_chains)

    @property
    def instruction_count(self) -> int:
        return len(self._forward_ops)

    def describe(self) -> Dict[str, Any]:
        return {
            "slots": self._nslots,
            "instructions": self.instruction_count,
            "fused_chains": len(self.fused_chains),
            "fused_ops": self.fused_op_count,
            "backward_sections": len(self._backward_sections),
            "feeds": sorted(self._feeds),
            "bindings": sorted({name for _, name in self._rebinds}),
            "outputs": sorted(self._outputs),
            "plan": self.plan.summary(),
        }

    # ------------------------------------------------------------ replay
    def replay(self, **kwargs: Any) -> Dict[str, np.ndarray]:
        """Re-run the captured step on new feed arrays.

        Keyword arguments supply one array per feed name plus one value
        per step binding (e.g. ``targets=``).  Raises
        :class:`~repro.errors.GraphError` on shape/dtype mismatch --
        callers catch it and fall back to eager execution.
        """
        vals = self._vals
        for name, (slot, shape, dtype) in self._feeds.items():
            try:
                arr = kwargs[name]
            except KeyError:
                raise GraphError(f"replay is missing feed {name!r}") from None
            arr = np.asarray(arr)
            if arr.shape != shape or arr.dtype != dtype:
                raise GraphError(
                    f"feed {name!r} is {arr.shape}/{arr.dtype}, captured "
                    f"{shape}/{dtype}; recompile for the new signature"
                )
            vals[slot] = arr
        # parameters mutate via the optimizer reassigning ``.data`` on
        # the same Parameter objects, so every replay re-reads them
        for slot, tensor in self._leaf_loads:
            vals[slot] = tensor.data
        for fn, name in self._rebinds:
            if name not in kwargs:
                raise GraphError(f"replay is missing step binding {name!r}")
            fn.rebind(kwargs[name])
        for op in self._forward_ops:
            op(vals)
        for section in self._backward_sections:
            section.run()
        # non-graph side effects (batch-norm running statistics) run only
        # after the whole step succeeded, so a failed replay followed by
        # an eager re-run applies them exactly once
        for fn in self._side_effects:
            fn.on_replay(fn)
        self.replays += 1
        counter = self._replay_counter
        if counter is None:
            counter = self._replay_counter = _registry().counter("graph.replays")
        counter.inc()
        return {name: vals[slot] for name, slot in self._outputs.items()}
