"""Lower a captured trace to a :class:`~repro.graph.executor.CompiledStep`.

The compiler's contract is **bit-identity**: a replay must produce
exactly the arrays the eager step would, so every transformation here
is restricted to ones that provably cannot move a single ULP:

* Python-dispatch removal -- instructions call the captured
  ``Function`` objects' ``forward``/``backward`` directly, skipping
  ``Function.apply``/``Tensor.backward`` bookkeeping entirely;
* elementwise-chain fusion -- runs of whitelisted ops collapse into
  single closures whose in-place ufunc emitters replicate the
  reference kernels' arithmetic exactly (``np.add(a, b, out=buf)`` is
  the same IEEE operation as ``a + b``), writing into buffers planned
  once by :class:`~repro.autograd.planner.StaticAllocationPlan`;
* backward lowering -- the reverse-topological walk, liveness analysis
  and gradient-routing decisions of ``Tensor.backward`` are executed
  once at compile time and frozen into a flat schedule that preserves
  eager accumulation order.

Anything the schedule cannot freeze safely raises
:class:`~repro.errors.GraphError`: dynamic layers (dropout), tensors
produced outside the capture window, explicit backward gradients.  The
trainer treats that as "stay eager", never as "best effort".
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import backend as _backend
from repro.autograd.ops_nn import Conv2dFn
from repro.autograd.planner import StaticAllocationPlan
from repro.autograd.tensor import Tensor
from repro.backend import reference as _reference
from repro.errors import GraphError
from repro.graph import ir as _ir
from repro.graph.executor import (
    ApplyOp,
    BackwardNode,
    BackwardSection,
    CompiledStep,
    FusedChain,
    FusedStep,
)
from repro.graph.trace import TraceSession

# ---------------------------------------------------------------------------
# Fused emitters
#
# Each runner replicates one reference kernel / Function.forward body
# with in-place ufuncs, *including* the op's saved-state side effects,
# so the captured node's backward works unchanged.  A runner must be
# bitwise identical to the eager forward -- new ops join this table only
# with an equivalence test in tests/graph/.
# ---------------------------------------------------------------------------


def _run_add(fn, ins, dest):
    np.add(ins[0], ins[1], out=dest)
    return dest


def _run_sub(fn, ins, dest):
    np.subtract(ins[0], ins[1], out=dest)
    return dest


def _run_mul(fn, ins, dest):
    a, b = ins
    np.multiply(a, b, out=dest)
    fn.saved = (a, b)
    return dest


def _run_div(fn, ins, dest):
    a, b = ins
    np.divide(a, b, out=dest)
    fn.saved = (a, b)
    return dest


def _run_neg(fn, ins, dest):
    np.negative(ins[0], out=dest)
    return dest


def _run_exp(fn, ins, dest):
    np.exp(ins[0], out=dest)
    fn.saved = (dest,)
    return dest


def _run_sqrt(fn, ins, dest):
    np.sqrt(ins[0], out=dest)
    fn.saved = (dest,)
    return dest


def _run_tanh(fn, ins, dest):
    np.tanh(ins[0], out=dest)
    fn.saved = (dest,)
    return dest


def _run_sigmoid(fn, ins, dest):
    # 1 / (1 + exp(-a)), computed in place; each ufunc matches the
    # eager expression's corresponding IEEE operation exactly
    np.negative(ins[0], out=dest)
    np.exp(dest, out=dest)
    np.add(dest, 1.0, out=dest)
    np.divide(1.0, dest, out=dest)
    fn.saved = (dest,)
    return dest


def _run_relu(fn, ins, dest):
    a = ins[0]
    mask = np.greater(a, 0)
    np.multiply(a, mask, out=dest)
    fn.saved = (mask,)
    return dest


#: op name -> emitter.  Only ops whose eager forward is a plain-numpy
#: expression (directly or via the reference elementwise kernels).
FUSIBLE: Dict[str, Callable] = {
    "Add": _run_add,
    "Sub": _run_sub,
    "Mul": _run_mul,
    "Div": _run_div,
    "Neg": _run_neg,
    "Exp": _run_exp,
    "Sqrt": _run_sqrt,
    "Tanh": _run_tanh,
    "Sigmoid": _run_sigmoid,
    "ReLU": _run_relu,
}

#: Ops whose emitter saves its *output* buffer for backward -- the
#: buffer is live across the forward/backward boundary, so it can never
#: share storage with another value.
_OUTPUT_SAVING = {"Exp", "Sqrt", "Tanh", "Sigmoid"}

#: Fused ops that keep no reference to their input arrays (ReLU saves a
#: freshly allocated mask, not the input).  A chain value is allowed to
#: share a scratch buffer only when every consumer is one of these --
#: any other consumer (``Mul`` saving its operands, a conv saving its
#: input, ...) pins the value for the whole step.
_NONSAVING_CONSUMERS = {"Add", "Sub", "Neg", "Exp", "Sqrt", "Tanh",
                        "Sigmoid", "ReLU"}

#: Elementwise kernels the emitters shadow; fusion is enabled only when
#: the active backend resolves all of them to the reference
#: implementations (every shipped backend does -- this guards a future
#: backend that overrides elementwise math with different numerics).
_SHADOWED_KERNELS = ("add", "sub", "mul", "div", "neg", "relu")


def fusion_supported(backend=None) -> bool:
    """True when fused chains are bitwise-safe under ``backend``."""
    K = backend if backend is not None else _backend.active()
    ref = _reference.BACKEND
    return all(
        getattr(K, name, None) is getattr(ref, name, None)
        for name in _SHADOWED_KERNELS
    )


class _Instr:
    __slots__ = ("fn", "in_slots", "out_slot", "op", "out_tensor")

    def __init__(self, fn, in_slots, out_slot, out_tensor):
        self.fn = fn
        self.in_slots = tuple(in_slots)
        self.out_slot = out_slot
        self.op = type(fn).__name__
        self.out_tensor = out_tensor


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------


def compile_step(
    session: TraceSession,
    feeds: Dict[str, Tensor],
    outputs: Dict[str, Tensor],
    fuse: bool = True,
) -> CompiledStep:
    """Compile one recorded step into a replayable schedule.

    ``feeds`` names the tensors whose ``.data`` is replaced per replay
    (the batch inputs); ``outputs`` names traced tensors whose
    post-replay values ``replay()`` returns (the losses).  Raises
    :class:`GraphError` whenever a faithful static schedule cannot be
    built.
    """
    if session.is_dynamic:
        raise GraphError(
            "trace is dynamic (" + ", ".join(session.dynamic_reasons)
            + "); replay would freeze per-step behaviour"
        )
    if not session.applies:
        raise GraphError("trace recorded no operations")

    # ------------------------------------------------- slot assignment
    slot_of: Dict[int, int] = {}
    slot_tensor: List[Tensor] = []
    feed_by_id = {id(t): name for name, t in feeds.items()}
    feed_slots: Dict[str, Tuple[int, Tuple[int, ...], np.dtype]] = {}
    leaf_loads: List[Tuple[int, Tensor]] = []
    source_kind: Dict[int, str] = {}  # slot -> "feed" | "leaf" | "const"

    def new_slot(t: Tensor) -> int:
        s = len(slot_tensor)
        slot_tensor.append(t)
        slot_of[id(t)] = s
        return s

    def source_slot(t: Tensor) -> int:
        s = slot_of.get(id(t))
        if s is not None:
            return s
        s = new_slot(t)
        name = feed_by_id.get(id(t))
        if name is not None:
            feed_slots[name] = (s, t.data.shape, t.data.dtype)
            source_kind[s] = "feed"
        elif t._creator is not None:
            # produced by an op the trace did not see: replaying would
            # silently freeze a stale activation
            raise GraphError(
                "step consumed a tensor produced outside the capture window"
            )
        else:
            leaf_loads.append((s, t))
            source_kind[s] = "leaf" if t.requires_grad else "const"
        return s

    for name in feeds:
        source_slot(feeds[name])

    instrs: List[_Instr] = []
    traced_fns: set = set()
    rebinds: List[Tuple[Any, str]] = []
    side_effects: List[Any] = []
    for rec in session.applies:
        in_slots = [source_slot(t) for t in rec.inputs]
        out_slot = new_slot(rec.output)
        instrs.append(_Instr(rec.fn, in_slots, out_slot, rec.output))
        traced_fns.add(id(rec.fn))
        binding = rec.fn.step_binding
        if binding is not None:
            if not hasattr(rec.fn, "rebind"):
                raise GraphError(
                    f"{type(rec.fn).__name__} declares step binding "
                    f"{binding!r} but has no rebind()"
                )
            rebinds.append((rec.fn, binding))
        if rec.fn.on_replay is not None:
            side_effects.append(rec.fn)
        if isinstance(rec.fn, Conv2dFn):
            # trade the tape planner's memory saving back for compute:
            # replays keep the forward's patch matrix for backward
            rec.fn.keep_cols = True

    out_slots: Dict[str, int] = {}
    for name, t in outputs.items():
        out_slots[name] = source_slot(t)
    output_slot_set = set(out_slots.values())

    # ----------------------------------------------------------- fusion
    plan = StaticAllocationPlan()
    consumers: Dict[int, List[int]] = {}
    for i, ins in enumerate(instrs):
        for s in ins.in_slots:
            consumers.setdefault(s, []).append(i)

    fuse = fuse and fusion_supported()
    chain_spans: List[Tuple[int, int]] = []
    if fuse:
        i = 0
        while i < len(instrs):
            if instrs[i].op in FUSIBLE:
                j = i
                while (
                    j + 1 < len(instrs)
                    and instrs[j + 1].op in FUSIBLE
                    and instrs[j].out_slot in instrs[j + 1].in_slots
                ):
                    j += 1
                if j > i:
                    chain_spans.append((i, j))
                    i = j + 1
                    continue
            i += 1

    fused_index: Dict[int, str] = {}  # instr index -> op name, if fused
    for start, endi in chain_spans:
        for k in range(start, endi + 1):
            fused_index[k] = instrs[k].op

    def _value_reusable(k: int, ins: _Instr) -> bool:
        if ins.op in _OUTPUT_SAVING:
            return False
        if ins.out_slot in output_slot_set:
            return False
        for c in consumers.get(ins.out_slot, ()):
            if fused_index.get(c) not in _NONSAVING_CONSUMERS:
                return False
        return True

    forward_ops: List[Callable] = []
    pos = 0
    for start, endi in sorted(chain_spans):
        for k in range(pos, start):
            ins = instrs[k]
            forward_ops.append(ApplyOp(ins.fn, ins.in_slots, ins.out_slot))
        steps: List[FusedStep] = []
        for k in range(start, endi + 1):
            ins = instrs[k]
            out = ins.out_tensor.data
            if _value_reusable(k, ins):
                last = max(consumers.get(ins.out_slot, [k]))
                handle = plan.request(out.shape, out.dtype, start=k, end=last)
            else:
                handle = plan.request(out.shape, out.dtype, start=k,
                                      exclusive=True)
            in_shapes = [slot_tensor[s].data.shape for s in ins.in_slots]
            in_dtypes = [slot_tensor[s].data.dtype for s in ins.in_slots]
            steps.append(
                FusedStep(
                    ins.op, FUSIBLE[ins.op], ins.fn, ins.in_slots,
                    ins.out_slot, handle, plan, out.shape, out.dtype,
                    in_shapes, in_dtypes,
                )
            )
        forward_ops.append(FusedChain(steps))
        pos = endi + 1
    for k in range(pos, len(instrs)):
        ins = instrs[k]
        forward_ops.append(ApplyOp(ins.fn, ins.in_slots, ins.out_slot))

    # --------------------------------------------------------- backward
    sections: List[BackwardSection] = []
    grad_request_base = len(instrs) + 1
    for rec in session.backwards:
        root = rec.root
        if id(root) not in slot_of:
            raise GraphError("backward root was not produced inside the capture")
        if rec.grad.shape != root.data.shape or not np.all(rec.grad == 1):
            raise GraphError(
                "explicit backward gradients are not capturable; only the "
                "default scalar-loss seed replays"
            )
        order = root._topological_order()
        pos_of = {id(t): p for p, t in enumerate(order)}
        # count gradient contributions per position so multi-consumer
        # values get a planned accumulation buffer
        contributions: Dict[int, int] = {}
        for t in order:
            fn = t._creator
            if fn is None:
                continue
            if id(fn) not in traced_fns:
                raise GraphError(
                    "backward reaches a node recorded outside the capture window"
                )
            for parent, needs in zip(fn.inputs, fn.needs_grad):
                if needs or parent._creator is not None:
                    p = pos_of[id(parent)]
                    contributions[p] = contributions.get(p, 0) + 1
        accum_handle: Dict[int, int] = {}
        for p, count in contributions.items():
            if count >= 2:
                data = order[p].data
                accum_handle[p] = plan.request(
                    data.shape, data.dtype,
                    start=grad_request_base + p, exclusive=True,
                )
        nodes: List[BackwardNode] = []
        for t in order:
            fn = t._creator
            store = t.requires_grad and (fn is None or t is root)
            parents: List[Tuple[int, int, Optional[int]]] = []
            if fn is not None:
                for idx, (parent, needs) in enumerate(zip(fn.inputs, fn.needs_grad)):
                    if needs or parent._creator is not None:
                        p = pos_of[id(parent)]
                        parents.append((idx, p, accum_handle.get(p)))
            nodes.append(BackwardNode(t, fn, store, parents))
        seed = np.ones_like(root.data)
        seed.setflags(write=False)
        sections.append(BackwardSection(root, seed, nodes, plan))
        grad_request_base += len(order) + 1

    plan.solve()

    # --------------------------------------------------------------- IR
    graph_ir = _ir.GraphIR()
    for s, kind in source_kind.items():
        t = slot_tensor[s]
        graph_ir.sources.append(
            _ir.IRSource(
                id=f"v{s}", kind=kind, shape=t.data.shape,
                dtype=t.data.dtype.str,
                name=next((n for n, (fs, _, _) in feed_slots.items() if fs == s), None),
            )
        )
    for ins in instrs:
        out = ins.out_tensor
        graph_ir.nodes.append(
            _ir.IRNode(
                id=f"v{ins.out_slot}",
                op=ins.op,
                inputs=[f"v{s}" for s in ins.in_slots],
                shape=out.data.shape,
                dtype=out.data.dtype.str,
                kernels=_ir.kernels_for(ins.op),
                requires_grad=out.requires_grad,
                meta=_ir.node_meta(ins.fn),
            )
        )
    graph_ir.outputs = {name: f"v{s}" for name, s in out_slots.items()}
    graph_ir.backward_roots = [
        f"v{slot_of[id(rec.root)]}" for rec in session.backwards
    ]

    return CompiledStep(
        nslots=len(slot_tensor),
        feeds=feed_slots,
        leaf_loads=leaf_loads,
        rebinds=rebinds,
        forward_ops=forward_ops,
        backward_sections=sections,
        side_effects=side_effects,
        outputs=out_slots,
        ir=graph_ir,
        plan=plan,
    )


def capture_step(
    step_fn: Callable[[], Dict[str, Any]],
    feeds: Dict[str, Tensor],
    fuse: bool = True,
) -> Tuple[Dict[str, Any], Optional[CompiledStep]]:
    """Run one warm-up step under a trace and compile it.

    ``step_fn`` executes the full eager step (forward, losses, backward)
    and returns a result dict; every :class:`Tensor` value in it becomes
    a named program output.  Returns ``(result, program)``.  When the
    trace cannot be compiled the eager step has still fully run -- its
    gradients and statistics are valid -- so the :class:`GraphError` is
    swallowed (after ticking the capture-failure counter) and the
    caller receives ``(result, None)``: keep the eager result, stay
    eager.  Use :func:`compile_step` directly for the failure reason.
    """
    from repro.telemetry.metrics import default_registry

    session = TraceSession()
    with session:
        result = step_fn()
    outputs = {k: v for k, v in result.items() if isinstance(v, Tensor)}
    try:
        program = compile_step(session, feeds=feeds, outputs=outputs, fuse=fuse)
    except GraphError:
        default_registry().counter("graph.capture_failures").inc()
        return result, None
    default_registry().counter("graph.captures").inc()
    return result, program
