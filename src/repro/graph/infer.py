"""Kernel-level capture of a forward-only (inference) pass.

Training capture hooks ``Function.apply``, but under ``no_grad`` the
free functions (``conv2d``, ``max_pool2d``) skip ``apply`` entirely and
call fused ``*_infer`` kernels directly -- so serving capture records
one level lower, at the backend dispatch seam
(:func:`repro.backend.registry.set_kernel_trace`).  Each top-level
kernel call becomes one instruction; nested kernel calls are the outer
kernel's own business and are re-run by it on replay.

Argument resolution is conservative:

* the feed array and every prior kernel output replay by reference;
* a C-contiguous same-size view of a known array replays as a
  ``reshape`` of it (that covers ``flatten`` between conv and linear);
* any other view of a dynamic value refuses to compile;
* everything else -- weights, index tables, python scalars -- freezes
  as a capture-time constant (serve models are immutable per artifact).

Because a wrongly frozen constant would *pass* a same-input check, the
capture verifies bitwise against eager on the capture input **and** on
a second, perturbed input before returning a program.  Serving
integration treats any :class:`~repro.errors.GraphError` as "stay
eager" -- responses must be exactly what eager inference returns.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro import backend as _backend
from repro.backend import registry as _registry
from repro.errors import GraphError


class _Call:
    __slots__ = ("kernel", "arg_refs", "kwarg_refs")

    def __init__(self, kernel: str, arg_refs, kwarg_refs) -> None:
        self.kernel = kernel
        self.arg_refs = tuple(arg_refs)
        self.kwarg_refs = dict(kwarg_refs)


class InferProgram:
    """Replayable kernel schedule for one model's forward at one shape."""

    def __init__(self, backend, feed_shape, feed_dtype,
                 calls: List[_Call], output_ref) -> None:
        self.backend = backend
        self.feed_shape = tuple(feed_shape)
        self.feed_dtype = np.dtype(feed_dtype)
        self._calls = calls
        self._output_ref = output_ref
        self.runs = 0

    @property
    def kernel_names(self) -> List[str]:
        return [c.kernel for c in self._calls]

    def _materialize(self, ref, feed, vals):
        kind = ref[0]
        if kind == "feed":
            return feed
        if kind == "out":
            _, call_idx, piece = ref
            out = vals[call_idx]
            return out[piece] if piece is not None else out
        if kind == "reshape":
            _, inner, shape = ref
            return self._materialize(inner, feed, vals).reshape(shape)
        return ref[1]  # ("const", value)

    def run(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        if x.shape != self.feed_shape or x.dtype != self.feed_dtype:
            raise GraphError(
                f"input is {x.shape}/{x.dtype}, program captured "
                f"{self.feed_shape}/{self.feed_dtype}"
            )
        vals: List[Any] = [None] * len(self._calls)
        for i, call in enumerate(self._calls):
            kernel = self.backend.kernel(call.kernel)
            args = [self._materialize(r, x, vals) for r in call.arg_refs]
            kwargs = {k: self._materialize(r, x, vals)
                      for k, r in call.kwarg_refs.items()}
            vals[i] = kernel(*args, **kwargs)
        out = self._materialize(self._output_ref, x, vals)
        self.runs += 1
        return out.copy()


def _build(calls: List[Tuple[str, tuple, dict, Any]],
           feed: np.ndarray, expected: np.ndarray,
           backend=None) -> InferProgram:
    known: Dict[int, Tuple] = {id(feed): ("feed",)}

    def resolve(value):
        if not isinstance(value, np.ndarray):
            return ("const", value)
        ref = known.get(id(value))
        if ref is not None:
            return ref
        base = value.base
        while base is not None:
            bref = known.get(id(base))
            if bref is not None:
                if (value.flags.c_contiguous and base.flags.c_contiguous
                        and value.size == base.size):
                    return ("reshape", bref, value.shape)
                raise GraphError(
                    "inference capture saw an unsupported view of a "
                    "dynamic value"
                )
            base = getattr(base, "base", None)
        return ("const", value)

    def register(value: np.ndarray, ref: Tuple) -> None:
        known[id(value)] = ref
        # a kernel output produced by a copying reshape is itself a view
        # of a hidden same-size owner numpy allocated internally; later
        # views of the output report *that* owner as their base, so it
        # must resolve to the same call or input-derived values would
        # silently freeze as constants
        base = value.base
        while (
            base is not None
            and value.flags.c_contiguous
            and getattr(base, "flags", None) is not None
            and base.flags.c_contiguous
            and base.size == value.size
        ):
            known.setdefault(id(base), ref)
            base = getattr(base, "base", None)

    compiled: List[_Call] = []
    for i, (kernel, args, kwargs, out) in enumerate(calls):
        compiled.append(
            _Call(
                kernel,
                [resolve(a) for a in args],
                {k: resolve(v) for k, v in kwargs.items()},
            )
        )
        if isinstance(out, tuple):
            for piece_idx, piece in enumerate(out):
                if isinstance(piece, np.ndarray):
                    register(piece, ("out", i, piece_idx))
        elif isinstance(out, np.ndarray):
            register(out, ("out", i, None))

    output_ref = resolve(expected)
    if output_ref[0] == "const":
        raise GraphError(
            "model output does not derive from any captured kernel call"
        )
    return InferProgram(
        backend if backend is not None else _backend.active(),
        feed.shape, feed.dtype, compiled, output_ref,
    )


def capture_infer(
    fn: Callable[[np.ndarray], np.ndarray],
    feed: np.ndarray,
    verify_second_input: bool = True,
) -> InferProgram:
    """Trace ``fn(feed)`` at the kernel level and compile a replay.

    ``fn`` takes and returns ndarrays (wrap model calls accordingly) and
    must be side-effect free -- it runs up to three times here: once
    traced, then against both verification inputs.  Raises
    :class:`GraphError` if a faithful program cannot be built; the
    returned program's :meth:`~InferProgram.run` output is bitwise
    identical to ``fn``'s for every input of the captured shape/dtype.
    """
    feed = np.asarray(feed)
    recorded: List[Tuple[str, tuple, dict, Any]] = []
    # bind the backend that actually executed the trace, sampled inside
    # the first kernel call -- ``fn`` may activate its own backend
    # context, in which case the ambient backend here is the wrong one
    trace_backend: List[Any] = []

    def trace(kernel_name, args, kwargs, out):
        if not trace_backend:
            trace_backend.append(_backend.active())
        recorded.append((kernel_name, args, kwargs, out))

    previous = _registry.set_kernel_trace(trace)
    try:
        expected = fn(feed)
    finally:
        _registry.set_kernel_trace(previous)
    expected = np.asarray(expected)
    if not recorded:
        raise GraphError("inference capture recorded no kernel calls")

    program = _build(recorded, feed, expected, backend=trace_backend[0])

    got = program.run(feed)
    if got.shape != expected.shape or not np.array_equal(got, expected, equal_nan=True):
        raise GraphError("inference replay does not match eager on the capture input")
    if verify_second_input:
        # a constant wrongly frozen from input-derived data would pass
        # the same-input check; a distinct input exposes it
        rng = np.random.default_rng(0)
        probe = np.asarray(
            rng.standard_normal(feed.shape), dtype=feed.dtype
        )
        if not np.array_equal(
            program.run(probe), np.asarray(fn(probe)), equal_nan=True
        ):
            raise GraphError(
                "inference replay diverges from eager on a probe input"
            )
    return program
