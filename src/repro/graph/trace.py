"""Capture session: record one training step's autograd tape as a trace.

A :class:`TraceSession` installs the two hooks exposed by
:mod:`repro.autograd.function` for the duration of a ``with`` block:

* the apply hook appends one :class:`ApplyRecord` per ``Function.apply``
  (including no-grad applies, so the trace sees the full dataflow);
* the backward hook appends one :class:`BackwardRecord` each time
  ``Tensor.backward`` is entered inside the block.

Records hold strong references to the live ``Function`` instances and
``Tensor`` objects -- the compiler re-uses those exact objects as the
replay schedule (it calls ``fn.forward``/``fn.backward`` directly), and
the references also guarantee ``id()`` stability while the session is
alive.

Layers whose eager behaviour cannot be frozen into a static schedule
(``Dropout`` draws a fresh mask every step as a capture-time constant)
call :func:`mark_dynamic`; the compiler refuses traces with dynamic
marks and the trainer stays eager.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.autograd import function as _function
from repro.autograd.tensor import Tensor
from repro.errors import GraphError

_current: Optional["TraceSession"] = None


@dataclass
class ApplyRecord:
    """One ``Function.apply``: ``output = fn.forward(*inputs)``."""

    fn: object
    inputs: Tuple[Tensor, ...]
    output: Tensor
    requires_grad: bool


@dataclass
class BackwardRecord:
    """One ``Tensor.backward`` call observed inside the capture window."""

    root: Tensor
    grad: np.ndarray
    retain_graph: bool


@dataclass
class TraceSession:
    """Recording of one step; install with ``with session:``."""

    applies: List[ApplyRecord] = field(default_factory=list)
    backwards: List[BackwardRecord] = field(default_factory=list)
    dynamic_reasons: List[str] = field(default_factory=list)

    def __enter__(self) -> "TraceSession":
        global _current
        if _current is not None:
            raise GraphError("graph capture sessions do not nest")
        _current = self
        self._prev_apply = _function.set_trace_hook(self._on_apply)
        self._prev_backward = _function.set_backward_trace(self._on_backward)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        global _current
        _function.set_trace_hook(self._prev_apply)
        _function.set_backward_trace(self._prev_backward)
        _current = None

    # ------------------------------------------------------------- hooks
    def _on_apply(self, fn, tensors, out, requires) -> None:
        self.applies.append(ApplyRecord(fn, tuple(tensors), out, bool(requires)))

    def _on_backward(self, root, grad, retain_graph) -> None:
        self.backwards.append(BackwardRecord(root, grad, bool(retain_graph)))

    def mark_dynamic(self, reason: str) -> None:
        if reason not in self.dynamic_reasons:
            self.dynamic_reasons.append(reason)

    @property
    def is_dynamic(self) -> bool:
        return bool(self.dynamic_reasons)


def active_session() -> Optional[TraceSession]:
    """The session currently recording, or ``None``."""
    return _current


def mark_dynamic(reason: str) -> None:
    """Flag the active capture (if any) as non-replayable.

    Called by layers with per-step behaviour a static schedule would
    freeze incorrectly; a no-op when no capture is running, so eager
    code pays one global read.
    """
    session = _current
    if session is not None:
        session.mark_dynamic(reason)
