"""Graph capture + fusing schedule compiler.

One warm-up training step, executed eagerly under a
:class:`~repro.graph.trace.TraceSession`, is lowered by
:func:`~repro.graph.compiler.compile_step` into a
:class:`~repro.graph.executor.CompiledStep`: a static schedule that
replays the identical kernels in the identical order -- bit-for-bit the
same losses, gradients and running statistics as eager execution --
while eliminating per-step Python dispatch, fusing elementwise chains
into single in-place closures, and reusing planner-allocated scratch.

Shape changes, dynamic layers, or any replay failure fall back to eager
execution; the compiled path is an optimization, never a semantic.

Forward-only (inference) passes capture one level lower, at the backend
kernel seam -- see :mod:`repro.graph.infer`, used by ``repro.serve``.
"""

from __future__ import annotations

from typing import Dict

from repro.graph.compiler import (
    FUSIBLE,
    capture_step,
    compile_step,
    fusion_supported,
)
from repro.graph.equivalence import check_chain, check_program
from repro.graph.executor import CompiledStep, FusedChain
from repro.graph.infer import InferProgram, capture_infer
from repro.graph.ir import FUNCTION_KERNELS, GraphIR, IRNode, IRSource, kernels_for
from repro.graph.trace import TraceSession, active_session, mark_dynamic

__all__ = [
    "FUSIBLE",
    "FUNCTION_KERNELS",
    "CompiledStep",
    "FusedChain",
    "GraphIR",
    "IRNode",
    "IRSource",
    "InferProgram",
    "TraceSession",
    "active_session",
    "capture_infer",
    "capture_step",
    "check_chain",
    "check_program",
    "compile_default",
    "compile_step",
    "fusion_supported",
    "kernels_for",
    "mark_dynamic",
    "set_compile_default",
    "stats",
]

# Process-wide default for Trainer(compile=None); the CLI's --compile
# flag flips it for a whole invocation.
_compile_default = False


def set_compile_default(enabled: bool) -> bool:
    """Set the process default for step compilation; returns the old value."""
    global _compile_default
    previous = _compile_default
    _compile_default = bool(enabled)
    return previous


def compile_default() -> bool:
    return _compile_default


_COUNTERS = (
    "graph.captures",
    "graph.capture_failures",
    "graph.replays",
    "graph.fallbacks",
)


def stats() -> Dict[str, float]:
    """Snapshot of the graph-compiler telemetry counters and gauges."""
    from repro.telemetry.metrics import default_registry

    registry = default_registry()
    out = {name: registry.counter(name).snapshot() for name in _COUNTERS}
    gauge = registry.gauge("graph.programs")
    programs = gauge.snapshot()
    if programs != programs:
        # an unset gauge snapshots as NaN; pin it to "no programs" so
        # full-registry snapshots (run manifests) stay JSON-roundtrippable
        programs = 0.0
        gauge.set(programs)
    out["graph.programs"] = programs
    return out
