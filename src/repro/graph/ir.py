"""Static graph IR: kernel-call nodes, tensor-dependency edges, JSON round-trip.

A captured training (or inference) step lowers to a :class:`GraphIR`:
every node records the op that produced a value, the backend kernels
that op dispatches (forward *and* backward), the value ids it consumed,
and the shape/dtype of the value it produced.  Edges are implied by the
value ids -- node ``n7`` consuming ``n3`` is the dependency edge.

The IR is a *description*, not an executable -- the executable schedule
is compiled separately (:mod:`repro.graph.compiler`).  Its jobs are:

* a stable JSON dump (``repro.graph`` debugging, the ``api_tour``
  walkthrough, and the round-trip lint in CI);
* the op-to-kernel mapping (:data:`FUNCTION_KERNELS`) that ties the
  autograd tape to the backend registry, so drift between the two --
  an op dispatching a kernel no backend registers -- fails fast.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Backend kernels each Function class may dispatch across its forward
#: and backward.  Ops not listed here run pure-python/raw-numpy bodies
#: (shape ops, the scipy-backed activations) and map to no kernels.
#: ``unbroadcast`` adds ``reduce_sum`` to every broadcasting binary op.
FUNCTION_KERNELS: Dict[str, Tuple[str, ...]] = {
    "Add": ("add", "reduce_sum"),
    "Sub": ("sub", "neg", "reduce_sum"),
    "Mul": ("mul", "reduce_sum"),
    "Div": ("div", "mul", "reduce_sum"),
    "Maximum": ("reduce_sum",),
    "MatMul": ("matmul",),
    "Neg": ("neg",),
    "ReLU": ("relu", "mul"),
    "Sum": ("reduce_sum", "broadcast_copy"),
    "Mean": ("reduce_mean", "broadcast_copy"),
    "LogSoftmax": ("log_softmax",),
    "SoftmaxCrossEntropy": ("log_softmax",),
    "Conv2dFn": ("conv2d_forward", "conv2d_backward", "im2col", "col2im"),
    "BatchNormTrainFn": (
        "batchnorm_stats", "batchnorm_train_forward", "batchnorm_train_backward",
    ),
    "MaxPool2dFn": ("maxpool2d_forward", "maxpool2d_backward"),
    "AvgPool2dFn": ("avgpool2d_forward", "avgpool2d_backward"),
}

#: Static constructor attributes worth carrying into the IR per op, so a
#: dumped graph is reproducible reading material (strides, axes, ...).
_META_ATTRS = (
    "stride", "padding", "kernel", "axis", "axes", "keepdims", "eps",
    "exponent", "shape", "index", "low", "high", "slope", "minimum",
)


@dataclass
class IRNode:
    """One op application: ``output = op(*inputs)`` with static metadata."""

    id: str
    op: str
    inputs: List[str]
    shape: Tuple[int, ...]
    dtype: str
    kernels: Tuple[str, ...] = ()
    requires_grad: bool = False
    meta: Dict[str, Any] = field(default_factory=dict)


@dataclass
class IRSource:
    """A graph input: a feed, a parameter leaf, or a captured constant."""

    id: str
    kind: str  # "feed" | "leaf" | "const"
    shape: Tuple[int, ...]
    dtype: str
    name: Optional[str] = None  # feed name when kind == "feed"


@dataclass
class GraphIR:
    """Nodes + sources of one captured step; edges are the value ids."""

    nodes: List[IRNode] = field(default_factory=list)
    sources: List[IRSource] = field(default_factory=list)
    outputs: Dict[str, str] = field(default_factory=dict)  # name -> value id
    backward_roots: List[str] = field(default_factory=list)

    def kernel_names(self) -> List[str]:
        """Every backend kernel any node of this graph may dispatch."""
        names = set()
        for node in self.nodes:
            names.update(node.kernels)
        return sorted(names)

    def ops(self) -> List[str]:
        return sorted({node.op for node in self.nodes})

    # ------------------------------------------------------------ serde
    def to_payload(self) -> Dict[str, Any]:
        return {
            "nodes": [
                {
                    "id": n.id,
                    "op": n.op,
                    "inputs": list(n.inputs),
                    "shape": list(n.shape),
                    "dtype": n.dtype,
                    "kernels": list(n.kernels),
                    "requires_grad": n.requires_grad,
                    "meta": n.meta,
                }
                for n in self.nodes
            ],
            "sources": [
                {
                    "id": s.id,
                    "kind": s.kind,
                    "shape": list(s.shape),
                    "dtype": s.dtype,
                    "name": s.name,
                }
                for s in self.sources
            ],
            "outputs": dict(self.outputs),
            "backward_roots": list(self.backward_roots),
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_payload(), indent=indent, sort_keys=True)

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "GraphIR":
        nodes = [
            IRNode(
                id=n["id"],
                op=n["op"],
                inputs=list(n["inputs"]),
                shape=tuple(n["shape"]),
                dtype=n["dtype"],
                kernels=tuple(n["kernels"]),
                requires_grad=bool(n.get("requires_grad", False)),
                meta=dict(n.get("meta", {})),
            )
            for n in payload.get("nodes", [])
        ]
        sources = [
            IRSource(
                id=s["id"],
                kind=s["kind"],
                shape=tuple(s["shape"]),
                dtype=s["dtype"],
                name=s.get("name"),
            )
            for s in payload.get("sources", [])
        ]
        return cls(
            nodes=nodes,
            sources=sources,
            outputs=dict(payload.get("outputs", {})),
            backward_roots=list(payload.get("backward_roots", [])),
        )

    @classmethod
    def from_json(cls, text: str) -> "GraphIR":
        return cls.from_payload(json.loads(text))


def node_meta(fn: Any) -> Dict[str, Any]:
    """JSON-safe static metadata scraped off a Function instance."""
    meta: Dict[str, Any] = {}
    for attr in _META_ATTRS:
        value = getattr(fn, attr, None)
        if value is None:
            continue
        if isinstance(value, (bool, int, float, str)):
            meta[attr] = value
        elif isinstance(value, (tuple, list)) and all(
            isinstance(v, (bool, int, float, str)) for v in value
        ):
            meta[attr] = list(value)
    return meta


def kernels_for(op_name: str) -> Tuple[str, ...]:
    return FUNCTION_KERNELS.get(op_name, ())
