"""Fused-subgraph equivalence harness.

Every fused chain in a compiled program must be **bitwise** equal to
the eager composition it replaced -- not allclose; fusion is only legal
because each emitter performs the identical IEEE operations.  This
module re-executes each chain two ways on synthetic inputs of the
captured shapes:

* the *fused* path: the chain's own emitters, writing into fresh
  scratch (the program's planned buffers are left untouched, and each
  node's saved state is snapshotted and restored around the check);
* the *oracle* path: the reference backend's formula for each op,
  applied one op at a time exactly as eager execution would.

Any mismatch raises :class:`~repro.errors.GraphError` naming the op.
``tests/graph`` runs this over every chain of every captured program;
it is also callable directly on a live program between steps.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from repro.errors import GraphError
from repro.graph.executor import CompiledStep, FusedChain

#: Eager-equivalent formula per fusible op, written with the same
#: numpy expressions the reference kernels / Function.forward bodies
#: use (see repro.backend.reference and repro.autograd.functional).
REF_FORMULA = {
    "Add": lambda a, b: a + b,
    "Sub": lambda a, b: a - b,
    "Mul": lambda a, b: a * b,
    "Div": lambda a, b: a / b,
    "Neg": lambda a: -a,
    "Exp": lambda a: np.exp(a),
    "Sqrt": lambda a: np.sqrt(a),
    "Tanh": lambda a: np.tanh(a),
    "Sigmoid": lambda a: 1.0 / (1.0 + np.exp(-a)),
    "ReLU": lambda a: a * (a > 0),
}


def check_chain(chain: FusedChain, rng: np.random.Generator) -> int:
    """Verify one fused chain against the reference oracle.

    Returns the number of ops checked; raises :class:`GraphError` on the
    first bitwise mismatch.
    """
    vals: Dict[int, np.ndarray] = {}
    for slot, shape, dtype in chain.external_inputs():
        # strictly positive inputs keep Div/Sqrt inside their domains so
        # exact comparison never trips over NaN semantics
        vals[slot] = np.asarray(
            rng.uniform(0.25, 1.0, size=shape), dtype=dtype
        )
    saved_state = [(st.fn, st.fn.saved) for st in chain.steps]
    fused: Dict[int, np.ndarray] = dict(vals)
    oracle: Dict[int, np.ndarray] = dict(vals)
    try:
        for st in chain.steps:
            dest = np.empty(st.out_shape, dtype=st.out_dtype)
            fused[st.out_slot] = st.runner(
                st.fn, [fused[s] for s in st.in_slots], dest
            )
            oracle[st.out_slot] = REF_FORMULA[st.op](
                *[oracle[s] for s in st.in_slots]
            )
            if not np.array_equal(fused[st.out_slot], oracle[st.out_slot]):
                raise GraphError(
                    f"fused {st.op} diverges bitwise from the reference oracle"
                )
    finally:
        for fn, saved in saved_state:
            fn.saved = saved
    return len(chain.steps)


def check_program(program: CompiledStep, seed: int = 0) -> Dict[str, Any]:
    """Run the oracle check over every fused chain of a program.

    Returns a summary dict; raises :class:`GraphError` on any mismatch.
    """
    rng = np.random.default_rng(seed)
    chains = program.fused_chains
    ops = 0
    for chain in chains:
        ops += check_chain(chain, rng)
    return {"chains": len(chains), "ops": ops}
