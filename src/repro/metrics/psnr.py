"""Peak signal-to-noise ratio, the usual companion to SSIM."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

_MAX_PIXEL = 255.0


def psnr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """PSNR in dB between two images; ``inf`` for identical images."""
    original = np.asarray(original, dtype=np.float64)
    reconstructed = np.asarray(reconstructed, dtype=np.float64)
    if original.shape != reconstructed.shape:
        raise ShapeError(
            f"image shapes differ: {original.shape} vs {reconstructed.shape}"
        )
    mse = float(((original - reconstructed) ** 2).mean())
    if mse == 0.0:
        return float("inf")
    return float(20.0 * np.log10(_MAX_PIXEL) - 10.0 * np.log10(mse))


def batch_psnr(originals: np.ndarray, reconstructions: np.ndarray) -> np.ndarray:
    """Per-image PSNR over matched batches (n, H, W, C)."""
    originals = np.asarray(originals)
    reconstructions = np.asarray(reconstructions)
    if originals.shape != reconstructions.shape:
        raise ShapeError(
            f"batch shapes differ: {originals.shape} vs {reconstructions.shape}"
        )
    return np.array([psnr(o, r) for o, r in zip(originals, reconstructions)])
