"""Distribution distances for the Fig. 2 / Fig. 3 shape claims.

The paper argues visually that (a) the attack reshapes the weight
distribution towards the target pixel distribution and (b) Algorithm 1
preserves that shape while weighted-entropy quantization destroys it.
These two distances quantify those claims so the benchmarks can assert
them numerically.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.errors import ShapeError


def histogram_overlap(a: np.ndarray, b: np.ndarray, bins: int = 64) -> float:
    """Overlap coefficient of two samples' normalised histograms.

    Both samples are min-max mapped to [0, 1] first (the attack encodes
    an affine image of the pixels, so shape comparison must be
    scale-free).  1.0 means identical shapes, 0.0 means disjoint.
    """
    def _normalised_hist(sample: np.ndarray) -> np.ndarray:
        sample = np.asarray(sample, dtype=np.float64).reshape(-1)
        if sample.size == 0:
            raise ShapeError("cannot histogram an empty sample")
        low, high = sample.min(), sample.max()
        if high - low < 1e-12:
            scaled = np.zeros_like(sample)
        else:
            scaled = (sample - low) / (high - low)
        counts, _ = np.histogram(scaled, bins=bins, range=(0.0, 1.0))
        return counts / counts.sum()

    hist_a = _normalised_hist(a)
    hist_b = _normalised_hist(b)
    return float(np.minimum(hist_a, hist_b).sum())


def ks_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Two-sample Kolmogorov-Smirnov statistic on min-max scaled samples."""
    def _scale(sample: np.ndarray) -> np.ndarray:
        sample = np.asarray(sample, dtype=np.float64).reshape(-1)
        low, high = sample.min(), sample.max()
        if high - low < 1e-12:
            return np.zeros_like(sample)
        return (sample - low) / (high - low)

    statistic, _ = stats.ks_2samp(_scale(a), _scale(b))
    return float(statistic)
