"""Classification accuracy (attack evasiveness)."""

from __future__ import annotations

import numpy as np

from repro.autograd import no_grad
from repro.autograd.tensor import Tensor
from repro.nn.module import Module


def predict_classes(model: Module, inputs: np.ndarray, batch_size: int = 64) -> np.ndarray:
    """Argmax class predictions over an NCHW float batch."""
    was_training = model.training
    model.eval()
    predictions = []
    with no_grad():
        for start in range(0, len(inputs), batch_size):
            logits = model(Tensor(inputs[start:start + batch_size]))
            predictions.append(logits.data.argmax(axis=1))
    if was_training:
        model.train()
    return np.concatenate(predictions)


def evaluate_accuracy(
    model: Module, inputs: np.ndarray, labels: np.ndarray, batch_size: int = 64
) -> float:
    """Top-1 accuracy of a model on a labelled NCHW batch."""
    predictions = predict_classes(model, inputs, batch_size)
    return float((predictions == np.asarray(labels)).mean())
