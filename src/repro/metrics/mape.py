"""Mean absolute pixel error (paper Sec. V-A).

    MAPE = (1/u) * sum_i |x_i - x'_i|

over the ``u`` pixels of an image, with pixel values in [0, 255].
Lower is better; the paper calls an image "badly encoded" at MAPE > 20.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def mape(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """MAPE between one original and one reconstructed image."""
    original = np.asarray(original, dtype=np.float64)
    reconstructed = np.asarray(reconstructed, dtype=np.float64)
    if original.shape != reconstructed.shape:
        raise ShapeError(
            f"image shapes differ: {original.shape} vs {reconstructed.shape}"
        )
    return float(np.abs(original - reconstructed).mean())


def batch_mape(originals: np.ndarray, reconstructions: np.ndarray) -> np.ndarray:
    """Per-image MAPE over matched batches (n, H, W, C)."""
    originals = np.asarray(originals, dtype=np.float64)
    reconstructions = np.asarray(reconstructions, dtype=np.float64)
    if originals.shape != reconstructions.shape:
        raise ShapeError(
            f"batch shapes differ: {originals.shape} vs {reconstructions.shape}"
        )
    return np.abs(originals - reconstructions).reshape(len(originals), -1).mean(axis=1)


def count_below_threshold(
    originals: np.ndarray, reconstructions: np.ndarray, threshold: float = 20.0
) -> int:
    """How many reconstructions have MAPE < threshold (Table IV metric)."""
    return int((batch_mape(originals, reconstructions) < threshold).sum())
