"""The paper's "recognizable images by the model itself" metric.

A stolen image counts as *recognizable* when the released model, fed the
reconstruction, predicts the original image's class (Sec. II-C reports
"the number of recognizable images by the model itself").  This measures
attack effectiveness end-to-end: the reconstruction must retain enough
class-discriminative content to survive the model's own decision.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.transforms import images_to_batch, normalize_batch
from repro.metrics.accuracy import predict_classes
from repro.nn.module import Module


def recognizable_mask(
    model: Module,
    reconstructions: np.ndarray,
    labels: np.ndarray,
    mean: np.ndarray = None,
    std: np.ndarray = None,
) -> np.ndarray:
    """Boolean mask: model(reconstruction) == original label.

    Args:
        model: the released classifier.
        reconstructions: uint8 images (n, H, W, C).
        labels: the original labels of the encoded images.
        mean / std: the normalization the model was trained with; when
            given, reconstructions go through the same pipeline.
    """
    batch = images_to_batch(reconstructions)
    if mean is not None and std is not None:
        batch, _, _ = normalize_batch(batch, mean, std)
    predictions = predict_classes(model, batch)
    return predictions == np.asarray(labels)


def recognizable_count(
    model: Module,
    reconstructions: np.ndarray,
    labels: np.ndarray,
    mean: np.ndarray = None,
    std: np.ndarray = None,
) -> int:
    """Number of recognizable reconstructions (Table I / III metric)."""
    return int(recognizable_mask(model, reconstructions, labels, mean, std).sum())
