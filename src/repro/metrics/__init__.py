"""Evaluation metrics used by the paper.

* MAPE -- mean absolute pixel error (reconstruction quality).
* SSIM -- structural similarity (Wang et al. 2004; face texture).
* accuracy -- attack evasiveness.
* recognizability -- "recognizable images by the model itself".
* distribution distances -- histogram overlap / KS statistic for the
  Fig. 2 / Fig. 3 distribution-shape claims.
"""

from repro.metrics.mape import batch_mape, count_below_threshold, mape
from repro.metrics.ssim import batch_ssim, count_above_threshold, ssim
from repro.metrics.psnr import batch_psnr, psnr
from repro.metrics.accuracy import evaluate_accuracy, predict_classes
from repro.metrics.recognizability import recognizable_count, recognizable_mask
from repro.metrics.distribution import histogram_overlap, ks_distance

__all__ = [
    "mape", "batch_mape", "count_below_threshold",
    "ssim", "batch_ssim", "count_above_threshold",
    "psnr", "batch_psnr",
    "evaluate_accuracy", "predict_classes",
    "recognizable_count", "recognizable_mask",
    "histogram_overlap", "ks_distance",
]
