"""Structural similarity index (Wang et al., IEEE TIP 2004).

Gaussian-windowed SSIM with the standard constants (K1=0.01, K2=0.03,
sigma=1.5, dynamic range 255).  The paper uses SSIM to quantify how much
face texture survives extraction (Table IV, Fig. 5); SSIM > 0.5 counts
as a high-quality reconstruction.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import gaussian_filter

from repro.errors import ShapeError

_K1, _K2 = 0.01, 0.03
_SIGMA = 1.5
_DYNAMIC_RANGE = 255.0


def _ssim_single_channel(x: np.ndarray, y: np.ndarray) -> float:
    c1 = (_K1 * _DYNAMIC_RANGE) ** 2
    c2 = (_K2 * _DYNAMIC_RANGE) ** 2
    mu_x = gaussian_filter(x, _SIGMA)
    mu_y = gaussian_filter(y, _SIGMA)
    mu_x_sq = mu_x * mu_x
    mu_y_sq = mu_y * mu_y
    mu_xy = mu_x * mu_y
    sigma_x = gaussian_filter(x * x, _SIGMA) - mu_x_sq
    sigma_y = gaussian_filter(y * y, _SIGMA) - mu_y_sq
    sigma_xy = gaussian_filter(x * y, _SIGMA) - mu_xy
    numerator = (2 * mu_xy + c1) * (2 * sigma_xy + c2)
    denominator = (mu_x_sq + mu_y_sq + c1) * (sigma_x + sigma_y + c2)
    return float((numerator / denominator).mean())


def ssim(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """SSIM between two images (H, W) or (H, W, C); channel-averaged."""
    x = np.asarray(original, dtype=np.float64)
    y = np.asarray(reconstructed, dtype=np.float64)
    if x.shape != y.shape:
        raise ShapeError(f"image shapes differ: {x.shape} vs {y.shape}")
    if x.ndim == 2:
        return _ssim_single_channel(x, y)
    if x.ndim == 3:
        channels = x.shape[2]
        return float(np.mean([
            _ssim_single_channel(x[..., c], y[..., c]) for c in range(channels)
        ]))
    raise ShapeError(f"ssim expects 2-D or 3-D images, got shape {x.shape}")


def batch_ssim(originals: np.ndarray, reconstructions: np.ndarray) -> np.ndarray:
    """Per-image SSIM over matched batches (n, H, W, C)."""
    originals = np.asarray(originals)
    reconstructions = np.asarray(reconstructions)
    if originals.shape != reconstructions.shape:
        raise ShapeError(
            f"batch shapes differ: {originals.shape} vs {reconstructions.shape}"
        )
    return np.array([
        ssim(orig, recon) for orig, recon in zip(originals, reconstructions)
    ])


def count_above_threshold(
    originals: np.ndarray, reconstructions: np.ndarray, threshold: float = 0.5
) -> int:
    """How many reconstructions reach SSIM > threshold (Table IV metric)."""
    return int((batch_ssim(originals, reconstructions) > threshold).sum())
