"""Quantizer interface and the shared codebook/assignment representation.

A quantized model is represented explicitly: per parameter tensor, a
small codebook of representative values plus an integer assignment per
weight.  This is the representation hardware deployments actually ship
(deep compression's "shared weights"), and it is what cluster-shared
fine-tuning and the bit-width accounting operate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import QuantizationError
from repro.models.introspect import encodable_parameters
from repro.nn.module import Module


@dataclass
class QuantizationResult:
    """Codebooks and assignments for a set of named parameter tensors."""

    levels: int
    codebooks: Dict[str, np.ndarray] = field(default_factory=dict)
    assignments: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def bits(self) -> int:
        from repro.quantization.bitwidth import bits_for_levels
        return bits_for_levels(self.levels)

    def dequantized(self, name: str) -> np.ndarray:
        """Reconstruct the full-precision-shaped weights of one tensor."""
        return self.codebooks[name][self.assignments[name]]

    def unique_values(self, name: str) -> np.ndarray:
        """Distinct weight values actually used by one tensor."""
        return np.unique(self.dequantized(name))

    def validate(self) -> None:
        for name, assignment in self.assignments.items():
            codebook = self.codebooks.get(name)
            if codebook is None:
                raise QuantizationError(f"assignment without codebook for {name!r}")
            if codebook.size > self.levels:
                raise QuantizationError(
                    f"{name!r}: codebook has {codebook.size} entries, limit {self.levels}"
                )
            if assignment.size and (assignment.min() < 0 or assignment.max() >= codebook.size):
                raise QuantizationError(f"{name!r}: assignment indices out of range")


class Quantizer:
    """Base quantizer: subclasses implement :meth:`quantize_vector`.

    Args:
        levels: number of quantization clusters ``l`` (bit width is
            ``log2(l)``).
        scope: ``"global"`` builds one codebook over the concatenation
            of all selected tensors (the paper's Algorithm 1 operates on
            the total weight list); ``"per_layer"`` builds one per tensor
            (Park et al.'s layer-wise practice).
    """

    def __init__(self, levels: int, scope: str = "global") -> None:
        if levels < 2:
            raise QuantizationError(f"need at least 2 levels, got {levels}")
        if scope not in ("global", "per_layer"):
            raise QuantizationError(f"scope must be 'global' or 'per_layer', got {scope!r}")
        self.levels = int(levels)
        self.scope = scope

    # ------------------------------------------------------------ABSTRACT
    def quantize_vector(self, weights: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Quantize one flat weight vector.

        Returns:
            (codebook, assignment): representative values (<= levels)
            and per-weight integer cluster indices.
        """
        raise NotImplementedError

    # -------------------------------------------------------------- MODEL
    def quantize_model(
        self, model: Module, names: Optional[Sequence[str]] = None
    ) -> QuantizationResult:
        """Quantize a model's encodable weights (biases/BN stay float).

        Leaving biases and BatchNorm affine parameters in full precision
        is standard deployment practice and is assumed by the paper's
        accuracy numbers.
        """
        params = encodable_parameters(model)
        if names is not None:
            wanted = set(names)
            params = [(n, p) for n, p in params if n in wanted]
        if not params:
            raise QuantizationError("no parameters selected for quantization")
        result = QuantizationResult(levels=self.levels)
        if self.scope == "per_layer":
            for name, param in params:
                codebook, assignment = self.quantize_vector(param.data.reshape(-1))
                result.codebooks[name] = codebook
                result.assignments[name] = assignment.reshape(param.shape)
        else:
            flat = np.concatenate([p.data.reshape(-1) for _, p in params])
            codebook, assignment = self.quantize_vector(flat)
            offset = 0
            for name, param in params:
                chunk = assignment[offset:offset + param.size]
                result.codebooks[name] = codebook
                result.assignments[name] = chunk.reshape(param.shape)
                offset += param.size
        result.validate()
        return result


def apply_quantization(model: Module, result: QuantizationResult) -> None:
    """Overwrite the model's weights with their quantized values."""
    params = dict(encodable_parameters(model))
    for name in result.assignments:
        if name not in params:
            raise QuantizationError(f"model has no encodable parameter {name!r}")
        params[name].data = result.dequantized(name).astype(params[name].data.dtype)


def assign_to_boundaries(
    weights: np.ndarray, boundaries: np.ndarray
) -> np.ndarray:
    """Cluster index of each weight given ascending boundary values v_0..v_l.

    Cluster ``k`` holds weights with ``v_k <= w < v_{k+1}`` (Algorithm 1
    line 15's ``f_q``); values below ``v_0`` clamp to cluster 0.

    The search itself is a backend kernel (``assign_clusters``) so the
    quantizer's assignment loop rides the active backend.
    """
    from repro import backend as _backend
    return _backend.active().assign_clusters(weights, boundaries)
