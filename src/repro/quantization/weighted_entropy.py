"""Weighted-entropy-based quantization (Park et al., CVPR 2017).

Park et al. assign each weight an *importance* (approximately the
squared weight value: large-magnitude weights matter more to the
output), then choose cluster boundaries over the sorted weights that
maximise the weighted entropy

    S = - sum_k P_k log P_k,   P_k = (importance mass of cluster k) / total.

Entropy is maximised when every cluster carries equal importance mass,
so the quantizer partitions the sorted weight list at equal cumulative
importance and represents each cluster by its importance-weighted mean.
This reproduces the behaviour the DAC'20 paper exploits: clusters
concentrate where |w| is moderate-to-large, which *reshapes* a
correlation-attacked weight distribution (Fig. 3a) and destroys the
embedded data at low bit widths (Table I).  The boundary-search
simplification is documented in DESIGN.md.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.quantization.base import Quantizer, assign_to_boundaries
from repro.telemetry.trace import timed_stage


def weight_importance(weights: np.ndarray) -> np.ndarray:
    """Park et al.'s importance measure: the squared weight value."""
    return weights.astype(np.float64) ** 2


def weighted_entropy(importance_mass: np.ndarray) -> float:
    """Weighted entropy of a cluster importance-mass vector."""
    total = importance_mass.sum()
    if total <= 0:
        return 0.0
    probabilities = importance_mass[importance_mass > 0] / total
    return float(-(probabilities * np.log(probabilities)).sum())


class WeightedEntropyQuantizer(Quantizer):
    """Equal-importance-mass clustering over the sorted weight list."""

    def quantize_vector(self, weights: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        with timed_stage("quant.weighted_entropy.cluster", weights=weights.size):
            order = np.argsort(weights, kind="stable")
            sorted_weights = weights[order]
            importance = weight_importance(sorted_weights)
            cumulative = np.cumsum(importance)
            total = cumulative[-1]
            if total <= 0:  # all-zero weights
                return np.array([0.0]), np.zeros(weights.size, dtype=np.int64)

            # Boundary indices at equal cumulative-importance quantiles.
            targets = total * np.arange(1, self.levels) / self.levels
            cut_indices = np.searchsorted(cumulative, targets, side="left") + 1
            boundaries_idx = np.concatenate(([0], cut_indices, [weights.size]))
            boundaries_idx = np.maximum.accumulate(boundaries_idx)  # monotone

            codebook = np.empty(self.levels)
            boundary_values = np.empty(self.levels + 1)
            previous = sorted_weights[0]
            for k in range(self.levels):
                start, stop = boundaries_idx[k], boundaries_idx[k + 1]
                if stop > start:
                    cluster = sorted_weights[start:stop]
                    mass = importance[start:stop]
                    mass_sum = mass.sum()
                    if mass_sum > 0:
                        codebook[k] = float((cluster * mass).sum() / mass_sum)
                    else:  # a cluster of exact zeros
                        codebook[k] = float(cluster.mean())
                    boundary_values[k] = cluster[0]
                    previous = codebook[k]
                else:  # empty cluster: collapse onto the previous representative
                    codebook[k] = previous
                    boundary_values[k] = sorted_weights[min(start, weights.size - 1)]
            boundary_values[0] = -np.inf
            boundary_values[-1] = np.inf
            # Boundaries must be non-decreasing for searchsorted assignment.
            boundary_values[1:-1] = np.maximum.accumulate(boundary_values[1:-1])

        with timed_stage("quant.weighted_entropy.assign", weights=weights.size):
            assignment = assign_to_boundaries(weights, boundary_values)
        return codebook, assignment
