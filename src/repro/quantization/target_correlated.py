"""Target-correlated (image-based) weight quantization -- Algorithm 1.

The adversary's quantizer.  Instead of placing clusters where a benign
objective (range coverage, weighted entropy) dictates, cluster sizes are
dictated by the *pixel-value histogram of the correlation target set*:

    line 3:  H  <- hist(T, l)                    (l-bin pixel histogram)
    lines 4-7:  b_i <- b_{i-1} + H[i-1] * ell     (boundary indices)
    line 8:  S  <- sort(weights)
    lines 9-13: r_i = mean(S[b_i : b_{i+1}]),  v_i = S[b_i],  v_l = inf
    lines 14-16: q_j = f_q(w_j)  -- assign by boundary values, emit r_k.

Because the attacked weight distribution already mirrors the target
pixel distribution (Fig. 2), quantile-matching the clusters to the pixel
histogram preserves that shape (Fig. 3b), keeping both accuracy and the
embedded data intact.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.attacks.secret import SecretPayload
from repro.errors import QuantizationError
from repro.quantization.base import Quantizer, assign_to_boundaries
from repro.telemetry.trace import timed_stage


def pixel_histogram(target_images: np.ndarray, levels: int) -> np.ndarray:
    """Normalised l-bin histogram of the target set's pixel values (line 3)."""
    pixels = np.asarray(target_images, dtype=np.float64).reshape(-1)
    if pixels.size == 0:
        raise QuantizationError("target image set is empty")
    counts, _ = np.histogram(pixels, bins=levels, range=(0.0, 255.0))
    return counts / counts.sum()


class TargetCorrelatedQuantizer(Quantizer):
    """Algorithm 1: image-histogram-guided weight quantization.

    Args:
        target_images: the correlation target set ``T`` (or a payload).
        levels: quantization level count ``l``.
        scope: codebook scope (Algorithm 1 sorts the total weight list,
            i.e. ``"global"``).
        flip: reverse the histogram.  Eq. 1 maximises the *absolute*
            correlation, so training may converge to a negative
            weight-pixel correlation; the weight distribution then
            mirrors the flipped pixel distribution.  The malicious
            training code has both weights and targets at quantization
            time, so it detects the sign and sets this flag (see
            :func:`detect_flip`).
    """

    def __init__(self, target_images: np.ndarray, levels: int, scope: str = "global",
                 flip: bool = False) -> None:
        super().__init__(levels, scope)
        if isinstance(target_images, SecretPayload):
            target_images = target_images.images
        histogram = pixel_histogram(target_images, levels)
        self.flip = bool(flip)
        self.histogram = histogram[::-1].copy() if self.flip else histogram

    def quantize_vector(self, weights: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        count = weights.size
        if count < self.levels:
            raise QuantizationError(
                f"cannot form {self.levels} clusters from {count} weights"
            )
        with timed_stage("quant.target_correlated.cluster", weights=count):
            # Lines 4-7: cumulative histogram mass -> boundary indices into
            # the sorted weight list.
            boundaries_idx = np.concatenate(
                ([0], np.round(np.cumsum(self.histogram) * count).astype(np.int64))
            )
            boundaries_idx[-1] = count  # guard against rounding drift
            boundaries_idx = np.maximum.accumulate(boundaries_idx)

            sorted_weights = np.sort(weights)  # line 8

            codebook = np.empty(self.levels)
            boundary_values = np.empty(self.levels + 1)
            previous = float(sorted_weights[0])
            for k in range(self.levels):  # lines 9-12
                start, stop = boundaries_idx[k], boundaries_idx[k + 1]
                if stop > start:
                    codebook[k] = float(sorted_weights[start:stop].mean())
                    boundary_values[k] = sorted_weights[start]
                    previous = codebook[k]
                else:  # empty histogram bin -> empty cluster
                    codebook[k] = previous
                    boundary_values[k] = sorted_weights[min(start, count - 1)]
            boundary_values[0] = -np.inf
            boundary_values[-1] = np.inf  # line 13
            boundary_values[1:-1] = np.maximum.accumulate(boundary_values[1:-1])

        with timed_stage("quant.target_correlated.assign", weights=count):
            assignment = assign_to_boundaries(weights, boundary_values)  # lines 14-16
        return codebook, assignment


def detect_flip(weights: np.ndarray, secret: np.ndarray) -> bool:
    """True when the established weight-secret correlation is negative.

    Computed over the first ``min(len(weights), len(secret))`` aligned
    entries -- the same alignment the encoder used.
    """
    weights = np.asarray(weights, dtype=np.float64).reshape(-1)
    secret = np.asarray(secret, dtype=np.float64).reshape(-1)
    length = min(weights.size, secret.size)
    if length < 2:
        return False
    w = weights[:length] - weights[:length].mean()
    s = secret[:length] - secret[:length].mean()
    denom = np.sqrt((w * w).sum()) * np.sqrt((s * s).sum())
    if denom < 1e-12:
        return False
    return float((w * s).sum() / denom) < 0.0
