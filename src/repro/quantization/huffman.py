"""Huffman coding of quantization assignments (deep compression stage 3).

Deep compression follows quantization with Huffman coding of the
cluster indices; the target-correlated quantizer's *skewed* cluster
occupancies (they follow the pixel histogram) compress better than a
uniform occupancy, which slightly offsets the attack's overhead.  This
module builds an optimal prefix code over the assignment frequencies
and reports the achieved bits/weight next to the entropy bound.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import QuantizationError
from repro.quantization.base import QuantizationResult


@dataclass(frozen=True)
class HuffmanCode:
    """A prefix code over cluster indices."""

    codes: Dict[int, str]
    counts: Dict[int, int]

    @property
    def total_symbols(self) -> int:
        return sum(self.counts.values())

    def encoded_bits(self) -> int:
        return sum(len(self.codes[symbol]) * count
                   for symbol, count in self.counts.items())

    def average_bits_per_symbol(self) -> float:
        total = self.total_symbols
        return self.encoded_bits() / total if total else 0.0

    def entropy_bits_per_symbol(self) -> float:
        total = self.total_symbols
        if total == 0:
            return 0.0
        probabilities = np.array([c / total for c in self.counts.values()])
        probabilities = probabilities[probabilities > 0]
        return float(-(probabilities * np.log2(probabilities)).sum())


def build_huffman(counts: Dict[int, int]) -> HuffmanCode:
    """Build an optimal prefix code from symbol counts."""
    symbols = {s: c for s, c in counts.items() if c > 0}
    if not symbols:
        raise QuantizationError("cannot build a Huffman code over zero symbols")
    if len(symbols) == 1:
        only = next(iter(symbols))
        return HuffmanCode(codes={only: "0"}, counts=dict(symbols))

    # Heap of (count, tiebreak, tree); trees are (symbol,) or (left, right).
    heap: List[Tuple[int, int, object]] = []
    for tiebreak, (symbol, count) in enumerate(sorted(symbols.items())):
        heapq.heappush(heap, (count, tiebreak, symbol))
    next_tiebreak = len(symbols)
    while len(heap) > 1:
        count_a, _, tree_a = heapq.heappop(heap)
        count_b, _, tree_b = heapq.heappop(heap)
        heapq.heappush(heap, (count_a + count_b, next_tiebreak, (tree_a, tree_b)))
        next_tiebreak += 1

    codes: Dict[int, str] = {}

    def _walk(tree, prefix: str) -> None:
        if isinstance(tree, tuple):
            _walk(tree[0], prefix + "0")
            _walk(tree[1], prefix + "1")
        else:
            codes[tree] = prefix

    _walk(heap[0][2], "")
    return HuffmanCode(codes=codes, counts=dict(symbols))


def huffman_for_result(result: QuantizationResult, name: str) -> HuffmanCode:
    """Huffman code over one tensor's cluster assignments."""
    assignment = result.assignments[name].reshape(-1)
    values, counts = np.unique(assignment, return_counts=True)
    return build_huffman({int(v): int(c) for v, c in zip(values, counts)})


def huffman_model_bytes(result: QuantizationResult) -> int:
    """Total storage with Huffman-coded assignments + float32 codebooks."""
    total_bits = 0
    seen_codebooks = set()
    for name in result.assignments:
        total_bits += huffman_for_result(result, name).encoded_bits()
        codebook = result.codebooks[name]
        if id(codebook) not in seen_codebooks:
            seen_codebooks.add(id(codebook))
            total_bits += codebook.size * 32
    return (total_bits + 7) // 8
