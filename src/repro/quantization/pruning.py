"""Magnitude pruning -- the other compression axis the paper names.

The paper's introduction lists "quantization and pruning" as the
hardware-oriented compressions a malicious provider's training code
would plausibly include; its evaluation focuses on quantization.  This
module provides the pruning side so the interaction between pruning and
the correlation attack can be studied (see
``benchmarks/test_ext_pruning_defense.py``): magnitude pruning removes
the smallest-|w| weights, which for a pixel-correlated weight vector
are exactly the *dark-pixel* positions -- a qualitatively different
failure mode from quantization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.errors import QuantizationError
from repro.models.introspect import encodable_parameters
from repro.nn.module import Module


@dataclass
class PruningResult:
    """Binary keep-masks for a set of named parameter tensors."""

    sparsity: float
    masks: Dict[str, np.ndarray] = field(default_factory=dict)

    def kept_fraction(self, name: str) -> float:
        mask = self.masks[name]
        return float(mask.mean())

    def total_kept_fraction(self) -> float:
        kept = sum(int(m.sum()) for m in self.masks.values())
        total = sum(m.size for m in self.masks.values())
        return kept / total if total else 0.0


class MagnitudePruner:
    """Prune the smallest-magnitude weights.

    Args:
        sparsity: fraction of weights to remove, in [0, 1).
        scope: "global" ranks all selected weights together (deep
            compression's practice); "per_layer" ranks within each tensor.
    """

    def __init__(self, sparsity: float, scope: str = "global") -> None:
        if not 0.0 <= sparsity < 1.0:
            raise QuantizationError(f"sparsity must be in [0, 1), got {sparsity}")
        if scope not in ("global", "per_layer"):
            raise QuantizationError(f"scope must be 'global' or 'per_layer', got {scope!r}")
        self.sparsity = float(sparsity)
        self.scope = scope

    def _mask_for(self, weights: np.ndarray, threshold: Optional[float] = None) -> np.ndarray:
        if threshold is None:
            if self.sparsity == 0.0:
                return np.ones_like(weights, dtype=bool)
            threshold = float(np.quantile(np.abs(weights), self.sparsity))
        return np.abs(weights) > threshold

    def prune_model(self, model: Module, names: Optional[Sequence[str]] = None) -> PruningResult:
        """Build keep-masks over the model's encodable weights."""
        params = encodable_parameters(model)
        if names is not None:
            wanted = set(names)
            params = [(n, p) for n, p in params if n in wanted]
        if not params:
            raise QuantizationError("no parameters selected for pruning")
        result = PruningResult(sparsity=self.sparsity)
        if self.scope == "global":
            all_weights = np.concatenate([p.data.reshape(-1) for _, p in params])
            threshold = (float(np.quantile(np.abs(all_weights), self.sparsity))
                         if self.sparsity > 0.0 else -1.0)
            for name, param in params:
                result.masks[name] = np.abs(param.data) > threshold
        else:
            for name, param in params:
                result.masks[name] = self._mask_for(param.data.reshape(-1)).reshape(param.shape)
        return result


def apply_pruning(model: Module, result: PruningResult) -> None:
    """Zero out the pruned weights in place."""
    params = dict(encodable_parameters(model))
    for name, mask in result.masks.items():
        if name not in params:
            raise QuantizationError(f"model has no encodable parameter {name!r}")
        params[name].data = params[name].data * mask


def finetune_pruned(
    model: Module,
    result: PruningResult,
    loader,
    epochs: int = 1,
    lr: float = 0.02,
    momentum: float = 0.9,
) -> None:
    """Masked fine-tuning: pruned positions stay zero throughout."""
    from repro.autograd.tensor import Tensor
    from repro.nn.losses import CrossEntropyLoss
    from repro.nn.optim import SGD

    apply_pruning(model, result)
    params = dict(encodable_parameters(model))
    loss_fn = CrossEntropyLoss()
    optimizer = SGD(model.parameters(), lr=lr, momentum=momentum)
    model.train()
    for _ in range(epochs):
        for inputs, labels in loader:
            loss = loss_fn(model(Tensor(inputs)), labels)
            model.zero_grad()
            loss.backward()
            # Kill gradients at pruned positions before the update.
            for name, mask in result.masks.items():
                param = params[name]
                if param.grad is not None:
                    param.grad = param.grad * mask
            optimizer.step()
        apply_pruning(model, result)  # guard against momentum drift
    model.eval()


def pruned_model_bytes(model: Module, result: PruningResult,
                       index_bits: int = 16) -> int:
    """Sparse-storage estimate: kept values (float32) + per-value index."""
    kept = sum(int(mask.sum()) for mask in result.masks.values())
    pruned_names = set(result.masks)
    other = sum(p.size for name, p in model.named_parameters()
                if name not in pruned_names)
    total_bits = kept * (32 + index_bits) + other * 32
    return (total_bits + 7) // 8
