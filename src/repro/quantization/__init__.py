"""Weight quantization: the defense and the adversary's version of it.

* :class:`UniformQuantizer` / :class:`KMeansQuantizer` -- linear and
  deep-compression-style baselines.
* :class:`WeightedEntropyQuantizer` -- Park et al. CVPR'17, the paper's
  representative "benign" compression (the defense in Table I).
* :class:`TargetCorrelatedQuantizer` -- the paper's Algorithm 1: cluster
  boundaries derived from the *target image* pixel histogram, so the
  quantized weights keep the data-correlated distribution.
* :func:`finetune_quantized` -- cluster-shared fine-tuning that recovers
  accuracy after quantization without breaking the codebook structure.
"""

from repro.quantization.base import QuantizationResult, Quantizer, apply_quantization
from repro.quantization.uniform import KMeansQuantizer, UniformQuantizer
from repro.quantization.weighted_entropy import WeightedEntropyQuantizer
from repro.quantization.target_correlated import TargetCorrelatedQuantizer, detect_flip
from repro.quantization.finetune import finetune_quantized
from repro.quantization.bitwidth import (
    bits_for_levels,
    levels_for_bits,
    quantized_model_bytes,
)
from repro.quantization.pruning import (
    MagnitudePruner,
    PruningResult,
    apply_pruning,
    finetune_pruned,
    pruned_model_bytes,
)
from repro.quantization.huffman import (
    HuffmanCode,
    build_huffman,
    huffman_for_result,
    huffman_model_bytes,
)
from repro.quantization.sensitivity import (
    LayerSensitivity,
    perturbation_sensitivity,
    quantization_sensitivity,
    suggest_groups,
)

__all__ = [
    "Quantizer", "QuantizationResult", "apply_quantization",
    "UniformQuantizer", "KMeansQuantizer", "WeightedEntropyQuantizer",
    "TargetCorrelatedQuantizer", "detect_flip", "finetune_quantized",
    "levels_for_bits", "bits_for_levels", "quantized_model_bytes",
    "MagnitudePruner", "PruningResult", "apply_pruning", "finetune_pruned",
    "pruned_model_bytes", "HuffmanCode", "build_huffman",
    "huffman_for_result", "huffman_model_bytes",
    "LayerSensitivity", "quantization_sensitivity",
    "perturbation_sensitivity", "suggest_groups",
]
