"""Cluster-shared fine-tuning after quantization.

Both weighted-entropy quantization and the paper's flow "involve light
fine-tuning to compensate for the accuracy loss".  With shared weights
the trainable degrees of freedom are the *codebook entries*: each
centroid's gradient is the sum of the gradients of every weight assigned
to it (deep compression's shared-weight update rule).  Assignments stay
fixed, so the codebook structure -- and therefore the embedded data's
distribution shape -- survives.

Biases and BatchNorm parameters remain full precision and are trained
normally alongside the codebooks.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.autograd.tensor import Tensor
from repro.models.introspect import encodable_parameters
from repro.nn.dataloader import DataLoader
from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Module
from repro.nn.optim import SGD
from repro.quantization.base import QuantizationResult, apply_quantization


def finetune_quantized(
    model: Module,
    result: QuantizationResult,
    loader: DataLoader,
    epochs: int = 1,
    lr: float = 0.005,
    momentum: float = 0.9,
    penalty: Optional[Callable[[], Tensor]] = None,
    progress: Optional[Callable[[int, float], None]] = None,
) -> None:
    """Fine-tune a quantized model without leaving the codebook.

    Args:
        model: model whose encodable weights are covered by ``result``.
        result: codebooks/assignments from a Quantizer; updated in place.
        loader: labelled minibatches (NCHW float inputs, int labels).
        epochs / lr / momentum: optimisation hyper-parameters.
        penalty: optional extra loss term (e.g. the correlation penalty,
            if the adversary also regularises during fine-tuning).
        progress: optional callback ``(epoch, mean_loss)``.
    """
    params = dict(encodable_parameters(model))
    quantized = [(name, params[name]) for name in result.assignments]
    others = [
        p for name, p in model.named_parameters()
        if name not in result.assignments
    ]
    loss_fn = CrossEntropyLoss()
    other_opt = SGD(others, lr=lr, momentum=momentum) if others else None
    velocity = {name: np.zeros_like(result.codebooks[name]) for name, _ in quantized}

    # Shared codebooks (global scope) must receive one combined update,
    # not one per tensor: group tensor names by codebook identity.
    codebook_groups = {}
    for name, _ in quantized:
        codebook_groups.setdefault(id(result.codebooks[name]), []).append(name)

    apply_quantization(model, result)
    model.train()
    for epoch in range(epochs):
        total_loss, total_count = 0.0, 0
        for inputs, labels in loader:
            logits = model(Tensor(inputs))
            loss = loss_fn(logits, labels)
            if penalty is not None:
                from repro.autograd import functional as F
                loss = F.add(loss, penalty())
            model.zero_grad()
            loss.backward()
            # Codebook update: per shared codebook, average member weight
            # gradients into centroid gradients.  The mean (not the raw
            # deep-compression sum) keeps the step size independent of
            # cluster population -- at 3-bit a cluster can hold thousands
            # of weights and the summed gradient would diverge.
            for names in codebook_groups.values():
                codebook = result.codebooks[names[0]]
                grad = np.zeros_like(codebook)
                counts = np.zeros(codebook.size)
                for name in names:
                    param = params[name]
                    if param.grad is None:
                        continue
                    flat_assign = result.assignments[name].reshape(-1)
                    grad += np.bincount(
                        flat_assign,
                        weights=param.grad.reshape(-1),
                        minlength=codebook.size,
                    )
                    counts += np.bincount(flat_assign, minlength=codebook.size)
                grad = grad / np.maximum(counts, 1.0)
                vel = velocity[names[0]]
                vel *= momentum
                vel += grad
                codebook -= lr * vel
            if other_opt is not None:
                other_opt.step()
            apply_quantization(model, result)
            total_loss += loss.item() * len(labels)
            total_count += len(labels)
        if progress is not None:
            progress(epoch, total_loss / max(total_count, 1))
    model.eval()
