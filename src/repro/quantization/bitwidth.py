"""Bit-width arithmetic and compressed-model size accounting."""

from __future__ import annotations

import math

from repro.errors import QuantizationError
from repro.nn.module import Module
from repro.quantization.base import QuantizationResult


def levels_for_bits(bits: int) -> int:
    """Quantization levels for a bit width (8-bit -> 256 levels)."""
    if bits < 1:
        raise QuantizationError(f"bit width must be >= 1, got {bits}")
    return 1 << bits


def bits_for_levels(levels: int) -> int:
    """Smallest bit width able to index ``levels`` clusters."""
    if levels < 1:
        raise QuantizationError(f"levels must be >= 1, got {levels}")
    return max(1, math.ceil(math.log2(levels)))


def quantized_model_bytes(model: Module, result: QuantizationResult) -> int:
    """Storage estimate for the released model.

    Quantized weights cost ``bits`` each plus a float32 codebook;
    every remaining parameter (biases, BatchNorm) costs float32.
    """
    bits = result.bits
    quantized_names = set(result.assignments)
    total_bits = 0
    from repro.models.introspect import encodable_parameters
    encodable = dict(encodable_parameters(model))
    for name, param in model.named_parameters():
        if name in quantized_names and name in encodable:
            total_bits += param.size * bits
        else:
            total_bits += param.size * 32
    codebook_entries = {id(cb): cb.size for cb in result.codebooks.values()}
    total_bits += sum(codebook_entries.values()) * 32
    return (total_bits + 7) // 8


def compression_ratio(model: Module, result: QuantizationResult) -> float:
    """Float32 size divided by quantized size."""
    full = sum(p.size for p in model.parameters()) * 4
    return full / quantized_model_bytes(model, result)
