"""Layer-wise sensitivity analysis.

The paper's Sec. IV-B grouping ("layers that are closer to the input
carry more importance ... in terms of accuracy") is an empirical claim
about per-layer fragility.  This module measures it directly, giving a
principled way to pick the layer groups and rates on any model:

* :func:`quantization_sensitivity` -- accuracy drop when quantizing one
  encodable layer at a time (others untouched);
* :func:`perturbation_sensitivity` -- accuracy drop under relative
  Gaussian noise per layer (a quantization-free proxy);
* :func:`suggest_groups` -- split the layer list into ``num_groups``
  contiguous groups by cumulative sensitivity, most-sensitive first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import QuantizationError
from repro.metrics.accuracy import evaluate_accuracy
from repro.models.introspect import encodable_parameters
from repro.nn.module import Module


@dataclass(frozen=True)
class LayerSensitivity:
    """Accuracy cost of degrading one layer."""

    name: str
    baseline_accuracy: float
    degraded_accuracy: float

    @property
    def accuracy_drop(self) -> float:
        return self.baseline_accuracy - self.degraded_accuracy


def _with_layer_restored(param, original: np.ndarray):
    param.data = original


def quantization_sensitivity(
    model: Module,
    inputs: np.ndarray,
    labels: np.ndarray,
    bits: int = 2,
    names: Optional[Sequence[str]] = None,
) -> List[LayerSensitivity]:
    """Quantize one layer at a time (aggressively) and measure accuracy.

    A very low bit width is used on purpose: the measurement needs the
    degradation to actually bite so that per-layer differences surface.
    """
    from repro.quantization.uniform import UniformQuantizer

    params = encodable_parameters(model)
    if names is not None:
        wanted = set(names)
        params = [(n, p) for n, p in params if n in wanted]
    if not params:
        raise QuantizationError("no layers selected for sensitivity analysis")
    baseline = evaluate_accuracy(model, inputs, labels)
    quantizer = UniformQuantizer(levels=1 << bits)
    results: List[LayerSensitivity] = []
    for name, param in params:
        original = param.data.copy()
        codebook, assignment = quantizer.quantize_vector(param.data.reshape(-1))
        param.data = codebook[assignment].reshape(param.shape)
        degraded = evaluate_accuracy(model, inputs, labels)
        _with_layer_restored(param, original)
        results.append(LayerSensitivity(name, baseline, degraded))
    return results


def perturbation_sensitivity(
    model: Module,
    inputs: np.ndarray,
    labels: np.ndarray,
    noise_fraction: float = 0.5,
    names: Optional[Sequence[str]] = None,
    seed: int = 0,
    trials: int = 3,
) -> List[LayerSensitivity]:
    """Noise-based analogue of :func:`quantization_sensitivity`.

    Averages over ``trials`` noise draws for a stabler estimate.
    """
    params = encodable_parameters(model)
    if names is not None:
        wanted = set(names)
        params = [(n, p) for n, p in params if n in wanted]
    if not params:
        raise QuantizationError("no layers selected for sensitivity analysis")
    baseline = evaluate_accuracy(model, inputs, labels)
    rng = np.random.default_rng(seed)
    results: List[LayerSensitivity] = []
    for name, param in params:
        original = param.data.copy()
        accuracies = []
        scale = float(original.std()) * noise_fraction
        for _ in range(trials):
            param.data = original + rng.normal(0.0, scale, size=original.shape)
            accuracies.append(evaluate_accuracy(model, inputs, labels))
        _with_layer_restored(param, original)
        results.append(LayerSensitivity(name, baseline, float(np.mean(accuracies))))
    return results


def suggest_groups(
    sensitivities: Sequence[LayerSensitivity], num_groups: int = 3
) -> List[Tuple[int, int]]:
    """Contiguous 1-based layer ranges by cumulative sensitivity mass.

    Keeps the paper's contiguous-group structure (groups follow layer
    order) but places the boundaries where the measured sensitivity
    mass splits evenly -- sensitive prefixes end up in small early
    groups that the attack then zero-rates.
    """
    if num_groups < 1:
        raise QuantizationError("need at least one group")
    drops = np.array([max(s.accuracy_drop, 0.0) for s in sensitivities])
    count = len(drops)
    if num_groups >= count:
        return [(i + 1, i + 1) for i in range(count)]
    total = drops.sum()
    if total <= 0:  # nothing is sensitive: split evenly
        cuts = list(np.linspace(0, count, num_groups + 1).astype(int)[1:-1])
    else:
        cumulative = np.cumsum(drops)
        targets = total * np.arange(1, num_groups) / num_groups
        cuts = list(np.searchsorted(cumulative, targets) + 1)
    # Enforce strictly increasing cuts that leave at least one layer for
    # every group before and after each cut.
    adjusted: List[int] = []
    previous = 0
    for index, cut in enumerate(cuts):
        cut = max(int(cut), previous + 1)
        cut = min(cut, count - (num_groups - 1 - index))
        adjusted.append(cut)
        previous = cut
    edges = [0] + adjusted + [count]
    return [(edges[k] + 1, edges[k + 1]) for k in range(num_groups)]
