"""Linear (uniform) and k-means quantizers.

The uniform quantizer linearly spaces representatives across the weight
range; k-means refines a linear initialisation with Lloyd iterations --
exactly deep compression's "linearly space the centroids ... to
initialize the shared weights" (Han et al., 2015).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.quantization.base import Quantizer


class UniformQuantizer(Quantizer):
    """Evenly spaced representatives between the min and max weight."""

    def quantize_vector(self, weights: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        low, high = float(weights.min()), float(weights.max())
        if high - low < 1e-12:
            return np.array([low]), np.zeros(weights.size, dtype=np.int64)
        codebook = np.linspace(low, high, self.levels)
        # Nearest representative == index by rounding into the grid.
        step = (high - low) / (self.levels - 1)
        assignment = np.clip(np.round((weights - low) / step), 0, self.levels - 1)
        return codebook, assignment.astype(np.int64)


class KMeansQuantizer(Quantizer):
    """1-D Lloyd's k-means with linear initialisation (deep compression)."""

    def __init__(self, levels: int, scope: str = "global", iterations: int = 25) -> None:
        super().__init__(levels, scope)
        self.iterations = int(iterations)

    def quantize_vector(self, weights: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        low, high = float(weights.min()), float(weights.max())
        if high - low < 1e-12:
            return np.array([low]), np.zeros(weights.size, dtype=np.int64)
        centroids = np.linspace(low, high, self.levels)
        order = np.argsort(weights)
        sorted_weights = weights[order]
        for _ in range(self.iterations):
            # 1-D assignment: midpoints between sorted centroids split the line.
            midpoints = (centroids[1:] + centroids[:-1]) / 2.0
            assignment_sorted = np.searchsorted(midpoints, sorted_weights)
            sums = np.bincount(assignment_sorted, weights=sorted_weights,
                               minlength=self.levels)
            counts = np.bincount(assignment_sorted, minlength=self.levels)
            updated = np.where(counts > 0, sums / np.maximum(counts, 1), centroids)
            if np.allclose(updated, centroids, atol=1e-10):
                centroids = updated
                break
            centroids = updated
        midpoints = (centroids[1:] + centroids[:-1]) / 2.0
        assignment = np.searchsorted(midpoints, weights).astype(np.int64)
        return centroids, assignment
