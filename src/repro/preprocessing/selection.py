"""Std-based candidate selection (paper Sec. IV-A).

The algorithm clusters training images by the standard deviation of
their pixel values, computes the dataset mean std, keeps images whose
std falls in a window ``[floor(std_mean), floor(std_mean) + d]``, and
randomly draws ``n`` of them (n from the capacity estimate) as the
correlation target set ``T``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.datasets.base import ImageDataset
from repro.errors import CapacityError


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of the pre-processing stage."""

    target_indices: np.ndarray
    candidate_indices: np.ndarray
    std_mean: float
    std_range: Tuple[float, float]

    def __len__(self) -> int:
        return len(self.target_indices)


def select_by_std_range(dataset: ImageDataset, low: float, high: float) -> np.ndarray:
    """Indices of images with per-image pixel std strictly inside (low, high)."""
    stds = dataset.per_image_std()
    return np.flatnonzero((stds > low) & (stds < high))


def select_encoding_targets(
    dataset: ImageDataset,
    capacity: int,
    window: float = 5.0,
    seed: int = 0,
    widen_if_short: bool = True,
    std_range: Optional[Tuple[float, float]] = None,
) -> SelectionResult:
    """Run Sec. IV-A selection and draw the correlation target set.

    Args:
        dataset: the training set the malicious algorithm received.
        capacity: image capacity ``n`` (from the parameter amount).
        window: the range length ``d``.
        seed: RNG seed for the random draw.
        widen_if_short: grow the window symmetrically when fewer than
            ``capacity`` candidates fall inside it (the paper's fixed
            window assumes CIFAR-scale datasets; small CPU-scale sets
            sometimes need a wider net).
        std_range: explicit (low, high) window overriding the computed
            one -- the paper pins [50, 55] for CIFAR-10.

    Returns:
        A :class:`SelectionResult`; ``target_indices`` has
        ``min(capacity, len(candidates))`` entries.
    """
    if capacity <= 0:
        raise CapacityError(f"capacity must be positive, got {capacity}")
    stds = dataset.per_image_std()
    std_mean = float(stds.mean())
    if std_range is not None:
        std_min, std_max = float(std_range[0]), float(std_range[1])
    else:
        std_min = float(math.floor(std_mean))
        std_max = std_min + float(window)
    candidates = np.flatnonzero((stds > std_min) & (stds < std_max))
    while widen_if_short and len(candidates) < capacity and (
        std_min > stds.min() or std_max < stds.max()
    ):
        std_min -= 1.0
        std_max += 1.0
        candidates = np.flatnonzero((stds > std_min) & (stds < std_max))
    if len(candidates) == 0:
        raise CapacityError(
            f"no candidate images with std in ({std_min}, {std_max}); "
            f"dataset stds span [{stds.min():.1f}, {stds.max():.1f}]"
        )
    rng = np.random.default_rng(seed)
    count = min(capacity, len(candidates))
    chosen = rng.choice(candidates, size=count, replace=False)
    return SelectionResult(
        target_indices=np.sort(chosen),
        candidate_indices=candidates,
        std_mean=std_mean,
        std_range=(std_min, std_max),
    )
