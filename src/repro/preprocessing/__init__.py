"""Data pre-processing stage of the attack flow (Sec. IV-A).

Selects the subset of training images whose pixel-value statistics match
the distribution the correlated weights will be pushed towards.
"""

from repro.preprocessing.selection import (
    SelectionResult,
    select_by_std_range,
    select_encoding_targets,
)
from repro.preprocessing.stats import (
    dataset_std_summary,
    pixel_value_histogram,
    weight_histogram,
)

__all__ = [
    "SelectionResult", "select_encoding_targets", "select_by_std_range",
    "dataset_std_summary", "pixel_value_histogram", "weight_histogram",
]
