"""Distribution statistics for the Fig. 2 / Fig. 3 analyses."""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.datasets.base import ImageDataset


def pixel_value_histogram(
    images: np.ndarray, bins: int = 64
) -> Tuple[np.ndarray, np.ndarray]:
    """Normalised histogram of pixel values over [0, 255]."""
    pixels = np.asarray(images, dtype=np.float64).reshape(-1)
    counts, edges = np.histogram(pixels, bins=bins, range=(0.0, 255.0))
    total = counts.sum()
    density = counts / total if total else counts.astype(np.float64)
    return density, edges


def weight_histogram(
    weights: np.ndarray, bins: int = 64
) -> Tuple[np.ndarray, np.ndarray]:
    """Normalised histogram of a flat weight vector over its own range."""
    weights = np.asarray(weights, dtype=np.float64).reshape(-1)
    counts, edges = np.histogram(weights, bins=bins)
    total = counts.sum()
    density = counts / total if total else counts.astype(np.float64)
    return density, edges


def dataset_std_summary(dataset: ImageDataset) -> Dict[str, float]:
    """Per-image std statistics of a dataset (Sec. IV-A inputs)."""
    stds = dataset.per_image_std()
    return {
        "mean": float(stds.mean()),
        "min": float(stds.min()),
        "max": float(stds.max()),
        "median": float(np.median(stds)),
    }
