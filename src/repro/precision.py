"""Process-wide compute-precision policy.

Every tensor the reproduction creates used to be silently float64.  The
paper's pipeline is numerically tolerant of float32 training (the
quantization stage discards far more precision than the dtype does), and
halving the bytes every kernel moves is the cheapest remaining CPU
speedup -- so float32 is the default *compute* dtype.

The policy governs where a dtype has to be invented: int/bool tensor
promotion, python-scalar tensors, :class:`~repro.nn.module.Parameter`
construction, module buffers and DataLoader batch materialization.
It never downcasts an explicit float numpy array -- feeding float64
arrays through the stack still computes in float64 end to end, which is
what keeps the ``--dtype float64`` reference path bit-identical to the
pre-policy code.

Metrics that feed paper tables (PSNR/SSIM/MAPE, the Eq. 2 Pearson
probe, decoding) accumulate in :data:`METRICS_DTYPE` (float64)
regardless of the active policy, so reported numbers stay stable across
compute precisions.

Usage::

    from repro import precision

    precision.default_dtype()            # np.dtype('float32')
    with precision.use_dtype("float64"): # scoped override
        model = resnet8_tiny()           # float64 parameters
    precision.set_default_dtype("float64")  # process-wide

The CLI exposes the same switch as a global ``--dtype`` flag.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional, Union

import numpy as np

from repro.errors import ConfigError

DTypeLike = Union[str, type, np.dtype]

#: The dtypes a compute policy may select.  Training in float16 is not
#: supported by the pure-numpy kernels (no loss scaling), and anything
#: wider than float64 buys nothing on CPU.
COMPUTE_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))

#: Paper-table metrics (PSNR/SSIM/MAPE, Pearson correlation, decode)
#: always accumulate in this dtype, independent of the active policy.
METRICS_DTYPE = np.dtype(np.float64)

_default: np.dtype = np.dtype(np.float32)


def normalize_dtype(dtype: DTypeLike) -> np.dtype:
    """Validate and canonicalize a user-supplied compute dtype."""
    try:
        dt = np.dtype(dtype)
    except TypeError as exc:
        raise ConfigError(f"not a dtype: {dtype!r}") from exc
    if dt not in COMPUTE_DTYPES:
        allowed = ", ".join(d.name for d in COMPUTE_DTYPES)
        raise ConfigError(
            f"unsupported compute dtype {dt.name!r}; choose one of: {allowed}"
        )
    return dt


def default_dtype() -> np.dtype:
    """The active default compute dtype."""
    return _default


def set_default_dtype(dtype: Optional[DTypeLike]) -> np.dtype:
    """Set the process-wide compute dtype; returns the previous one.

    ``None`` is a no-op (the previous policy is still returned), so
    callers can thread an optional dtype without branching.
    """
    global _default
    previous = _default
    if dtype is not None:
        _default = normalize_dtype(dtype)
    return previous


@contextlib.contextmanager
def use_dtype(dtype: Optional[DTypeLike]) -> Iterator[np.dtype]:
    """Scope the default compute dtype; restores the previous on exit."""
    previous = set_default_dtype(dtype)
    try:
        yield _default
    finally:
        set_default_dtype(previous)


def resolve(dtype: Optional[DTypeLike] = None) -> np.dtype:
    """An explicit dtype if given, else the active policy default."""
    return _default if dtype is None else normalize_dtype(dtype)
