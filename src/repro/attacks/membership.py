"""Membership inference attack (Shokri et al., S&P 2017 -- paper ref [11]).

The simplest strong baseline: a sample was likely a training member if
the model's loss on it is low (Yeom et al.'s loss-threshold attack,
which matches shadow-model attacks on small models).  Included here to
measure a side question the paper raises implicitly: **does embedding
training data in the weights change how much ordinary membership
leakage the model exhibits?**  (`benchmarks/test_ext_related_attacks.py`
compares benign vs. attacked models.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autograd import no_grad
from repro.autograd.tensor import Tensor
from repro.errors import ShapeError
from repro.nn.module import Module


def per_sample_loss(model: Module, inputs: np.ndarray, labels: np.ndarray,
                    batch_size: int = 64) -> np.ndarray:
    """Cross-entropy of each sample under the model (no reduction)."""
    labels = np.asarray(labels, dtype=np.int64)
    if len(inputs) != len(labels):
        raise ShapeError(f"inputs ({len(inputs)}) and labels ({len(labels)}) differ")
    was_training = model.training
    model.eval()
    losses = []
    with no_grad():
        for start in range(0, len(inputs), batch_size):
            logits = model(Tensor(inputs[start:start + batch_size])).data
            shifted = logits - logits.max(axis=1, keepdims=True)
            log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
            batch_labels = labels[start:start + batch_size]
            losses.append(-log_probs[np.arange(len(batch_labels)), batch_labels])
    if was_training:
        model.train()
    return np.concatenate(losses)


@dataclass(frozen=True)
class MembershipResult:
    """Scores and summary statistics of a loss-threshold MIA."""

    member_losses: np.ndarray
    non_member_losses: np.ndarray

    @property
    def auc(self) -> float:
        """Area under the ROC of 'low loss => member'.

        Computed via the Mann-Whitney U statistic: the probability that
        a random member scores lower loss than a random non-member.
        """
        members = self.member_losses
        non_members = self.non_member_losses
        if len(members) == 0 or len(non_members) == 0:
            return 0.5
        # Rank-based U statistic (ties get half credit).
        combined = np.concatenate([members, non_members])
        order = combined.argsort(kind="stable")
        ranks = np.empty_like(order, dtype=np.float64)
        ranks[order] = np.arange(1, len(combined) + 1)
        # Average ranks over ties.
        sorted_vals = combined[order]
        start = 0
        for i in range(1, len(sorted_vals) + 1):
            if i == len(sorted_vals) or sorted_vals[i] != sorted_vals[start]:
                ranks[order[start:i]] = ranks[order[start:i]].mean()
                start = i
        member_rank_sum = ranks[: len(members)].sum()
        u_statistic = member_rank_sum - len(members) * (len(members) + 1) / 2
        # Low loss should indicate membership, so invert the direction.
        return 1.0 - u_statistic / (len(members) * len(non_members))

    def advantage(self, threshold: float = None) -> float:
        """Best membership advantage (TPR - FPR) over all thresholds."""
        if threshold is not None:
            tpr = float((self.member_losses <= threshold).mean())
            fpr = float((self.non_member_losses <= threshold).mean())
            return tpr - fpr
        thresholds = np.unique(np.concatenate([self.member_losses,
                                               self.non_member_losses]))
        best = 0.0
        for value in thresholds:
            best = max(best, self.advantage(float(value)))
        return best


def membership_inference(
    model: Module,
    member_inputs: np.ndarray,
    member_labels: np.ndarray,
    non_member_inputs: np.ndarray,
    non_member_labels: np.ndarray,
) -> MembershipResult:
    """Run the loss-threshold MIA against a released model."""
    return MembershipResult(
        member_losses=per_sample_loss(model, member_inputs, member_labels),
        non_member_losses=per_sample_loss(model, non_member_inputs, non_member_labels),
    )
