"""Image payloads for the bit-level baseline attacks (LSB / sign).

The correlated value encoding attack stores pixels directly in weight
*values*; the two baselines store *bits*.  These helpers pack images
into bit strings and back, so all three attacks steal the same payloads
and can be compared end-to-end (see
``benchmarks/test_ext_attack_family.py``):

* LSB: 8 bits/pixel into the low mantissa bits of float32 weights;
* sign: 8 bits/pixel into parameter signs (one bit per parameter).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import CapacityError


def images_to_bits(images: np.ndarray) -> np.ndarray:
    """Pack uint8 images into a flat bit array (big-endian per byte)."""
    images = np.asarray(images, dtype=np.uint8)
    return np.unpackbits(images.reshape(-1))


def bits_to_images(bits: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Unpack a bit array back into uint8 images of the given shape."""
    expected = int(np.prod(shape)) * 8
    bits = np.asarray(bits).reshape(-1)
    if bits.size < expected:
        raise CapacityError(
            f"need {expected} bits for shape {shape}, got {bits.size}"
        )
    return np.packbits(bits[:expected].astype(np.uint8)).reshape(shape)


def bit_error_rate(original_bits: np.ndarray, decoded_bits: np.ndarray) -> float:
    """Fraction of flipped bits between two equal-length bit strings."""
    original_bits = np.asarray(original_bits).reshape(-1)
    decoded_bits = np.asarray(decoded_bits).reshape(-1)
    if original_bits.size != decoded_bits.size:
        raise CapacityError(
            f"bit strings differ in length: {original_bits.size} vs {decoded_bits.size}"
        )
    if original_bits.size == 0:
        return 0.0
    return float((original_bits != decoded_bits).mean())


def lsb_image_capacity(num_weights: int, pixels_per_image: int,
                       bits_per_weight: int) -> int:
    """Whole images storable via LSB encoding."""
    return (num_weights * bits_per_weight) // (pixels_per_image * 8)


def sign_image_capacity(num_weights: int, pixels_per_image: int) -> int:
    """Whole images storable via sign encoding (1 bit per weight)."""
    return num_weights // (pixels_per_image * 8)
