"""Packaging target images into the secret vector ``s``.

The correlated value encoding attack correlates model weights with a
flat vector of pixel values.  :class:`SecretPayload` owns that vector:
which images were selected, their labels, their pixel layout, and which
contiguous slice of the (flattened) encoding weights each image claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.datasets.base import ImageDataset
from repro.errors import CapacityError


@dataclass
class SecretPayload:
    """The target data of an encoding attack.

    Attributes:
        images: uint8 array (n, H, W, C) -- the originals being stolen.
        labels: int64 array (n,) -- original class labels (used by the
            "model recognises its own stolen image" metric).
        image_shape: (H, W, C).
    """

    images: np.ndarray
    labels: np.ndarray
    image_shape: Tuple[int, int, int] = field(init=False)

    def __post_init__(self) -> None:
        self.images = np.asarray(self.images, dtype=np.uint8)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if self.images.ndim != 4:
            raise CapacityError(f"payload images must be (n, H, W, C), got {self.images.shape}")
        if len(self.images) != len(self.labels):
            raise CapacityError("payload images and labels differ in length")
        self.image_shape = tuple(self.images.shape[1:])

    @classmethod
    def from_dataset(cls, dataset: ImageDataset, indices: Sequence[int]) -> "SecretPayload":
        indices = np.asarray(indices)
        return cls(dataset.images[indices], dataset.labels[indices])

    # ----------------------------------------------------------- geometry
    def __len__(self) -> int:
        return len(self.images)

    @property
    def pixels_per_image(self) -> int:
        height, width, channels = self.image_shape
        return height * width * channels

    @property
    def total_pixels(self) -> int:
        return len(self.images) * self.pixels_per_image

    # ------------------------------------------------------------- vector
    def secret_vector(self) -> np.ndarray:
        """The flat float vector ``s`` (raw pixel values, image-major).

        Pearson correlation is shift/scale invariant, so the raw
        [0, 255] pixel values are used directly; decoding remaps the
        weight slice back to [0, 255] (paper Sec. II-B).
        """
        return self.images.reshape(len(self.images), -1).astype(np.float64).reshape(-1)

    def image_slices(self) -> List[slice]:
        """Slice of the secret vector (and weight vector) per image."""
        size = self.pixels_per_image
        return [slice(i * size, (i + 1) * size) for i in range(len(self.images))]

    def take(self, count: int) -> "SecretPayload":
        """First ``count`` images as a new payload."""
        if count > len(self.images):
            raise CapacityError(
                f"requested {count} images but payload has only {len(self.images)}"
            )
        return SecretPayload(self.images[:count], self.labels[:count])

    def split(self, counts: Sequence[int]) -> List["SecretPayload"]:
        """Partition into consecutive payloads of the given sizes."""
        if sum(counts) > len(self.images):
            raise CapacityError(
                f"split sizes {list(counts)} exceed payload size {len(self.images)}"
            )
        out: List[SecretPayload] = []
        offset = 0
        for count in counts:
            out.append(SecretPayload(self.images[offset:offset + count],
                                     self.labels[offset:offset + count]))
            offset += count
        return out
