"""Model inversion attack (Fredrikson et al., CCS 2015 -- paper ref [10]).

The weakest member of the privacy-attack landscape the paper cites:
with white-box access but *no* malicious training, gradient-ascend an
input to maximise one class's logit (plus a total-variation prior for
smoothness).  The result is a class *prototype*, not a training image --
which is exactly the paper's implicit contrast: the correlation attack
steals actual training samples, inversion only recovers what the class
looks like on average.  ``benchmarks/test_ext_related_attacks.py``
quantifies that gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.errors import ConfigError
from repro.nn.module import Module


@dataclass(frozen=True)
class InversionConfig:
    """Hyper-parameters of the inversion optimisation."""

    steps: int = 150
    lr: float = 0.1
    tv_weight: float = 1e-3
    momentum: float = 0.9
    seed: int = 0

    def validate(self) -> None:
        if self.steps < 1:
            raise ConfigError("steps must be >= 1")
        if self.lr <= 0:
            raise ConfigError("lr must be positive")


def _tv_penalty(image: Tensor) -> Tensor:
    """Differentiable total variation of an NCHW tensor (smoothness prior)."""
    _, _, height, width = image.shape
    right = F.getitem(image, (slice(None), slice(None), slice(None), slice(1, width)))
    left = F.getitem(image, (slice(None), slice(None), slice(None), slice(0, width - 1)))
    down = F.getitem(image, (slice(None), slice(None), slice(1, height), slice(None)))
    up = F.getitem(image, (slice(None), slice(None), slice(0, height - 1), slice(None)))
    dx = F.sub(right, left)
    dy = F.sub(down, up)
    return F.add(F.mean(F.mul(dx, dx)), F.mean(F.mul(dy, dy)))


def invert_class(
    model: Module,
    target_class: int,
    image_shape: Tuple[int, int, int],
    config: InversionConfig = InversionConfig(),
    mean: Optional[np.ndarray] = None,
    std: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Reconstruct a class prototype from a released model.

    Args:
        model: released classifier (white-box: gradients flow to input).
        target_class: the class to invert.
        image_shape: (C, H, W) of the model's input.
        config: optimisation hyper-parameters.
        mean / std: the model's input normalization; the returned image
            is denormalised through them.

    Returns:
        uint8 image (H, W, C) -- the recovered prototype.
    """
    config.validate()
    was_training = model.training
    model.eval()
    rng = np.random.default_rng(config.seed)
    image = Tensor(rng.normal(0.0, 0.1, size=(1, *image_shape)), requires_grad=True)
    velocity = np.zeros_like(image.data)
    for _ in range(config.steps):
        logits = model(image)
        # Maximise the target's log-probability (numerically stable
        # log-softmax -- raw exp margins overflow as logits grow during
        # the ascent) while keeping the image smooth.
        log_probs = F.log_softmax(logits)
        objective = F.getitem(log_probs, (0, target_class))
        loss = F.add(F.neg(objective), F.mul(_tv_penalty(image), Tensor(config.tv_weight)))
        image.grad = None
        loss.backward()
        velocity = config.momentum * velocity + image.grad
        image.data = image.data - config.lr * velocity
    if was_training:
        model.train()

    recovered = image.data[0]
    if mean is not None and std is not None:
        recovered = recovered * np.asarray(std).reshape(-1, 1, 1) + \
            np.asarray(mean).reshape(-1, 1, 1)
    recovered = np.clip(recovered, 0.0, 1.0) * 255.0
    return np.transpose(recovered, (1, 2, 0)).astype(np.uint8)


def inversion_quality_vs_class(
    prototype: np.ndarray, class_images: np.ndarray
) -> float:
    """Best-case MAPE of a prototype against any image of its class.

    Inversion recovers *a* class representative; the fair score is its
    distance to the nearest real class member.
    """
    from repro.metrics.mape import batch_mape
    repeated = np.repeat(prototype[None], len(class_images), axis=0)
    return float(batch_mape(class_images, repeated).min())
