"""Capacity-abuse attack (Song et al. CCS'17's black-box attack).

The white-box attacks (LSB/sign/correlation) need the released weights.
When the adversary can only *query* the released model, Song et al.
abuse its memorization capacity instead: the malicious training code
augments the training set with synthetic inputs whose **labels encode
secret bits**.  The model memorises those (input, label) pairs; the
adversary later regenerates the same synthetic inputs (they are derived
from a pseudorandom seed baked into the training code), queries the
model, and reads the secret back out of the predicted labels.

Each synthetic query leaks ``floor(log2(num_classes))`` bits, so this is
far less efficient than correlated value encoding -- but it needs no
weight access at all, and quantization barely touches it (memorised
decision regions survive re-discretisation far better than weight LSBs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import CapacityError
from repro.metrics.accuracy import predict_classes
from repro.nn.module import Module


def bits_per_query(num_classes: int) -> int:
    """Secret bits one synthetic query can carry."""
    if num_classes < 2:
        raise CapacityError("need at least two classes to encode bits in labels")
    return int(np.floor(np.log2(num_classes)))


@dataclass(frozen=True)
class SyntheticQuerySet:
    """The deterministic synthetic inputs + their bit-encoding labels."""

    inputs: np.ndarray          # (n, C, H, W) float batch
    labels: np.ndarray          # (n,) int labels encoding the secret
    num_classes: int
    num_bits: int

    def __len__(self) -> int:
        return len(self.inputs)


def generate_queries(
    count: int,
    image_shape: Tuple[int, int, int],
    seed: int,
) -> np.ndarray:
    """Deterministic pseudorandom query images (NCHW float in [0, 1]).

    Both the malicious trainer and the later extractor call this with
    the same seed -- the seed is the shared secret channel.
    """
    channels, height, width = image_shape
    rng = np.random.default_rng(seed)
    return rng.random((count, channels, height, width))


def encode_bits_as_labels(bits: np.ndarray, num_classes: int) -> np.ndarray:
    """Pack a bit string into class labels, ``bits_per_query`` at a time."""
    width = bits_per_query(num_classes)
    bits = np.asarray(bits).reshape(-1)
    if bits.size % width:
        pad = width - bits.size % width
        bits = np.concatenate([bits, np.zeros(pad, dtype=bits.dtype)])
    groups = bits.reshape(-1, width)
    labels = np.zeros(len(groups), dtype=np.int64)
    for bit_index in range(width):
        labels = (labels << 1) | groups[:, bit_index].astype(np.int64)
    return labels


def decode_labels_as_bits(labels: np.ndarray, num_classes: int, num_bits: int) -> np.ndarray:
    """Invert :func:`encode_bits_as_labels` (truncating padding bits)."""
    width = bits_per_query(num_classes)
    labels = np.asarray(labels, dtype=np.int64).reshape(-1)
    out = np.zeros((len(labels), width), dtype=np.uint8)
    for bit_index in range(width):
        shift = width - 1 - bit_index
        out[:, bit_index] = (labels >> shift) & 1
    flat = out.reshape(-1)
    if num_bits > flat.size:
        raise CapacityError(f"requested {num_bits} bits but queries carry {flat.size}")
    return flat[:num_bits]


def build_query_set(
    secret_bits: np.ndarray,
    image_shape: Tuple[int, int, int],
    num_classes: int,
    seed: int = 0,
) -> SyntheticQuerySet:
    """Package a secret bit string as a labelled synthetic query set."""
    secret_bits = np.asarray(secret_bits).reshape(-1)
    labels = encode_bits_as_labels(secret_bits, num_classes)
    inputs = generate_queries(len(labels), image_shape, seed)
    return SyntheticQuerySet(inputs=inputs, labels=labels,
                             num_classes=num_classes, num_bits=secret_bits.size)


def poison_training_set(
    inputs: np.ndarray,
    labels: np.ndarray,
    queries: SyntheticQuerySet,
    repeats: int = 4,
) -> Tuple[np.ndarray, np.ndarray]:
    """Append the synthetic queries to the training arrays.

    ``repeats`` copies push the model to memorise the queries even when
    they are a small fraction of the data (the malicious code controls
    this knob; it looks like oversampling).
    """
    if queries.inputs.shape[1:] != inputs.shape[1:]:
        raise CapacityError(
            f"query shape {queries.inputs.shape[1:]} does not match "
            f"training inputs {inputs.shape[1:]}"
        )
    poisoned_inputs = np.concatenate([inputs] + [queries.inputs] * repeats)
    poisoned_labels = np.concatenate(
        [np.asarray(labels)] + [queries.labels] * repeats
    )
    return poisoned_inputs, poisoned_labels


def extract_bits(
    model: Module,
    num_bits: int,
    image_shape: Tuple[int, int, int],
    num_classes: int,
    seed: int = 0,
) -> np.ndarray:
    """Black-box extraction: regenerate the queries, read predicted labels."""
    width = bits_per_query(num_classes)
    count = int(np.ceil(num_bits / width))
    inputs = generate_queries(count, image_shape, seed)
    predictions = predict_classes(model, inputs)
    return decode_labels_as_bits(predictions, num_classes, num_bits)
