"""Extracting embedded images back out of a released model.

The adversary has white-box access to the released (possibly quantized)
model.  Decoding an image is a per-slice min-max remap of the weight
vector to [0, 255] (paper Sec. II-B).

**Polarity.**  Because Eq. 1 maximises the *absolute* correlation, the
decoded slice may come out inverted.  Note that most single-image
statistics -- including total variation -- are negation-invariant
(TV(255-x) == TV(x)), so polarity is NOT recoverable from one slice
alone; ``polarity="auto"``'s TV comparison only breaks ties through
rounding asymmetries and should be treated as a coin flip on a single
image.  Real adversaries resolve the sign either (a) by eye (Song et
al.'s approach: inspect both decodings), (b) by training with
``CorrelationPenalty(sign_mode="positive")`` so no ambiguity exists, or
(c) with a dataset prior (e.g. faces are bright-background).  For
metrics, ``polarity="reference"`` gives the oracle upper bound.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.secret import SecretPayload
from repro.errors import CapacityError
from repro.models.introspect import parameter_vector
from repro.nn.module import Module


def extract_weight_vector(model: Module, names: Optional[Sequence[str]] = None) -> np.ndarray:
    """Flatten (a subset of) the model's encodable weights, layer order."""
    return parameter_vector(model, list(names) if names is not None else None)


def total_variation(image: np.ndarray) -> float:
    """Mean absolute difference between neighbouring pixels (smoothness)."""
    image = np.asarray(image, dtype=np.float64)
    if image.ndim == 2:
        image = image[..., None]
    dx = np.abs(np.diff(image, axis=1)).mean() if image.shape[1] > 1 else 0.0
    dy = np.abs(np.diff(image, axis=0)).mean() if image.shape[0] > 1 else 0.0
    return float(dx + dy)


def _remap_to_pixels(values: np.ndarray) -> np.ndarray:
    low = values.min()
    high = values.max()
    if high - low < 1e-12:
        return np.full(values.shape, 128.0)
    return (values - low) / (high - low) * 255.0


def decode_slice(
    values: np.ndarray,
    image_shape: Tuple[int, int, int],
    polarity: str = "auto",
    reference: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Decode one weight slice into a uint8 image.

    Args:
        values: flat weight slice of length H*W*C.
        image_shape: (H, W, C).
        polarity: ``"pos"``, ``"neg"``, ``"auto"`` (total-variation
            heuristic -- what a real adversary does), or ``"reference"``
            (pick the polarity closer to ``reference``; metric use only).
        reference: original uint8 image, required for ``"reference"``.
    """
    height, width, channels = image_shape
    expected = height * width * channels
    if values.size != expected:
        raise CapacityError(f"slice has {values.size} values, image needs {expected}")
    positive = _remap_to_pixels(values.astype(np.float64)).reshape(image_shape)
    if polarity == "pos":
        return np.clip(np.round(positive), 0, 255).astype(np.uint8)
    negative = 255.0 - positive
    if polarity == "neg":
        return np.clip(np.round(negative), 0, 255).astype(np.uint8)
    if polarity == "auto":
        # Natural images concentrate mass away from the extremes less
        # symmetrically than their negatives; TV picks the smoother of
        # the two remaps of the *noisy* decoded slice.
        chosen = positive if total_variation(positive) <= total_variation(negative) else negative
        return np.clip(np.round(chosen), 0, 255).astype(np.uint8)
    if polarity == "reference":
        if reference is None:
            raise CapacityError("polarity='reference' needs a reference image")
        ref = reference.astype(np.float64)
        err_pos = np.abs(positive - ref).mean()
        err_neg = np.abs(negative - ref).mean()
        chosen = positive if err_pos <= err_neg else negative
        return np.clip(np.round(chosen), 0, 255).astype(np.uint8)
    raise CapacityError(f"unknown polarity {polarity!r}")


def decode_images(
    weights: np.ndarray,
    payload: SecretPayload,
    polarity: str = "reference",
) -> np.ndarray:
    """Decode every payload image from a flat weight vector.

    The first ``len(payload) * pixels_per_image`` weights are split into
    per-image slices in payload order (the same layout the encoder's
    secret vector used).

    Returns:
        uint8 array (n, H, W, C) of reconstructions.
    """
    from repro.telemetry.metrics import default_registry
    from repro.telemetry.trace import timed_stage

    needed = payload.total_pixels
    if weights.size < needed:
        raise CapacityError(
            f"weight vector has {weights.size} entries, payload needs {needed}"
        )
    out = np.empty_like(payload.images)
    with timed_stage("attack.decode", images=len(payload), polarity=polarity):
        for index, slc in enumerate(payload.image_slices()):
            reference = payload.images[index] if polarity == "reference" else None
            out[index] = decode_slice(
                weights[slc], payload.image_shape, polarity=polarity, reference=reference
            )
    default_registry().counter("attack.decode.images").inc(len(payload))
    return out


def decode_preview(
    groups,
    max_images: int = 4,
    polarity: str = "reference",
) -> Tuple[np.ndarray, np.ndarray, List[str]]:
    """Cheap partial decode: at most ``max_images`` images across groups.

    The mid-training probe entry point (see :mod:`repro.monitor`): runs
    the same min-max remap as :func:`decode_groups` but stops after
    ``max_images`` reconstructions, so the cost is bounded by the
    preview size instead of the full payload.  Images are taken in
    group/payload order -- the same images every call, which is what
    makes the per-epoch PSNR trajectory comparable.

    Returns:
        (reconstructions, originals, group_names), like
        :func:`decode_groups` but truncated.
    """
    if max_images < 1:
        raise CapacityError(f"max_images must be >= 1, got {max_images}")
    recon_parts: List[np.ndarray] = []
    orig_parts: List[np.ndarray] = []
    names: List[str] = []
    remaining = int(max_images)
    for group in groups:
        if group.payload is None or remaining == 0:
            continue
        count = min(remaining, len(group.payload))
        preview = group.payload.take(count)
        # Only the first count * pixels_per_image weights are touched.
        weights = group.weight_vector()[: preview.total_pixels]
        recon_parts.append(decode_images(weights, preview, polarity=polarity))
        orig_parts.append(preview.images)
        names.extend([group.name] * count)
        remaining -= count
    if not recon_parts:
        raise CapacityError("no group holds a payload to decode")
    return np.concatenate(recon_parts), np.concatenate(orig_parts), names


def decode_groups(
    groups,
    polarity: str = "reference",
) -> Tuple[np.ndarray, np.ndarray, List[str]]:
    """Decode every image from every active layer group.

    Args:
        groups: sequence of :class:`~repro.attacks.layerwise.LayerGroup`
            with payloads assigned.

    Returns:
        (reconstructions, originals, group_names) stacked over all
        active groups, in group order.
    """
    recon_parts: List[np.ndarray] = []
    orig_parts: List[np.ndarray] = []
    names: List[str] = []
    for group in groups:
        if group.payload is None:
            continue
        weights = group.weight_vector()
        recon_parts.append(decode_images(weights, group.payload, polarity=polarity))
        orig_parts.append(group.payload.images)
        names.extend([group.name] * len(group.payload))
    if not recon_parts:
        raise CapacityError("no group holds a payload to decode")
    return np.concatenate(recon_parts), np.concatenate(orig_parts), names
