"""Sign encoding attack (Song et al. CCS'17 baseline).

Each parameter's sign bit carries one secret bit: a penalty term

    P(theta, b) = lambda_s * mean( max(0, -theta_i * b_i) )

pushes ``sign(theta_i)`` towards ``b_i`` in {-1, +1} during training.
Capacity is one bit per parameter -- the paper's point that this attack
is far less efficient than correlated value encoding.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.errors import CapacityError
from repro.nn.module import Parameter


class SignEncodingPenalty:
    """Hinge penalty that aligns parameter signs with secret bits."""

    def __init__(self, params: Sequence[Parameter], secret_bits: np.ndarray, rate: float) -> None:
        self.params: List[Parameter] = list(params)
        bits = np.asarray(secret_bits).reshape(-1)
        if not np.all((bits == 0) | (bits == 1)):
            raise CapacityError("secret bits must be 0/1")
        total = sum(p.size for p in self.params)
        self.length = min(total, bits.size)
        if self.length == 0:
            raise CapacityError("no capacity for sign encoding")
        signs = bits[: self.length].astype(np.float64) * 2.0 - 1.0
        self._target = Tensor(signs)
        self.rate = float(rate)

    def __call__(self) -> Tensor:
        from repro.attacks.correlated import flatten_parameters
        theta = flatten_parameters(self.params)
        theta = F.getitem(theta, slice(0, self.length))
        hinge = F.relu(F.neg(F.mul(theta, self._target)))
        return F.mul(F.mean(hinge), Tensor(self.rate))

    def bit_accuracy(self) -> float:
        """Fraction of parameters whose sign currently matches its bit."""
        theta = np.concatenate([p.data.reshape(-1) for p in self.params])[: self.length]
        return float(((theta >= 0) == (self._target.data > 0)).mean())


def sign_decode_bits(params: Sequence[Parameter], num_bits: int) -> np.ndarray:
    """Read secret bits back from parameter signs (>= 0 decodes as 1)."""
    theta = np.concatenate([p.data.reshape(-1) for p in params])
    if num_bits > theta.size:
        raise CapacityError(f"requested {num_bits} bits but only {theta.size} parameters")
    return (theta[:num_bits] >= 0).astype(np.uint8)
