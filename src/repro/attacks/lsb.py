"""LSB encoding attack (Song et al. CCS'17 baseline).

Replaces the least-significant mantissa bits of float32 model weights
with a secret bit string after training.  As the paper notes
(Sec. II-B), quantization trivially defeats this attack: the replaced
bits do not survive any re-discretisation of the weights.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import CapacityError
from repro.nn.module import Module, Parameter


def lsb_capacity_bits(params: Sequence[Parameter], bits_per_weight: int) -> int:
    """Total secret bits the parameter set can carry."""
    if not 1 <= bits_per_weight <= 23:
        raise CapacityError("bits_per_weight must be within the float32 mantissa (1..23)")
    return sum(p.size for p in params) * bits_per_weight


def bytes_to_bits(data: bytes) -> np.ndarray:
    """Big-endian bit expansion of a byte string."""
    return np.unpackbits(np.frombuffer(data, dtype=np.uint8))


def bits_to_bytes(bits: np.ndarray) -> bytes:
    if len(bits) % 8:
        raise CapacityError(f"bit string length {len(bits)} is not a multiple of 8")
    return np.packbits(bits.astype(np.uint8)).tobytes()


def lsb_encode(params: Sequence[Parameter], secret_bits: np.ndarray, bits_per_weight: int) -> int:
    """Overwrite the low mantissa bits of each weight with secret bits.

    Weights are viewed as float32 (the released-model precision), the
    low ``bits_per_weight`` bits of each are replaced in flat layer
    order, and the parameters are updated in place.

    Returns:
        number of secret bits actually embedded.
    """
    capacity = lsb_capacity_bits(params, bits_per_weight)
    secret_bits = np.asarray(secret_bits).astype(np.uint32)
    used = min(capacity, secret_bits.size)
    mask = np.uint32(0xFFFFFFFF) ^ np.uint32((1 << bits_per_weight) - 1)
    offset = 0
    for param in params:
        if offset >= used:
            break
        flat32 = param.data.astype(np.float32).reshape(-1)
        raw = flat32.view(np.uint32).copy()
        count = min((used - offset) // bits_per_weight, raw.size)
        if count == 0:
            break
        chunk = secret_bits[offset:offset + count * bits_per_weight].reshape(count, bits_per_weight)
        packed = np.zeros(count, dtype=np.uint32)
        for bit_index in range(bits_per_weight):
            packed = (packed << np.uint32(1)) | chunk[:, bit_index]
        raw[:count] = (raw[:count] & mask) | packed
        param.data = raw.view(np.float32).reshape(param.shape).astype(param.data.dtype)
        offset += count * bits_per_weight
    return offset


def lsb_decode(params: Sequence[Parameter], num_bits: int, bits_per_weight: int) -> np.ndarray:
    """Read back ``num_bits`` secret bits embedded by :func:`lsb_encode`."""
    capacity = lsb_capacity_bits(params, bits_per_weight)
    if num_bits > capacity:
        raise CapacityError(f"requested {num_bits} bits but capacity is {capacity}")
    out = np.empty(num_bits, dtype=np.uint8)
    offset = 0
    for param in params:
        if offset >= num_bits:
            break
        raw = param.data.astype(np.float32).reshape(-1).view(np.uint32)
        count = min((num_bits - offset + bits_per_weight - 1) // bits_per_weight, raw.size)
        values = raw[:count]
        for weight_index in range(count):
            for bit_index in range(bits_per_weight):
                if offset >= num_bits:
                    break
                shift = bits_per_weight - 1 - bit_index
                out[offset] = (values[weight_index] >> np.uint32(shift)) & np.uint32(1)
                offset += 1
    return out


def model_weight_params(model: Module) -> list:
    """Convenience: the encodable weight parameters of a model."""
    from repro.models.introspect import encodable_parameters
    return [p for _, p in encodable_parameters(model)]
