"""Capacity estimation: how many images fit into which weights.

The paper's pre-processing "estimates the number of images that can be
encoded (n) based on the parameter amount and image size"; these helpers
implement that arithmetic for whole models and per layer group.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.errors import CapacityError
from repro.models.introspect import encodable_parameters
from repro.nn.module import Module


def estimate_image_capacity(num_weights: int, pixels_per_image: int) -> int:
    """Whole images encodable into ``num_weights`` parameters."""
    if pixels_per_image <= 0:
        raise CapacityError(f"pixels_per_image must be positive, got {pixels_per_image}")
    return max(0, num_weights // pixels_per_image)


def model_image_capacity(model: Module, image_shape: Tuple[int, int, int]) -> int:
    """Capacity of all encodable weights of a model."""
    height, width, channels = image_shape
    total = sum(p.size for _, p in encodable_parameters(model))
    return estimate_image_capacity(total, height * width * channels)


def group_capacities(groups: Sequence, pixels_per_image: int) -> Dict[str, int]:
    """Per-group image capacity (groups with rate 0 report 0)."""
    out: Dict[str, int] = {}
    for group in groups:
        if group.rate == 0.0:
            out[group.name] = 0
        else:
            out[group.name] = estimate_image_capacity(group.num_weights, pixels_per_image)
    return out
