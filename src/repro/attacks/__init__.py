"""Data-stealing attacks on ML models (Song et al. CCS'17 + DAC'20 paper).

* :mod:`repro.attacks.secret` -- packaging training images into the
  secret vector ``s`` and assigning parameter slices.
* :mod:`repro.attacks.correlated` -- Eq. 1 correlated value encoding.
* :mod:`repro.attacks.layerwise` -- Eq. 2 layer-wise correlation
  regularization (the paper's contribution).
* :mod:`repro.attacks.lsb` / :mod:`repro.attacks.sign` -- the two
  baseline encoding attacks.
* :mod:`repro.attacks.decoder` -- extracting images back out of a
  released model's weights.
* :mod:`repro.attacks.capacity` -- how many images fit where.
"""

from repro.attacks.secret import SecretPayload
from repro.attacks.correlated import CorrelationPenalty, pearson_correlation
from repro.attacks.layerwise import LayerGroup, LayerwiseCorrelationPenalty, group_by_layer_ranges
from repro.attacks.decoder import (
    decode_groups,
    decode_images,
    decode_slice,
    extract_weight_vector,
    total_variation,
)
from repro.attacks.lsb import lsb_capacity_bits, lsb_decode, lsb_encode
from repro.attacks.sign import SignEncodingPenalty, sign_decode_bits
from repro.attacks.capacity import estimate_image_capacity, group_capacities
from repro.attacks.image_codec import (
    bit_error_rate,
    bits_to_images,
    images_to_bits,
    lsb_image_capacity,
    sign_image_capacity,
)
from repro.attacks.capacity_abuse import (
    SyntheticQuerySet,
    bits_per_query,
    build_query_set,
    extract_bits,
    poison_training_set,
)
from repro.attacks.model_inversion import (
    InversionConfig,
    invert_class,
    inversion_quality_vs_class,
)
from repro.attacks.membership import (
    MembershipResult,
    membership_inference,
    per_sample_loss,
)

__all__ = [
    "SecretPayload", "CorrelationPenalty", "pearson_correlation",
    "LayerGroup", "LayerwiseCorrelationPenalty", "group_by_layer_ranges",
    "decode_groups", "decode_images", "decode_slice",
    "extract_weight_vector", "total_variation",
    "lsb_encode", "lsb_decode", "lsb_capacity_bits",
    "SignEncodingPenalty", "sign_decode_bits",
    "estimate_image_capacity", "group_capacities",
    "images_to_bits", "bits_to_images", "bit_error_rate",
    "lsb_image_capacity", "sign_image_capacity",
    "SyntheticQuerySet", "bits_per_query", "build_query_set",
    "poison_training_set", "extract_bits",
    "InversionConfig", "invert_class", "inversion_quality_vs_class",
    "MembershipResult", "membership_inference", "per_sample_loss",
]
