"""Correlated value encoding attack (Eq. 1 of the paper; Song et al. CCS'17).

The malicious regularizer

    C(theta, s) = -lambda_c * |pearson(theta, s)|

is added to the training loss.  Minimising it drives the weight vector
towards (an affine image of) the secret pixel vector, which the
adversary later inverts with a min-max remap.  The penalty is built from
autograd primitives, so its gradient w.r.t. every weight tensor flows
through the normal backward pass -- exactly how the "seemingly normal
regularizer" hides inside a stock training loop.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.errors import CapacityError
from repro.nn.module import Parameter


def pearson_correlation(theta: Tensor, secret: Tensor) -> Tensor:
    """Differentiable Pearson correlation between two flat tensors."""
    theta_centered = F.sub(theta, F.mean(theta))
    secret_centered = F.sub(secret, F.mean(secret))
    covariance = F.sum(F.mul(theta_centered, secret_centered))
    theta_norm = F.sqrt(F.sum(F.mul(theta_centered, theta_centered)))
    secret_norm = F.sqrt(F.sum(F.mul(secret_centered, secret_centered)))
    return F.div(covariance, F.add(F.mul(theta_norm, secret_norm), Tensor(1e-12)))


def flatten_parameters(params: Sequence[Parameter]) -> Tensor:
    """Differentiably concatenate parameter tensors into one flat vector."""
    if not params:
        raise CapacityError("no parameters supplied for correlation")
    flats = [F.reshape(p, (-1,)) for p in params]
    if len(flats) == 1:
        return flats[0]
    return F.concat(flats, axis=0)


class CorrelationPenalty:
    """Eq. 1: ``-lambda_c * |corr(theta, s)|`` over a set of weight tensors.

    Args:
        params: weight tensors whose concatenation is ``theta``.
        secret: the flat pixel vector ``s``.
        rate: the correlation rate ``lambda_c``.
        sign_mode: ``"abs"`` is the paper's Eq. 1 (maximise |corr|; the
            converged sign is then decided by initialisation randomness
            and must be recovered at decode time -- see
            ``quantization.target_correlated.detect_flip``).
            ``"positive"`` drops the absolute value (``-lambda * corr``),
            locking a positive correlation: decoding needs no polarity
            resolution at all.  Both are within the adversary's power;
            "abs" is the default for paper fidelity.

    The correlation runs over the first ``min(len(theta), len(s))``
    entries, mirroring the paper's "number of images estimated from the
    parameter amount" capacity rule.
    """

    def __init__(self, params: Sequence[Parameter], secret: np.ndarray, rate: float,
                 sign_mode: str = "abs") -> None:
        self.params: List[Parameter] = list(params)
        secret = np.asarray(secret, dtype=np.float64).reshape(-1)
        if secret.size == 0:
            raise CapacityError("secret vector is empty")
        total = sum(p.size for p in self.params)
        self.length = min(total, secret.size)
        if self.length < 2:
            raise CapacityError("need at least two correlated entries")
        # Keep the float64 reference copy for monitoring; the tensor fed
        # into the graph matches the parameters' dtype lazily so the
        # penalty never upcasts a float32 model (see __call__).
        self._secret_array = secret[: self.length]
        self._secret = Tensor(self._secret_array)
        self.rate = float(rate)
        if sign_mode not in ("abs", "positive"):
            raise CapacityError(f"sign_mode must be 'abs' or 'positive', got {sign_mode!r}")
        self.sign_mode = sign_mode

    def __call__(self) -> Tensor:
        """The penalty term to add to the training loss."""
        theta = flatten_parameters(self.params)
        theta = F.getitem(theta, slice(0, self.length))
        if self._secret.data.dtype != theta.data.dtype:
            self._secret = Tensor(
                self._secret_array.astype(theta.data.dtype, copy=False))
        corr = pearson_correlation(theta, self._secret)
        if self.sign_mode == "abs":
            corr = F.abs(corr)
        return F.mul(corr, Tensor(-self.rate))

    def correlation_value(self) -> float:
        """Current (non-differentiable) correlation, for monitoring.

        Always accumulated in float64 (``precision.METRICS_DTYPE``)
        regardless of the training dtype -- this is the Eq. 2 probe
        value that lands in paper tables.
        """
        theta = np.concatenate(
            [p.data.reshape(-1).astype(np.float64) for p in self.params]
        )[: self.length]
        secret = self._secret_array
        theta_c = theta - theta.mean()
        secret_c = secret - secret.mean()
        denom = np.sqrt((theta_c ** 2).sum()) * np.sqrt((secret_c ** 2).sum()) + 1e-12
        return float((theta_c * secret_c).sum() / denom)
