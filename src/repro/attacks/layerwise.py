"""Layer-wise correlation training regularization (Eq. 2, Sec. IV-B).

The paper's observation: early layers are both accuracy-critical and
naturally hard to correlate with pixel data (Table II), so a uniform
correlation rate wastes capacity and hurts accuracy.  Eq. 2 instead
assigns a rate ``lambda_k`` per layer *group*:

    C(theta, s) = - sum_k  lambda_k * |pearson(theta_k, s_k)| * P_k

with ``P_k = l_k / l`` the group's share of the correlated weights.
Groups with ``lambda_k = 0`` are excluded from encoding entirely (the
paper's final configuration zeroes groups 1 and 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.correlated import CorrelationPenalty
from repro.attacks.secret import SecretPayload
from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.errors import CapacityError, ConfigError
from repro.models.introspect import encodable_parameters
from repro.nn.module import Module, Parameter


@dataclass
class LayerGroup:
    """A contiguous group of encodable layers sharing one rate."""

    name: str
    param_names: List[str]
    params: List[Parameter]
    rate: float
    payload: Optional[SecretPayload] = None

    @property
    def num_weights(self) -> int:
        return sum(p.size for p in self.params)

    def capacity(self, pixels_per_image: int) -> int:
        """Whole images this group can encode."""
        return self.num_weights // pixels_per_image

    def weight_vector(self) -> np.ndarray:
        return np.concatenate([p.data.reshape(-1) for p in self.params])


def group_by_layer_ranges(
    model: Module,
    ranges: Sequence[Tuple[int, int]],
    rates: Sequence[float],
    names: Optional[Sequence[str]] = None,
) -> List[LayerGroup]:
    """Split a model's encodable layers into groups by 1-based index ranges.

    ``ranges`` follows the paper's convention, e.g. ResNet-34 groups
    ``[(1, 12), (13, 16), (17, 34)]``.  An end of ``-1`` means "through
    the last layer".  Ranges must be contiguous from layer 1 and cover
    every encodable layer.
    """
    if len(ranges) != len(rates):
        raise ConfigError("ranges and rates must have the same length")
    layers = encodable_parameters(model)
    total = len(layers)
    resolved = []
    for start, end in ranges:
        resolved.append((start, total if end == -1 else end))
    expected_start = 1
    for start, end in resolved:
        if start != expected_start:
            raise ConfigError(f"ranges must be contiguous from 1; got start {start}, expected {expected_start}")
        if end < start:
            raise ConfigError(f"empty range ({start}, {end})")
        expected_start = end + 1
    if resolved[-1][1] != total:
        raise ConfigError(
            f"ranges cover layers 1..{resolved[-1][1]} but the model has {total} encodable layers"
        )
    groups: List[LayerGroup] = []
    for index, ((start, end), rate) in enumerate(zip(resolved, rates)):
        members = layers[start - 1:end]
        group_name = names[index] if names else f"group{index + 1}"
        groups.append(LayerGroup(
            name=group_name,
            param_names=[n for n, _ in members],
            params=[p for _, p in members],
            rate=float(rate),
        ))
    return groups


def assign_payload(
    groups: Sequence[LayerGroup], payload: SecretPayload
) -> int:
    """Distribute whole images across encoding groups in order.

    Groups with ``rate == 0`` are skipped (the paper's defensive
    grouping).  Each group receives as many whole images as its weight
    count can hold.  Returns the number of images actually assigned;
    groups' ``payload`` fields are filled in place.
    """
    pixels = payload.pixels_per_image
    remaining = len(payload)
    offset = 0
    for group in groups:
        if group.rate == 0.0 or remaining == 0:
            group.payload = None
            continue
        count = min(group.capacity(pixels), remaining)
        if count == 0:
            group.payload = None
            continue
        group.payload = SecretPayload(
            payload.images[offset:offset + count],
            payload.labels[offset:offset + count],
        )
        offset += count
        remaining -= count
    return offset


class LayerwiseCorrelationPenalty:
    """Eq. 2: the sum of per-group correlation penalties weighted by P_k."""

    def __init__(self, groups: Sequence[LayerGroup]) -> None:
        self.groups: List[LayerGroup] = list(groups)
        active = [g for g in self.groups if g.rate > 0.0 and g.payload is not None]
        if not active:
            raise CapacityError("no active encoding groups (all rates zero or no payload)")
        self._total_weights = sum(g.num_weights for g in active)
        self._terms: List[Tuple[CorrelationPenalty, float]] = []
        for group in active:
            share = group.num_weights / self._total_weights
            penalty = CorrelationPenalty(group.params, group.payload.secret_vector(), group.rate)
            self._terms.append((penalty, share))

    def __call__(self) -> Tensor:
        from repro.telemetry.metrics import default_registry
        from repro.telemetry.trace import span

        with span("attack.encode.penalty", groups=len(self._terms)):
            total: Optional[Tensor] = None
            for penalty, share in self._terms:
                term = F.mul(penalty(), Tensor(share))
                total = term if total is None else F.add(total, term)
        default_registry().counter("attack.encode.penalty_calls").inc()
        return total

    def correlations(self) -> List[float]:
        """Current per-active-group correlation values (monitoring)."""
        return [penalty.correlation_value() for penalty, _ in self._terms]
