"""Dataset container shared by every generator and the pipeline."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DatasetError


class ImageDataset:
    """In-memory labelled image dataset.

    Attributes:
        images: uint8 array of shape (N, H, W, C) -- channels last, raw
            pixel values in [0, 255] exactly as the attack encodes them.
        labels: int64 array of shape (N,).
        class_names: optional list of human-readable class names.
    """

    def __init__(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        class_names: Optional[Sequence[str]] = None,
    ) -> None:
        images = np.asarray(images)
        labels = np.asarray(labels, dtype=np.int64)
        if images.ndim != 4:
            raise DatasetError(f"images must be (N, H, W, C), got shape {images.shape}")
        if images.dtype != np.uint8:
            raise DatasetError(f"images must be uint8 in [0, 255], got dtype {images.dtype}")
        if len(images) != len(labels):
            raise DatasetError(
                f"images ({len(images)}) and labels ({len(labels)}) differ in length"
            )
        self.images = images
        self.labels = labels
        if class_names is not None:
            class_names = list(class_names)
            if labels.size and labels.max() >= len(class_names):
                raise DatasetError("labels reference classes beyond class_names")
        self.class_names: Optional[List[str]] = class_names

    # --------------------------------------------------------------- shape
    def __len__(self) -> int:
        return len(self.images)

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        return self.images[index], int(self.labels[index])

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        return self.images.shape[1:]

    @property
    def num_classes(self) -> int:
        if self.class_names is not None:
            return len(self.class_names)
        return int(self.labels.max()) + 1 if len(self.labels) else 0

    @property
    def pixels_per_image(self) -> int:
        height, width, channels = self.image_shape
        return height * width * channels

    # ------------------------------------------------------------- subsets
    def subset(self, indices: Sequence[int]) -> "ImageDataset":
        """Select a subset (copy) of the dataset by index."""
        indices = np.asarray(indices)
        return ImageDataset(self.images[indices], self.labels[indices], self.class_names)

    # --------------------------------------------------------------- stats
    def per_image_std(self) -> np.ndarray:
        """Pixel-value standard deviation of each image (Sec. IV-A statistic)."""
        flat = self.images.reshape(len(self.images), -1).astype(np.float64)
        return flat.std(axis=1)

    def __repr__(self) -> str:
        return (
            f"ImageDataset(n={len(self)}, shape={self.image_shape}, "
            f"classes={self.num_classes})"
        )
