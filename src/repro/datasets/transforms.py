"""Image transforms: grayscale conversion, batching, normalization."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.datasets.base import ImageDataset
from repro.errors import DatasetError

# ITU-R BT.601 luma coefficients, the standard RGB->gray conversion.
_LUMA = np.array([0.299, 0.587, 0.114])


def to_grayscale(dataset: ImageDataset) -> ImageDataset:
    """Convert an RGB dataset to single-channel grayscale (BT.601 luma)."""
    if dataset.image_shape[2] == 1:
        return dataset
    if dataset.image_shape[2] != 3:
        raise DatasetError(f"expected 1 or 3 channels, got {dataset.image_shape[2]}")
    gray = (dataset.images.astype(np.float64) @ _LUMA)
    gray = np.clip(np.round(gray), 0, 255).astype(np.uint8)[..., None]
    return ImageDataset(gray, dataset.labels, dataset.class_names)


def images_to_batch(images: np.ndarray) -> np.ndarray:
    """uint8 NHWC images -> float NCHW batch scaled to [0, 1]."""
    batch = np.asarray(images, dtype=np.float64) / 255.0
    if batch.ndim == 3:
        batch = batch[None]
    return np.ascontiguousarray(batch.transpose(0, 3, 1, 2))


def normalize_batch(
    batch: np.ndarray,
    mean: Optional[np.ndarray] = None,
    std: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Standardise an NCHW batch per channel; returns (batch, mean, std)."""
    if mean is None:
        mean = batch.mean(axis=(0, 2, 3))
    if std is None:
        std = batch.std(axis=(0, 2, 3))
        std = np.where(std < 1e-8, 1.0, std)
    shaped_mean = np.asarray(mean).reshape(1, -1, 1, 1)
    shaped_std = np.asarray(std).reshape(1, -1, 1, 1)
    return (batch - shaped_mean) / shaped_std, np.asarray(mean), np.asarray(std)


def flip_mask(
    rng: np.random.Generator, count: int, probability: float = 0.5
) -> np.ndarray:
    """Draw the per-image flip decisions for a batch of ``count`` images.

    Exactly one ``rng.random(count)`` call, so consumers that only apply
    a *slice* of the mask (data-parallel ranks covering a shard of the
    batch) still advance the generator identically to a serial run over
    the full batch.
    """
    return rng.random(count) < probability


def apply_flip_mask(batch: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Flip the masked subset of an NCHW batch left-right (copying)."""
    out = batch.copy()
    out[mask] = out[mask, :, :, ::-1]
    return out


def random_flip_horizontal(
    batch: np.ndarray, rng: np.random.Generator, probability: float = 0.5
) -> np.ndarray:
    """Flip a random subset of an NCHW batch left-right (augmentation)."""
    return apply_flip_mask(batch, flip_mask(rng, len(batch), probability))
