"""Procedural CIFAR-10 stand-in.

Each class is a parameterised texture family (oriented sinusoid + radial
blob + class palette); each instance jitters phase, blob position, noise
and -- importantly -- per-image *contrast*, which spreads the per-image
pixel standard deviation over a wide range.  That spread is what the
paper's Sec. IV-A pre-processing selects on (std in a window around the
dataset mean), so the generator controls it explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.datasets.base import ImageDataset
from repro.errors import DatasetError


@dataclass(frozen=True)
class SyntheticCifarConfig:
    """Configuration for :func:`make_synthetic_cifar`."""

    num_images: int = 600
    num_classes: int = 10
    image_size: int = 32
    channels: int = 3
    noise_sigma: float = 12.0
    contrast_range: Tuple[float, float] = (0.45, 1.55)
    seed: int = 0

    def validate(self) -> None:
        if self.num_images < self.num_classes:
            raise DatasetError("need at least one image per class")
        if self.channels not in (1, 3):
            raise DatasetError(f"channels must be 1 or 3, got {self.channels}")
        if self.image_size < 8:
            raise DatasetError("image_size must be at least 8")
        low, high = self.contrast_range
        if not 0 < low <= high:
            raise DatasetError(f"invalid contrast range {self.contrast_range}")


def _class_parameters(num_classes: int, channels: int, rng: np.random.Generator):
    """Draw per-class texture parameters, spread to keep classes separable."""
    params = []
    for index in range(num_classes):
        orientation = np.pi * index / num_classes + rng.normal(0, 0.05)
        frequency = 1.0 + 3.0 * ((index * 7) % num_classes) / num_classes + rng.normal(0, 0.1)
        palette_a = rng.uniform(40, 215, size=channels)
        palette_b = rng.uniform(40, 215, size=channels)
        # Force the two palette colours apart so the texture has contrast
        # -- in luminance too, so the grayscale variant stays separable.
        luma = np.array([0.299, 0.587, 0.114])[:channels]
        luma = luma / luma.sum()

        def _too_close(a, b):
            return (np.abs(a - b).mean() < 60
                    or abs(float(a @ luma) - float(b @ luma)) < 50)

        while _too_close(palette_a, palette_b):
            palette_b = rng.uniform(40, 215, size=channels)
        blob_strength = rng.uniform(0.3, 0.9)
        params.append((orientation, frequency, palette_a, palette_b, blob_strength))
    return params


def _render_image(
    size: int,
    channels: int,
    class_params,
    rng: np.random.Generator,
    noise_sigma: float,
    contrast: float,
) -> np.ndarray:
    orientation, frequency, palette_a, palette_b, blob_strength = class_params
    ys, xs = np.mgrid[0:size, 0:size] / size
    phase = rng.uniform(0, 2 * np.pi)
    wave = np.sin(
        2 * np.pi * frequency * (xs * np.cos(orientation) + ys * np.sin(orientation)) + phase
    ) * 0.5 + 0.5

    blob_x, blob_y = rng.uniform(0.25, 0.75, size=2)
    blob_radius = rng.uniform(0.15, 0.3)
    distance = np.sqrt((xs - blob_x) ** 2 + (ys - blob_y) ** 2)
    blob = np.exp(-(distance / blob_radius) ** 2)

    mix = np.clip(wave * (1 - blob_strength) + blob * blob_strength, 0.0, 1.0)
    image = mix[..., None] * palette_a + (1 - mix[..., None]) * palette_b

    # Contrast about the mid-grey point controls the per-image std.
    image = 128.0 + (image - 128.0) * contrast
    image = image + rng.normal(0, noise_sigma, size=image.shape)
    return np.clip(image, 0, 255).astype(np.uint8)


def make_synthetic_cifar(config: SyntheticCifarConfig = SyntheticCifarConfig()) -> ImageDataset:
    """Generate the synthetic CIFAR-like dataset described in DESIGN.md."""
    config.validate()
    rng = np.random.default_rng(config.seed)
    class_params = _class_parameters(config.num_classes, config.channels, rng)

    labels = np.arange(config.num_images) % config.num_classes
    rng.shuffle(labels)
    low, high = config.contrast_range
    images = np.empty(
        (config.num_images, config.image_size, config.image_size, config.channels),
        dtype=np.uint8,
    )
    for index, label in enumerate(labels):
        contrast = rng.uniform(low, high)
        images[index] = _render_image(
            config.image_size, config.channels, class_params[label],
            rng, config.noise_sigma, contrast,
        )
    class_names = [f"texture_{k}" for k in range(config.num_classes)]
    return ImageDataset(images, labels, class_names)
