"""Procedural FaceScrub stand-in: identity-consistent synthetic faces.

Each identity is a vector of facial-geometry parameters (face ellipse,
eye spacing/size, brow offset, nose length, mouth width/curvature, skin
tone, hair shade); each instance of that identity jitters position,
lighting and noise.  The resulting images are smooth and structured,
which is exactly what SSIM-based texture comparisons (Table IV, Fig. 5)
measure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.base import ImageDataset
from repro.errors import DatasetError


@dataclass(frozen=True)
class SyntheticFacesConfig:
    """Configuration for :func:`make_synthetic_faces`."""

    num_identities: int = 50
    images_per_identity: int = 10
    image_size: int = 32
    channels: int = 1
    noise_sigma: float = 6.0
    seed: int = 0

    def validate(self) -> None:
        if self.num_identities < 2:
            raise DatasetError("need at least two identities")
        if self.images_per_identity < 1:
            raise DatasetError("need at least one image per identity")
        if self.channels not in (1, 3):
            raise DatasetError(f"channels must be 1 or 3, got {self.channels}")
        if self.image_size < 16:
            raise DatasetError("faces need image_size >= 16")


@dataclass(frozen=True)
class _Identity:
    face_width: float
    face_height: float
    eye_spacing: float
    eye_size: float
    eye_height: float
    brow_offset: float
    nose_length: float
    mouth_width: float
    mouth_curve: float
    skin_tone: float
    hair_shade: float
    eye_shade: float


def _draw_identity(rng: np.random.Generator) -> _Identity:
    return _Identity(
        face_width=rng.uniform(0.30, 0.42),
        face_height=rng.uniform(0.38, 0.48),
        eye_spacing=rng.uniform(0.12, 0.20),
        eye_size=rng.uniform(0.035, 0.06),
        eye_height=rng.uniform(0.40, 0.46),
        brow_offset=rng.uniform(0.05, 0.09),
        nose_length=rng.uniform(0.10, 0.16),
        mouth_width=rng.uniform(0.10, 0.18),
        mouth_curve=rng.uniform(-0.05, 0.08),
        skin_tone=rng.uniform(150, 220),
        hair_shade=rng.uniform(30, 110),
        eye_shade=rng.uniform(20, 80),
    )


def _render_face(
    identity: _Identity,
    size: int,
    rng: np.random.Generator,
    noise_sigma: float,
) -> np.ndarray:
    """Rasterise one face instance (grayscale, float in [0, 255])."""
    ys, xs = np.mgrid[0:size, 0:size] / size
    # Per-instance jitter: head position and lighting direction.
    cx = 0.5 + rng.normal(0, 0.02)
    cy = 0.52 + rng.normal(0, 0.02)
    image = np.full((size, size), 235.0)  # light background

    # Hair: a larger ellipse behind the face.
    hair = ((xs - cx) / (identity.face_width * 1.18)) ** 2 + (
        (ys - (cy - 0.05)) / (identity.face_height * 1.15)
    ) ** 2 <= 1.0
    image[hair] = identity.hair_shade

    # Face ellipse.
    face = ((xs - cx) / identity.face_width) ** 2 + (
        (ys - cy) / identity.face_height
    ) ** 2 <= 1.0
    image[face] = identity.skin_tone

    def ellipse(center_x, center_y, radius_x, radius_y):
        return ((xs - center_x) / radius_x) ** 2 + ((ys - center_y) / radius_y) ** 2 <= 1.0

    eye_y = cy - identity.face_height + 2 * identity.face_height * identity.eye_height
    for side in (-1.0, 1.0):
        eye_x = cx + side * identity.eye_spacing
        white = ellipse(eye_x, eye_y, identity.eye_size * 1.6, identity.eye_size)
        image[white] = 245.0
        pupil = ellipse(eye_x, eye_y, identity.eye_size * 0.6, identity.eye_size * 0.7)
        image[pupil] = identity.eye_shade
        brow = ellipse(eye_x, eye_y - identity.brow_offset,
                       identity.eye_size * 1.8, identity.eye_size * 0.45)
        image[brow] = identity.hair_shade * 0.8

    # Nose: vertical darker streak.
    nose = (np.abs(xs - cx) < 0.015) & (ys > eye_y + 0.03) & (
        ys < eye_y + 0.03 + identity.nose_length
    )
    image[nose] = identity.skin_tone * 0.82

    # Mouth: curved horizontal band.
    mouth_y = cy + identity.face_height * 0.55
    curve = identity.mouth_curve * ((xs - cx) / identity.mouth_width) ** 2
    mouth = (np.abs(xs - cx) < identity.mouth_width) & (
        np.abs(ys - (mouth_y + curve)) < 0.018
    )
    image[mouth] = 90.0

    # Lighting gradient + sensor noise.
    light_angle = rng.uniform(-0.4, 0.4)
    image = image * (1.0 + 0.12 * (xs - 0.5) * light_angle + 0.06 * (0.5 - ys))
    image = image + rng.normal(0, noise_sigma, size=image.shape)
    return np.clip(image, 0, 255)


def make_synthetic_faces(config: SyntheticFacesConfig = SyntheticFacesConfig()) -> ImageDataset:
    """Generate the synthetic face-recognition dataset."""
    config.validate()
    rng = np.random.default_rng(config.seed)
    identities = [_draw_identity(rng) for _ in range(config.num_identities)]

    total = config.num_identities * config.images_per_identity
    images = np.empty(
        (total, config.image_size, config.image_size, config.channels), dtype=np.uint8
    )
    labels = np.empty(total, dtype=np.int64)
    index = 0
    for identity_id, identity in enumerate(identities):
        for _ in range(config.images_per_identity):
            face = _render_face(identity, config.image_size, rng, config.noise_sigma)
            face = face.astype(np.uint8)
            if config.channels == 1:
                images[index] = face[..., None]
            else:
                # Mild colour cast per instance for the RGB variant.
                cast = rng.uniform(0.92, 1.08, size=3)
                images[index] = np.clip(face[..., None] * cast, 0, 255).astype(np.uint8)
            labels[index] = identity_id
            index += 1
    class_names = [f"identity_{k}" for k in range(config.num_identities)]
    return ImageDataset(images, labels, class_names)
