"""Persist datasets as npz archives.

Synthetic generation is fast, but pinning a dataset to disk makes an
experiment byte-reproducible across library versions (the generators'
output could legitimately change between releases).
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.datasets.base import ImageDataset
from repro.errors import DatasetError


def save_dataset(dataset: ImageDataset, path: Union[str, os.PathLike]) -> None:
    """Write a dataset (images, labels, class names) to an npz file."""
    payload = {
        "images": dataset.images,
        "labels": dataset.labels,
    }
    if dataset.class_names is not None:
        payload["class_names"] = np.array(dataset.class_names, dtype=np.str_)
    np.savez_compressed(path, **payload)


def load_dataset(path: Union[str, os.PathLike]) -> ImageDataset:
    """Read back a dataset written by :func:`save_dataset`."""
    with np.load(path, allow_pickle=False) as archive:
        if "images" not in archive or "labels" not in archive:
            raise DatasetError(f"{path!s} is not a saved ImageDataset")
        images = archive["images"]
        labels = archive["labels"]
        class_names = None
        if "class_names" in archive:
            class_names = [str(name) for name in archive["class_names"]]
    return ImageDataset(images, labels, class_names)
