"""Deterministic dataset splitting."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.datasets.base import ImageDataset
from repro.errors import DatasetError


def train_test_split(
    dataset: ImageDataset, test_fraction: float = 0.2, seed: int = 0
) -> Tuple[ImageDataset, ImageDataset]:
    """Shuffle and split a dataset; stratified by class.

    Stratification keeps every class present in both splits, which
    matters for the small datasets the CPU-scale benchmarks use.
    """
    if not 0.0 < test_fraction < 1.0:
        raise DatasetError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = np.random.default_rng(seed)
    train_indices, test_indices = [], []
    for label in np.unique(dataset.labels):
        members = np.flatnonzero(dataset.labels == label)
        rng.shuffle(members)
        cut = max(1, int(round(len(members) * test_fraction)))
        if cut >= len(members):
            cut = len(members) - 1
        test_indices.extend(members[:cut])
        train_indices.extend(members[cut:])
    return dataset.subset(sorted(train_indices)), dataset.subset(sorted(test_indices))
