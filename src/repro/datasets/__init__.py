"""Datasets for the reproduction.

The paper uses CIFAR-10 and FaceScrub; this offline environment has
neither, so both are replaced by deterministic procedural generators
that preserve the properties the attack depends on (see DESIGN.md):

* a learnable multi-class image classification task,
* a realistic spread of per-image pixel standard deviation (drives the
  Sec. IV-A data pre-processing), and
* for faces, identity-consistent smooth structure (drives SSIM results).
"""

from repro.datasets.base import ImageDataset
from repro.datasets.synthetic_cifar import SyntheticCifarConfig, make_synthetic_cifar
from repro.datasets.synthetic_faces import SyntheticFacesConfig, make_synthetic_faces
from repro.datasets.synthetic_digits import SyntheticDigitsConfig, make_synthetic_digits
from repro.datasets.transforms import (
    images_to_batch,
    normalize_batch,
    to_grayscale,
)
from repro.datasets.splits import train_test_split
from repro.datasets.io import load_dataset, save_dataset

__all__ = [
    "ImageDataset", "SyntheticCifarConfig", "make_synthetic_cifar",
    "SyntheticFacesConfig", "make_synthetic_faces",
    "SyntheticDigitsConfig", "make_synthetic_digits", "to_grayscale",
    "images_to_batch", "normalize_batch", "train_test_split",
    "save_dataset", "load_dataset",
]
