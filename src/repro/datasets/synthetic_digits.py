"""Procedural MNIST-like digits: stroke-rendered numerals 0-9.

A third dataset family for the model zoo and examples.  Each digit is
drawn as a set of line/arc strokes on a dark background, with
per-instance jitter in position, thickness, slant and noise -- the
classic easy-but-not-trivial benchmark shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np
from scipy.ndimage import gaussian_filter

from repro.datasets.base import ImageDataset
from repro.errors import DatasetError

# Each digit: list of strokes in a unit square; a stroke is either
# ("line", (x0, y0), (x1, y1)) or ("arc", (cx, cy), r, a0_deg, a1_deg).
_DIGIT_STROKES = {
    0: [("arc", (0.5, 0.5), 0.32, 0, 360)],
    1: [("line", (0.5, 0.15), (0.5, 0.85)), ("line", (0.38, 0.28), (0.5, 0.15))],
    2: [("arc", (0.5, 0.32), 0.22, 180, 420),
        ("line", (0.66, 0.45), (0.3, 0.85)), ("line", (0.3, 0.85), (0.72, 0.85))],
    3: [("arc", (0.48, 0.33), 0.19, 150, 400), ("arc", (0.48, 0.67), 0.19, 320, 570)],
    4: [("line", (0.62, 0.15), (0.62, 0.85)), ("line", (0.62, 0.15), (0.3, 0.6)),
        ("line", (0.3, 0.6), (0.75, 0.6))],
    5: [("line", (0.68, 0.15), (0.34, 0.15)), ("line", (0.34, 0.15), (0.32, 0.47)),
        ("arc", (0.5, 0.63), 0.21, 220, 500)],
    6: [("arc", (0.5, 0.62), 0.22, 0, 360), ("line", (0.33, 0.5), (0.52, 0.14))],
    7: [("line", (0.3, 0.15), (0.72, 0.15)), ("line", (0.72, 0.15), (0.45, 0.85))],
    8: [("arc", (0.5, 0.32), 0.17, 0, 360), ("arc", (0.5, 0.68), 0.2, 0, 360)],
    9: [("arc", (0.5, 0.36), 0.2, 0, 360), ("line", (0.68, 0.44), (0.52, 0.86))],
}


@dataclass(frozen=True)
class SyntheticDigitsConfig:
    """Configuration for :func:`make_synthetic_digits`."""

    num_images: int = 500
    image_size: int = 20
    noise_sigma: float = 8.0
    stroke_sigma: float = 0.7
    seed: int = 0

    def validate(self) -> None:
        if self.num_images < 10:
            raise DatasetError("need at least one image per digit class")
        if self.image_size < 12:
            raise DatasetError("digits need image_size >= 12")


def _stroke_points(stroke, jitter: np.ndarray, count: int = 80) -> Tuple[np.ndarray, np.ndarray]:
    kind = stroke[0]
    if kind == "line":
        (x0, y0), (x1, y1) = stroke[1], stroke[2]
        t = np.linspace(0.0, 1.0, count)
        xs = x0 + (x1 - x0) * t
        ys = y0 + (y1 - y0) * t
    else:  # arc
        (cx, cy), radius, a0, a1 = stroke[1], stroke[2], stroke[3], stroke[4]
        angles = np.radians(np.linspace(a0, a1, count))
        xs = cx + radius * np.cos(angles)
        ys = cy + radius * np.sin(angles)
    # Affine jitter: slant + shift.
    slant, dx, dy = jitter
    xs = xs + slant * (ys - 0.5) + dx
    ys = ys + dy
    return xs, ys


def _render_digit(digit: int, size: int, rng: np.random.Generator,
                  noise_sigma: float, stroke_sigma: float) -> np.ndarray:
    canvas = np.zeros((size, size))
    jitter = np.array([rng.normal(0, 0.08), rng.normal(0, 0.04), rng.normal(0, 0.04)])
    for stroke in _DIGIT_STROKES[digit]:
        xs, ys = _stroke_points(stroke, jitter)
        cols = np.clip((xs * (size - 1)).round().astype(int), 0, size - 1)
        rows = np.clip((ys * (size - 1)).round().astype(int), 0, size - 1)
        canvas[rows, cols] = 1.0
    # Thicken and soften the strokes, then scale to ink intensity.
    canvas = gaussian_filter(canvas, stroke_sigma)
    peak = canvas.max()
    if peak > 0:
        canvas = canvas / peak
    image = canvas * rng.uniform(180, 255)
    image = image + rng.normal(0, noise_sigma, size=image.shape)
    return np.clip(image, 0, 255)


def make_synthetic_digits(
    config: SyntheticDigitsConfig = SyntheticDigitsConfig(),
) -> ImageDataset:
    """Generate the stroke-rendered digits dataset (grayscale NHWC)."""
    config.validate()
    rng = np.random.default_rng(config.seed)
    labels = np.arange(config.num_images) % 10
    rng.shuffle(labels)
    images = np.empty((config.num_images, config.image_size, config.image_size, 1),
                      dtype=np.uint8)
    for index, digit in enumerate(labels):
        rendered = _render_digit(int(digit), config.image_size, rng,
                                 config.noise_sigma, config.stroke_sigma)
        images[index] = rendered.astype(np.uint8)[..., None]
    class_names = [str(d) for d in range(10)]
    return ImageDataset(images, labels.astype(np.int64), class_names)
