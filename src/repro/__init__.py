"""Reproduction of "Stealing Your Data from Compressed Machine Learning
Models" (Xu, Liu, Liu, Liu, Guo, Wen -- DAC 2020).

Public API tour:

* :mod:`repro.autograd` / :mod:`repro.nn` / :mod:`repro.models` -- the
  training substrate (numpy autograd, layers, ResNets).
* :mod:`repro.datasets` -- synthetic CIFAR-10 / FaceScrub stand-ins.
* :mod:`repro.preprocessing` -- Sec. IV-A target selection.
* :mod:`repro.attacks` -- correlated value encoding (Eq. 1), layer-wise
  regularization (Eq. 2), LSB/sign baselines, decoding.
* :mod:`repro.quantization` -- weighted-entropy / uniform / k-means
  quantizers and the paper's target-correlated Algorithm 1.
* :mod:`repro.metrics` -- MAPE, SSIM, accuracy, recognizability.
* :mod:`repro.pipeline` -- the end-to-end Fig. 1 attack flow plus the
  benign and original-attack baselines.
* :mod:`repro.telemetry` -- metrics registry, span tracing, structured
  run logging and the autograd op profiler.
* :mod:`repro.precision` -- process/context-scoped compute dtype policy
  (float32 training by default; ``use_dtype("float64")`` to widen).

Quickstart::

    from repro.datasets import make_synthetic_cifar, train_test_split
    from repro.models import resnet8_tiny
    from repro.pipeline import (
        AttackConfig, QuantizationConfig, TrainingConfig,
        run_quantized_correlation_attack,
    )

    data = make_synthetic_cifar()
    train, test = train_test_split(data)
    result = run_quantized_correlation_attack(
        train, test, lambda: resnet8_tiny(),
        TrainingConfig(epochs=10),
        AttackConfig(layer_ranges=((1, 3), (4, -1)), rates=(0.0, 5.0)),
        QuantizationConfig(bits=4),
    )
    print(result.quantized.accuracy, result.quantized.mean_mape)
"""

from repro.version import __version__
from repro import errors
from repro import precision
from repro import telemetry

__all__ = ["__version__", "errors", "precision", "telemetry"]
