"""Setup shim for environments without the `wheel` package.

`pip install -e .` requires PEP 660 wheel builds; this offline environment
lacks the `wheel` distribution, so `python setup.py develop` is the
supported editable-install path (see README).
"""
from setuptools import setup

setup()
