"""Quickstart: steal training images from a quantized model in ~30 s.

Runs the paper's full attack flow (Fig. 1) at miniature scale:

1. generate a synthetic CIFAR-like dataset,
2. pre-process: select target images by pixel-std (Sec. IV-A),
3. train a narrow ResNet with the layer-wise correlation penalty (Eq. 2),
4. quantize with target-correlated quantization (Algorithm 1) + fine-tune,
5. extract the embedded images from the released weights and score them.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.datasets import SyntheticCifarConfig, make_synthetic_cifar, train_test_split
from repro.models import resnet8_tiny
from repro.pipeline import (
    AttackConfig,
    QuantizationConfig,
    TrainingConfig,
    run_quantized_correlation_attack,
)


def main() -> None:
    data = make_synthetic_cifar(
        SyntheticCifarConfig(num_images=240, num_classes=6, image_size=16, seed=3)
    )
    train, test = train_test_split(data, test_fraction=0.2, seed=0)
    print(f"dataset: {train} (train) / {test} (test)")

    result = run_quantized_correlation_attack(
        train_dataset=train,
        test_dataset=test,
        model_builder=lambda: resnet8_tiny(
            num_classes=6, in_channels=3, width=8, rng=np.random.default_rng(7)
        ),
        training=TrainingConfig(epochs=15, batch_size=32, lr=0.08),
        attack=AttackConfig(
            layer_ranges=((1, 2), (3, 4), (5, -1)),  # paper: (1,12),(13,16),(17,34)
            rates=(0.0, 0.0, 20.0),                  # zero the accuracy-critical groups
            std_window=8.0,
        ),
        quantization=QuantizationConfig(bits=4, method="target_correlated"),
        progress=lambda stage: print(f"  [{stage}]"),
    )

    print(f"\nselected std window: {result.selection.std_range} "
          f"(dataset std mean {result.selection.std_mean:.1f})")
    print(f"images embedded into the model: {result.encoded_images}")

    for label, ev in [("uncompressed attack model", result.uncompressed),
                      ("released 4-bit model", result.quantized)]:
        print(f"\n{label}:")
        print(f"  test accuracy            {ev.accuracy:6.1%}   (evasiveness)")
        print(f"  mean MAPE                {ev.mean_mape:6.2f}   (lower = better steal)")
        print(f"  mean SSIM                {ev.mean_ssim:6.3f}")
        print(f"  recognizable images      {ev.recognized_count}/{ev.encoded_images}   (effectiveness)")


if __name__ == "__main__":
    main()
