"""Parameter-sweep study: rate x bit-width grid + sensitivity-driven groups.

Demonstrates the programmatic experiment tooling:

1. :class:`repro.pipeline.Sweep` expands a (rate, bits) grid, runs the
   full attack flow per point and collects one record per run;
2. the records are filtered/ranked and exported to CSV;
3. :func:`repro.quantization.suggest_groups` derives the layer grouping
   from a measured sensitivity profile instead of hand-picking it.

Run:  python examples/sweep_study.py     (~2-3 minutes on CPU)
"""

import numpy as np

from repro.datasets import SyntheticCifarConfig, make_synthetic_cifar, train_test_split
from repro.datasets.transforms import images_to_batch, normalize_batch
from repro.models import resnet8_tiny
from repro.pipeline import (
    AttackConfig,
    QuantizationConfig,
    Sweep,
    TrainingConfig,
    run_quantized_correlation_attack,
)
from repro.quantization import quantization_sensitivity, suggest_groups


def builder():
    return resnet8_tiny(num_classes=6, in_channels=3, width=8,
                        rng=np.random.default_rng(7))


def main() -> None:
    data = make_synthetic_cifar(
        SyntheticCifarConfig(num_images=240, num_classes=6, image_size=16, seed=3)
    )
    train, test = train_test_split(data, test_fraction=0.2, seed=0)
    training = TrainingConfig(epochs=10, batch_size=32, lr=0.08)

    # ---------------------------------------------------- 1. the sweep
    def experiment(rate, bits):
        result = run_quantized_correlation_attack(
            train, test, builder, training,
            AttackConfig(layer_ranges=((1, 2), (3, 4), (5, -1)),
                         rates=(0.0, 0.0, rate), std_window=8.0),
            QuantizationConfig(bits=bits, method="target_correlated"),
        )
        quantized = result.quantized
        return {
            "accuracy": round(quantized.accuracy, 3),
            "mape": round(quantized.mean_mape, 2),
            "recognized": quantized.recognized_count,
            "encoded": quantized.encoded_images,
        }

    sweep = Sweep({"rate": [5.0, 20.0], "bits": [4, 3]}, experiment)
    print(f"running {len(sweep)} experiments ...")
    result = sweep.run(progress=lambda p: print(f"  {p}"))
    print()
    print(result.to_table(title="rate x bits sweep (quantized attack model)"))
    best = result.best("recognized")
    print(f"\nbest operating point: rate={best['rate']}, bits={best['bits']} "
          f"({best['recognized']}/{best['encoded']} recognizable at "
          f"{best['accuracy']:.1%} accuracy)")
    result.to_csv("/tmp/repro_sweep.csv")
    print("records exported to /tmp/repro_sweep.csv")

    # --------------------------- 2. sensitivity-derived layer grouping
    print("\nmeasuring per-layer quantization sensitivity ...")
    model = builder()
    batch = images_to_batch(train.images)
    batch, _, _ = normalize_batch(batch)
    from repro.pipeline import Trainer
    Trainer(model, batch, train.labels, training).train()
    profile = quantization_sensitivity(model, batch, train.labels, bits=1)
    for entry in profile:
        print(f"  {entry.name:30s} accuracy drop {entry.accuracy_drop:+.3f}")
    ranges = suggest_groups(profile, num_groups=3)
    print(f"suggested contiguous layer groups: {ranges}")
    print("(use these as AttackConfig.layer_ranges with rates (0, 0, lambda))")


if __name__ == "__main__":
    main()
