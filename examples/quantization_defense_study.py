"""Defender's view: how much does plain quantization actually protect?

The paper's motivation section shows that benign weighted-entropy
quantization *defeats* the original correlation attack at low bit
widths.  This study sweeps quantizers and bit widths over one attacked
model and reports where the defense operating point lies -- and how the
adversary's target-correlated quantizer escapes it.

Also demonstrates the two baseline attacks (LSB, sign encoding) and why
quantization trivially kills LSB encoding.

Run:  python examples/quantization_defense_study.py
"""

import numpy as np

from repro.attacks import lsb_decode, lsb_encode
from repro.datasets import SyntheticCifarConfig, make_synthetic_cifar, train_test_split
from repro.datasets.transforms import images_to_batch, normalize_batch
from repro.models import resnet8_tiny
from repro.models.introspect import encodable_parameters
from repro.pipeline import (
    AttackConfig,
    QuantizationConfig,
    TrainingConfig,
    format_table,
    run_quantized_correlation_attack,
)
from repro.pipeline.baselines import quantize_and_finetune
from repro.pipeline.evaluation import evaluate_attack
from repro.pipeline.reporting import percent


def main() -> None:
    data = make_synthetic_cifar(
        SyntheticCifarConfig(num_images=240, num_classes=6, image_size=16, seed=3)
    )
    train, test = train_test_split(data, test_fraction=0.2, seed=0)
    training = TrainingConfig(epochs=15, batch_size=32, lr=0.08)

    print("training one attacked model (layer-wise correlation, rate 20) ...")
    result = run_quantized_correlation_attack(
        train, test,
        lambda: resnet8_tiny(num_classes=6, width=8, rng=np.random.default_rng(7)),
        training,
        AttackConfig(layer_ranges=((1, 2), (3, 4), (5, -1)),
                     rates=(0.0, 0.0, 20.0), std_window=8.0),
        quantization=None,
    )
    state = result.model.state_dict()
    test_batch = images_to_batch(test.images)
    test_batch, _, _ = normalize_batch(test_batch, result.mean, result.std)

    rows = []
    for method in ("uniform", "kmeans", "weighted_entropy", "target_correlated"):
        for bits in (4, 3, 2):
            result.model.load_state_dict(state)
            quantize_and_finetune(
                result.model,
                QuantizationConfig(bits=bits, method=method),
                train, training, result.mean, result.std,
                target_images=result.payload.images,
            )
            ev = evaluate_attack(result.model, test_batch, test.labels,
                                 groups=result.groups,
                                 mean=result.mean, std=result.std)
            rows.append([method, bits, percent(ev.accuracy),
                         f"{ev.mean_mape:.1f}",
                         f"{ev.recognized_count}/{ev.encoded_images}"])
    result.model.load_state_dict(state)
    print()
    print(format_table(["quantizer", "bits", "accuracy", "MAPE", "recognizable"],
                       rows, title="Defense sweep over one attacked model"))
    print("\nDefender's takeaway: benign quantizers degrade the attack as bits "
          "shrink, but only if the adversary does not control the quantizer -- "
          "the target-correlated rows keep the stolen data intact.")

    # ------------------------------------------------------ LSB baseline
    print("\nLSB-encoding baseline: quantization as a perfect defense")
    params = [p for _, p in encodable_parameters(result.model)]
    rng = np.random.default_rng(0)
    secret = rng.integers(0, 2, size=4096).astype(np.uint8)
    lsb_encode(params, secret, bits_per_weight=8)
    intact = (lsb_decode(params, secret.size, 8) == secret).mean()
    quantize_and_finetune(result.model, QuantizationConfig(bits=4, method="uniform",
                                                           finetune_epochs=0),
                          train, training, result.mean, result.std)
    after = (lsb_decode(params, secret.size, 8) == secret).mean()
    print(f"  secret bits intact before quantization: {intact:.1%}")
    print(f"  secret bits intact after 4-bit quantization: {after:.1%} "
          f"(~50% = random, payload destroyed)")


if __name__ == "__main__":
    main()
