"""The data holder's pre-release audit (extension beyond the paper).

A data holder who suspects their third-party training code can audit the
trained model *before* publishing it:

1. correlation scan -- slide an image-sized window over the weights and
   correlate it with their own training images;
2. distribution anomaly -- KS-test the weights against a benign
   reference model;
3. sanitization -- if releasing anyway, inject noise calibrated to
   scramble any embedded pixels at bounded accuracy cost.

Run:  python examples/defense_audit.py
"""

import numpy as np

from repro.datasets import SyntheticCifarConfig, make_synthetic_cifar, train_test_split
from repro.datasets.transforms import images_to_batch, normalize_batch
from repro.defenses import detect_attack, inject_noise
from repro.models import resnet8_tiny
from repro.pipeline import (
    AttackConfig,
    TrainingConfig,
    run_quantized_correlation_attack,
    train_benign,
)
from repro.pipeline.evaluation import evaluate_attack


def builder():
    return resnet8_tiny(num_classes=6, in_channels=3, width=8,
                        rng=np.random.default_rng(7))


def main() -> None:
    data = make_synthetic_cifar(
        SyntheticCifarConfig(num_images=240, num_classes=6, image_size=16, seed=3)
    )
    train, test = train_test_split(data, test_fraction=0.2, seed=0)
    training = TrainingConfig(epochs=15, batch_size=32, lr=0.08)

    print("training the (secretly malicious) model ...")
    attacked = run_quantized_correlation_attack(
        train, test, builder, training,
        AttackConfig(layer_ranges=((1, 2), (3, 4), (5, -1)),
                     rates=(0.0, 0.0, 20.0), std_window=8.0),
        quantization=None,
    )
    print("training a benign reference ...")
    benign = train_benign(train, test, builder, training)

    print("\n--- audit ---")
    report_attacked = detect_attack(attacked.model, train,
                                    reference=benign.model, max_images=48)
    report_benign = detect_attack(benign.model, train, max_images=48)
    print(f"malicious model: {report_attacked}")
    print(f"benign model:    {report_benign}")

    print("\n--- sanitization (release anyway, with noise) ---")
    test_batch = images_to_batch(test.images)
    test_batch, _, _ = normalize_batch(test_batch, attacked.mean, attacked.std)
    state = attacked.model.state_dict()
    for fraction in (0.0, 0.1, 0.3):
        attacked.model.load_state_dict(state)
        inject_noise(attacked.model, fraction, seed=0)
        ev = evaluate_attack(attacked.model, test_batch, test.labels,
                             groups=attacked.groups,
                             mean=attacked.mean, std=attacked.std)
        print(f"noise {fraction:4.0%}: accuracy {ev.accuracy:6.1%}, "
              f"stolen-image MAPE {ev.mean_mape:5.1f}, "
              f"recognizable {ev.recognized_count}/{ev.encoded_images}")


if __name__ == "__main__":
    main()
