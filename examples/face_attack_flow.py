"""Face-recognition scenario (the paper's FaceScrub experiment).

Trains the face classifier with the layer-wise correlation attack,
releases a 3-bit model (eight gray levels), extracts the embedded faces
and renders one of them as ASCII art for a direct visual check --
the runnable analogue of the paper's Fig. 5 grid.

Run:  python examples/face_attack_flow.py
"""

import numpy as np

from repro.datasets import SyntheticFacesConfig, make_synthetic_faces, train_test_split
from repro.models import face_net_mini
from repro.pipeline import (
    AttackConfig,
    QuantizationConfig,
    TrainingConfig,
    run_quantized_correlation_attack,
)

_ASCII = " .:-=+*#%@"


def ascii_image(image: np.ndarray) -> str:
    gray = image[..., 0].astype(float)
    lines = []
    for row in gray:
        lines.append("".join(
            _ASCII[min(int(v / 256.0 * len(_ASCII)), len(_ASCII) - 1)] * 2
            for v in row
        ))
    return "\n".join(lines)


def main() -> None:
    faces = make_synthetic_faces(
        SyntheticFacesConfig(num_identities=12, images_per_identity=8,
                             image_size=24, seed=5)
    )
    train, test = train_test_split(faces, test_fraction=0.25, seed=0)
    print(f"dataset: {len(train)} training faces, {train.num_classes} identities")

    result = run_quantized_correlation_attack(
        train, test,
        lambda: face_net_mini(num_identities=12, width=8,
                              rng=np.random.default_rng(3)),
        TrainingConfig(epochs=25, batch_size=16, lr=0.05),
        AttackConfig(layer_ranges=((1, 2), (3, 5), (6, -1)),
                     rates=(0.0, 0.0, 20.0), std_window=10.0,
                     capacity_fraction=0.6),
        QuantizationConfig(bits=3, method="target_correlated", finetune_epochs=3),
        progress=lambda stage: print(f"  [{stage}]"),
    )

    quantized = result.quantized
    print(f"\nreleased 3-bit face model: accuracy {quantized.accuracy:.1%}, "
          f"{quantized.encoded_images} faces embedded")
    print(f"mean MAPE {quantized.mean_mape:.1f}, mean SSIM {quantized.mean_ssim:.3f}, "
          f"SSIM>0.5 on {quantized.ssim_above(0.5)}/{quantized.encoded_images} faces")

    best = int(np.argmax(quantized.ssim_per_image))
    print(f"\noriginal face #{best}:")
    print(ascii_image(quantized.originals[best]))
    print(f"\nface #{best} extracted from the released 3-bit weights "
          f"(SSIM {quantized.ssim_per_image[best]:.2f}):")
    print(ascii_image(quantized.reconstructions[best]))


if __name__ == "__main__":
    main()
