"""CIFAR scenario: benign model vs. original attack vs. the paper's flow.

Reproduces the storyline of the paper's evaluation on the synthetic
CIFAR-like dataset:

* a benign model sets the accuracy bar the data holder validates against;
* the original correlated value encoding attack (Song et al.) steals
  images but collapses under weighted-entropy quantization;
* the paper's quantized correlation encoding flow steals comparable
  data from a 4-bit model while passing the accuracy validation.

Run:  python examples/cifar_attack_comparison.py
"""

import numpy as np

from repro.datasets import SyntheticCifarConfig, make_synthetic_cifar, train_test_split
from repro.datasets.transforms import images_to_batch, normalize_batch
from repro.models import resnet8_tiny
from repro.pipeline import (
    AttackConfig,
    QuantizationConfig,
    TrainingConfig,
    format_table,
    original_correlation_attack,
    run_quantized_correlation_attack,
    train_benign,
)
from repro.pipeline.baselines import quantize_and_finetune
from repro.pipeline.evaluation import evaluate_attack
from repro.pipeline.reporting import percent

BITS = 4
RATE = 20.0


def builder():
    return resnet8_tiny(num_classes=6, in_channels=3, width=8,
                        rng=np.random.default_rng(7))


def main() -> None:
    data = make_synthetic_cifar(
        SyntheticCifarConfig(num_images=240, num_classes=6, image_size=16, seed=3)
    )
    train, test = train_test_split(data, test_fraction=0.2, seed=0)
    training = TrainingConfig(epochs=15, batch_size=32, lr=0.08)

    print("1/4 training the benign reference model ...")
    benign = train_benign(train, test, builder, training)

    print("2/4 running the original correlation attack (uniform rate) ...")
    original = original_correlation_attack(train, test, builder, training, rate=RATE)

    print("3/4 quantizing the original attack model with weighted entropy ...")
    quantize_and_finetune(
        original.model,
        QuantizationConfig(bits=BITS, method="weighted_entropy"),
        train, training, original.mean, original.std,
    )
    test_batch = images_to_batch(test.images)
    test_batch, _, _ = normalize_batch(test_batch, original.mean, original.std)
    original_weq = evaluate_attack(
        original.model, test_batch, test.labels,
        payload=original.payload, weight_vector=original.weight_vector(),
        mean=original.mean, std=original.std,
    )

    print("4/4 running the paper's full quantized attack flow ...")
    ours = run_quantized_correlation_attack(
        train, test, builder, training,
        AttackConfig(layer_ranges=((1, 2), (3, 4), (5, -1)),
                     rates=(0.0, 0.0, RATE), std_window=8.0),
        QuantizationConfig(bits=BITS, method="target_correlated"),
    )

    rows = [
        ["benign (uncompressed)", percent(benign.accuracy), "-", "-"],
        ["original attack (uncompressed)", percent(original.evaluation.accuracy),
         f"{original.evaluation.mean_mape:.1f}",
         f"{original.evaluation.recognized_count}/{original.evaluation.encoded_images}"],
        [f"original attack + WEQ {BITS}b", percent(original_weq.accuracy),
         f"{original_weq.mean_mape:.1f}",
         f"{original_weq.recognized_count}/{original_weq.encoded_images}"],
        [f"our flow, {BITS}b released model", percent(ours.quantized.accuracy),
         f"{ours.quantized.mean_mape:.1f}",
         f"{ours.quantized.recognized_count}/{ours.quantized.encoded_images}"],
    ]
    print()
    print(format_table(["model", "accuracy", "MAPE", "recognizable"], rows,
                       title="CIFAR attack comparison"))
    print("\nReading the table: WEQ (the defense) should hurt the original "
          "attack's accuracy and/or recognizable count, while our flow keeps "
          "both near the uncompressed attack.")


if __name__ == "__main__":
    main()
