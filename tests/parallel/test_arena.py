"""SharedTensorArena: layout, attach protocol, cleanup hygiene."""

import multiprocessing as mp
import os
import pickle

import numpy as np
import pytest

from repro.errors import DDPError
from repro.parallel.arena import (
    SEGMENT_PREFIX,
    ArenaSpec,
    SharedTensorArena,
    cleanup_stale_segments,
    live_segments,
)


class TestArenaBasics:
    def test_views_share_one_segment(self):
        with SharedTensorArena.create({
            "a": ((3, 4), np.float32),
            "b": ((5,), np.float64),
            "c": ((2, 2), np.int64),
        }) as arena:
            a, b, c = arena.view("a"), arena.view("b"), arena.view("c")
            assert a.shape == (3, 4) and a.dtype == np.float32
            assert b.shape == (5,) and b.dtype == np.float64
            assert c.shape == (2, 2) and c.dtype == np.int64
            # zero-initialized, writable, and persistent across view calls
            assert not a.any() and not b.any()
            a[...] = 1.5
            b[...] = np.arange(5)
            assert arena.view("a").sum() == pytest.approx(18.0)
            assert np.array_equal(arena.view("b"), np.arange(5.0))
            assert sorted(arena.keys()) == ["a", "b", "c"]
            assert "a" in arena and "missing" not in arena

    def test_views_are_aligned_and_disjoint(self):
        with SharedTensorArena.create({
            "x": ((7,), np.uint8),   # odd size forces padding before y
            "y": ((4,), np.float64),
        }) as arena:
            spec = arena.spec()
            for offset, _, _ in spec.entries.values():
                assert offset % 64 == 0
            arena.view("x")[...] = 0xFF
            assert not arena.view("y").any()

    def test_unknown_name_and_empty_layout_raise(self):
        with pytest.raises(DDPError):
            SharedTensorArena.create({})
        with SharedTensorArena.create({"a": ((1,), np.float32)}) as arena:
            with pytest.raises(DDPError, match="no tensor"):
                arena.view("nope")

    def test_closed_arena_refuses_views(self):
        arena = SharedTensorArena.create({"a": ((2,), np.float32)})
        arena.close()
        with pytest.raises(DDPError, match="closed"):
            arena.view("a")
        arena.close()  # idempotent


class TestAttachProtocol:
    def test_spec_is_picklable_and_attachable(self):
        with SharedTensorArena.create({"t": ((4,), np.float32)}) as arena:
            arena.view("t")[...] = [1, 2, 3, 4]
            spec = pickle.loads(pickle.dumps(arena.spec()))
            assert isinstance(spec, ArenaSpec)
            attached = SharedTensorArena.attach(spec)
            try:
                assert np.array_equal(attached.view("t"), [1, 2, 3, 4])
                # writes flow the other way too: this is shared memory
                attached.view("t")[0] = 9
                assert arena.view("t")[0] == 9
                assert not attached.owner
            finally:
                attached.close()
            # a non-owner close must not have unlinked the segment
            assert arena.segment_name in live_segments()

    def test_attach_from_child_process(self):
        with SharedTensorArena.create({"t": ((3,), np.float64)}) as arena:
            arena.view("t")[...] = [1.0, 2.0, 3.0]
            ctx = mp.get_context("fork")
            parent, child = ctx.Pipe()

            def reader(spec, conn):
                other = SharedTensorArena.attach(spec)
                conn.send(float(other.view("t").sum()))
                other.close()

            proc = ctx.Process(target=reader, args=(arena.spec(), child))
            proc.start()
            assert parent.recv() == 6.0
            proc.join(timeout=5)
            assert proc.exitcode == 0
            # the child's exit (and its resource tracker) must not have
            # yanked the segment out from under the owner
            assert arena.segment_name in live_segments()
            assert float(arena.view("t").sum()) == 6.0

    def test_attach_after_unlink_raises(self):
        arena = SharedTensorArena.create({"t": ((2,), np.float32)})
        spec = arena.spec()
        arena.close()
        with pytest.raises(DDPError, match="does not exist"):
            SharedTensorArena.attach(spec)


class TestCleanupHygiene:
    def test_owner_close_unlinks_even_with_live_views(self):
        arena = SharedTensorArena.create({"t": ((8,), np.float32)})
        name = arena.segment_name
        view = arena.view("t")
        view[...] = 7.0
        assert name in live_segments()
        arena.close()
        # unlink-before-close: the /dev/shm entry is gone immediately even
        # though a view reference is still held (the view itself must not
        # be dereferenced after close -- numpy does not pin the mapping)
        assert name not in live_segments()
        del view

    def test_stale_sweep_reclaims_dead_owner_segments(self):
        ctx = mp.get_context("fork")

        def crash():
            # create an arena and die without closing it -- the atexit
            # hook never runs under os._exit, like a hard crash
            SharedTensorArena.create({"t": ((16,), np.float64)})
            os._exit(1)

        proc = ctx.Process(target=crash)
        proc.start()
        proc.join(timeout=10)
        stale = [n for n in live_segments()
                 if n.startswith(f"{SEGMENT_PREFIX}_{proc.pid}_")]
        assert stale, "crashed child should have left a segment behind"
        removed = cleanup_stale_segments()
        for name in stale:
            assert name in removed
            assert name not in live_segments()

    def test_stale_sweep_spares_live_owners(self):
        with SharedTensorArena.create({"t": ((4,), np.float32)}) as arena:
            assert arena.segment_name not in cleanup_stale_segments()
            assert arena.segment_name in live_segments()
