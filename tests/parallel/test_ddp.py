"""DDP runtime: reduction schedule, determinism, equivalence, hygiene.

The heavyweight behavioural guarantee -- attack metrics inside the
golden bands at 2 and 4 workers -- lives in
``tests/integration/test_ddp_golden.py``; here we pin the mechanisms:
the fixed reduction order, bit-identical repeat runs, serial
equivalence for a batch-norm-free model, the no-pickling control plane,
and crash/teardown behaviour.
"""

import os
import signal

import numpy as np
import pytest

from repro import precision
from repro.errors import DDPError
from repro.models.mlp import MLP
from repro.parallel import ddp
from repro.parallel.arena import live_segments
from repro.pipeline.config import TrainingConfig
from repro.pipeline.trainer import Trainer

pytestmark = pytest.mark.skipif(
    not ddp.available(), reason="fork start method unavailable"
)


# ---------------------------------------------------------------------------
# The fixed reduction schedule
# ---------------------------------------------------------------------------

class TestReducePlan:
    def test_pinned_schedules(self):
        assert ddp.reduce_plan(1) == []
        assert ddp.reduce_plan(2) == [[(0, 1)]]
        assert ddp.reduce_plan(3) == [[(0, 1)], [(0, 2)]]
        assert ddp.reduce_plan(4) == [[(0, 1), (2, 3)], [(0, 2)]]
        assert ddp.reduce_plan(5) == [[(0, 1), (2, 3)], [(0, 2)], [(0, 4)]]

    @pytest.mark.parametrize("world", [2, 3, 4, 5, 6, 7, 8, 13])
    def test_every_rank_reduced_exactly_once(self, world):
        plan = ddp.reduce_plan(world)
        sources = [src for level in plan for _, src in level]
        # every non-zero rank is consumed exactly once, and rank 0 ends
        # up holding the total
        assert sorted(sources) == list(range(1, world))
        destinations = {dst for level in plan for dst, _ in level}
        assert 0 in destinations

    def test_bad_world_raises(self):
        with pytest.raises(DDPError):
            ddp.reduce_plan(0)


class TestDefaults:
    def test_default_workers_roundtrip(self):
        previous = ddp.set_default_ddp_workers(3)
        try:
            assert ddp.default_ddp_workers() == 3
            assert ddp.set_default_ddp_workers(None) == 3
            assert ddp.default_ddp_workers() is None
        finally:
            ddp.set_default_ddp_workers(previous)

    def test_invalid_default_rejected(self):
        with pytest.raises(DDPError):
            ddp.set_default_ddp_workers(0)

    def test_ddp_config_rows(self):
        config = ddp.ddp_config()
        assert config["cpus"] >= 1
        assert config["fork_available"] is True
        assert isinstance(config["shm_available"], bool)
        assert config["live_segments"] >= 0


# ---------------------------------------------------------------------------
# Training equivalence + determinism (batch-norm-free model, float64)
# ---------------------------------------------------------------------------

def _make_trainer(ddp_workers, epochs=2, seed=0):
    """Tiny BN-free MLP training problem, float64 reference backend.

    Without batch norm there is no per-rank batch-statistics effect, so
    data-parallel and serial training differ only by gradient summation
    order -- which the fixed-order tree reduction makes deterministic,
    and float64 makes negligible (<1e-12) against the serial sum.
    """
    rng = np.random.default_rng(12)
    inputs = rng.standard_normal((48, 3, 4, 4))
    labels = rng.integers(0, 4, size=48).astype(np.int64)
    with precision.use_dtype("float64"):
        model = MLP([3 * 4 * 4, 16, 4], rng=np.random.default_rng(5))
    config = TrainingConfig(epochs=epochs, batch_size=16, lr=0.05, seed=seed)
    return Trainer(model, inputs, labels, config,
                   backend="reference", dtype="float64",
                   ddp_workers=ddp_workers)


def _final_params(trainer):
    return [np.array(p.data, copy=True) for p in trainer._params]


@pytest.mark.parametrize("world", [2, 4])
def test_ddp_matches_serial_without_batchnorm(world):
    serial = _make_trainer(ddp_workers=1)
    serial.train()
    parallel = _make_trainer(ddp_workers=world)
    parallel.train()
    for ps, pp in zip(_final_params(serial), _final_params(parallel)):
        np.testing.assert_allclose(pp, ps, rtol=0, atol=1e-12)


def test_ddp_runs_are_bit_identical():
    """Same seed + same world => byte-for-byte identical parameters AND
    reduced gradients, run to run (the fixed-reduction-order claim)."""

    def one_run():
        trainer = _make_trainer(ddp_workers=2)
        try:
            for _ in range(2):
                trainer.train_epoch()
            # after train_epoch the last batch's reduced gradients are
            # still sitting in the rank-0 slabs behind param.grad; copy
            # them out before close() detaches the arena
            grads = [np.array(p.grad, copy=True) for p in trainer._params]
            params = _final_params(trainer)
        finally:
            trainer.close()
        return params, grads

    params_a, grads_a = one_run()
    params_b, grads_b = one_run()
    for a, b in zip(params_a, params_b):
        assert a.tobytes() == b.tobytes()
    for a, b in zip(grads_a, grads_b):
        assert a.tobytes() == b.tobytes()


def test_ddp_workers_one_is_plain_serial():
    """world=1 must not fork, not build a context, and not touch shm."""
    trainer = _make_trainer(ddp_workers=1)
    before = set(live_segments())
    trainer.train()
    assert trainer._ddp is None
    assert set(live_segments()) == before


# ---------------------------------------------------------------------------
# Control plane: nothing big is ever pickled on the steady-state path
# ---------------------------------------------------------------------------

def _contains_ndarray(obj):
    if isinstance(obj, np.ndarray):
        return True
    if isinstance(obj, dict):
        return any(_contains_ndarray(v) for v in obj.values()) or \
            any(_contains_ndarray(k) for k in obj.keys())
    if isinstance(obj, (list, tuple, set)):
        return any(_contains_ndarray(v) for v in obj)
    return False


def test_no_weights_or_batches_on_the_control_plane():
    epochs, world = 3, 2
    messages = []
    previous = ddp.set_message_audit(
        lambda direction, msg: messages.append((direction, msg))
    )
    try:
        trainer = _make_trainer(ddp_workers=world, epochs=epochs)
        trainer.train()
    finally:
        ddp.set_message_audit(previous)
    # parent-side traffic only: one epoch command down and one summary
    # up per worker per epoch, plus one shutdown sentinel per worker --
    # O(workers * epochs), never O(batches), and never an ndarray
    sends = [m for d, m in messages if d == "send"]
    recvs = [m for d, m in messages if d == "recv"]
    epoch_cmds = [m for m in sends if isinstance(m, tuple) and m[0] == "epoch"]
    sentinels = [m for m in sends if m is None]
    dones = [m for m in recvs if isinstance(m, tuple) and m[0] == "done"]
    assert len(epoch_cmds) == epochs * (world - 1)
    assert len(sentinels) == world - 1
    assert len(dones) == epochs * (world - 1)
    assert len(messages) == len(epoch_cmds) + len(sentinels) + len(dones)
    for _, message in messages:
        assert not _contains_ndarray(message), (
            "weights/batches crossed the DDP control pipe"
        )
    # and the workers really did step through shared memory instead:
    # 48 images / batch 16 = 3 global steps per epoch, on every rank
    done_payloads = [m[2] for m in dones]
    assert all(p["steps"] == 3 for p in done_payloads)


# ---------------------------------------------------------------------------
# Crash + teardown hygiene
# ---------------------------------------------------------------------------

def test_dead_worker_raises_instead_of_hanging():
    trainer = _make_trainer(ddp_workers=2, epochs=4)
    try:
        trainer.train_epoch()
        victim = trainer._ddp._procs[1]
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=5)
        with pytest.raises(DDPError):
            # the watchdog breaks the barrier; depending on timing the
            # failure surfaces at epoch start or at the first step
            for _ in range(3):
                trainer.train_epoch()
    finally:
        trainer.close()
    # teardown after a crash still reclaims every segment (the autouse
    # no_shm_leaks fixture enforces the same thing suite-wide)
    assert trainer._ddp is None
    for param in trainer._params:
        assert np.isfinite(param.data).all()


def test_close_then_retrain_reforks():
    trainer = _make_trainer(ddp_workers=2, epochs=4)
    try:
        trainer.train_epoch()
        first_pids = {p.pid for p in trainer._ddp._procs.values()}
        trainer.close()
        assert trainer._ddp is None
        trainer.train_epoch()
        second_pids = {p.pid for p in trainer._ddp._procs.values()}
        assert first_pids.isdisjoint(second_pids)
    finally:
        trainer.close()
    for param in trainer._params:
        assert np.isfinite(param.data).all()


def test_train_tears_down_automatically():
    """``train()`` must leave no live context, no arena views on the
    model, and no shm segments -- downstream stages (quantization,
    serving) need a plain in-process model."""
    trainer = _make_trainer(ddp_workers=2)
    before = set(live_segments())
    trainer.train()
    assert trainer._ddp is None
    assert set(live_segments()) == before
    for param in trainer._params:
        # a private array again, not a view into the (unlinked) arena
        assert param.data.base is None
