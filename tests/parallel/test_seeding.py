"""Seed derivation: schedule-independent, index-stable, re-derivable."""

import numpy as np

from repro.parallel import rng_for_index, sequence_for_index, spawn_sequences


class TestSpawnSequences:
    def test_deterministic(self):
        a = [np.random.default_rng(s).integers(0, 1 << 30)
             for s in spawn_sequences(42, 5)]
        b = [np.random.default_rng(s).integers(0, 1 << 30)
             for s in spawn_sequences(42, 5)]
        assert a == b

    def test_children_are_independent(self):
        draws = [np.random.default_rng(s).random(8).tolist()
                 for s in spawn_sequences(0, 6)]
        assert len({tuple(d) for d in draws}) == 6

    def test_accepts_seed_sequence_root(self):
        root = np.random.SeedSequence(7)
        a = spawn_sequences(root, 3)
        b = spawn_sequences(7, 3)
        # spawning mutates the root's child counter, so derive from a
        # fresh root for comparison
        assert [np.random.default_rng(s).integers(0, 99) for s in a] == \
               [np.random.default_rng(s).integers(0, 99) for s in b]


class TestIndexStability:
    def test_matches_spawn_for_any_batch_size(self):
        """Child i is the same whether 4 or 400 siblings were spawned --
        this is what makes per-point seeds scheduling-independent."""
        for n in (3, 10, 50):
            batch = spawn_sequences(123, n)
            direct = sequence_for_index(123, 2)
            assert np.random.default_rng(batch[2]).random() == \
                   np.random.default_rng(direct).random()

    def test_rng_for_index_streams(self):
        assert rng_for_index(9, 4).random() == rng_for_index(9, 4).random()
        assert rng_for_index(9, 4).random() != rng_for_index(9, 5).random()
        assert rng_for_index(9, 4).random() != rng_for_index(10, 4).random()
